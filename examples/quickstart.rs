//! Quickstart: the paper's core objects in ~60 lines.
//!
//! 1. Solve DCQCN's unique fixed point (Theorem 1) and check Eq 14.
//! 2. Integrate the fluid model (Figure 1) and watch flows converge.
//! 3. Run the same scenario packet-by-packet and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use desim::{SimDuration, SimTime};
use ecn_delay::experiments::scenarios::{single_switch_longlived, Protocol};
use ecn_delay::models::dcqcn::{DcqcnFluid, DcqcnParams};
use ecn_delay::netsim::EngineConfig;

fn main() {
    // --- 1. the fixed point -------------------------------------------------
    let params = DcqcnParams::default_40g();
    let n_flows = 4;
    let fluid = DcqcnFluid::new(params.clone(), n_flows);
    let fp = fluid.fixed_point();
    println!(
        "DCQCN fixed point for {n_flows} flows on {} Gbps:",
        params.capacity_gbps
    );
    println!(
        "  p*      = {:.6}  (Eq 14 approx: {:.6})",
        fp.p_star,
        params.p_star_approx(n_flows)
    );
    println!("  q*      = {:.1} KB", fp.q_star_kb);
    println!(
        "  R_C*    = {:.2} Gbps per flow (fair share)",
        models::units::pps_to_gbps(fp.rate_per_flow_pps, params.packet_bytes)
    );
    println!("  alpha*  = {:.4}", fp.alpha_star);

    // --- 2. the fluid model -------------------------------------------------
    let mut fluid = DcqcnFluid::new(params.clone(), n_flows);
    let trace = fluid.simulate(0.03);
    let rate_tail = trace.mean_from(fluid.rc_index(0), 0.025);
    let queue_tail = trace.mean_from(0, 0.025);
    println!("\nFluid model after 30 ms:");
    println!(
        "  flow 0 rate = {:.2} Gbps",
        models::units::pps_to_gbps(rate_tail, params.packet_bytes)
    );
    println!(
        "  queue       = {:.1} KB",
        models::units::pkts_to_kb(queue_tail, params.packet_bytes)
    );

    // --- 3. the packet simulator --------------------------------------------
    let (mut eng, bottleneck) = single_switch_longlived(
        Protocol::Dcqcn,
        n_flows,
        params.capacity_gbps * 1e9,
        SimDuration::from_micros(1),
        EngineConfig::default(),
    );
    let report = eng.run(SimTime::from_millis(30));
    let tail_rate: f64 = {
        let pts: Vec<f64> = report.rate_traces[0]
            .iter()
            .filter(|&&(t, _)| t > 0.025)
            .map(|&(_, bps)| bps)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    let tail_queue: f64 = {
        let pts: Vec<f64> = report.queue_traces[&bottleneck]
            .points()
            .iter()
            .filter(|&&(t, _)| t > 0.025)
            .map(|&(_, b)| b)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    println!("\nPacket simulator after 30 ms:");
    println!("  flow 0 goodput = {:.2} Gbps", tail_rate / 1e9);
    println!("  queue          = {:.1} KB", tail_queue / 1000.0);
    println!("  ECN marks      = {}", report.marked_packets);
    println!("  CNPs           = {}", report.cnps_sent);
    println!("\nfluid and packets agree — that is Figure 2 of the paper.");
}
