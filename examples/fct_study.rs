//! FCT case study on the Figure 13 dumbbell: the paper's §5.1 workload.
//!
//! Ten senders and ten receivers around a 10 Gbps bottleneck; web-search
//! flow sizes (DCTCP [2]) arriving as a Poisson process; small flows are
//! those under 100 KB. Compares DCQCN, TIMELY and Patched TIMELY at the
//! load you pass on the command line.
//!
//! ```text
//! cargo run --release --example fct_study -- <load> <horizon_s>
//! cargo run --release --example fct_study -- 0.8 0.3
//! ```

use ecn_delay::experiments::experiments::fig14::run_cell;
use ecn_delay::experiments::scenarios::Protocol;

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.8);
    let horizon: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.3);

    println!("FCT case study: load = {load}, arrival horizon = {horizon} s");
    println!("(load 1.0 = 8 Gbps offered on the 10 Gbps bottleneck)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "protocol", "median (ms)", "p90 (ms)", "p99 (ms)", "flows", "util"
    );
    for proto in [Protocol::Dcqcn, Protocol::Timely, Protocol::PatchedTimely] {
        let (stats, util) = run_cell(proto, load, horizon, 1);
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>8.3}",
            proto.label(),
            stats.small_median().unwrap_or(f64::NAN) * 1e3,
            stats.small_p90().unwrap_or(f64::NAN) * 1e3,
            stats.small_p99().unwrap_or(f64::NAN) * 1e3,
            stats.small_count(),
            util,
        );
    }
    println!("\nThe ECN-based protocol holds the bottleneck queue inside the RED band,");
    println!("so its small flows never wait behind a bloated buffer (paper §5.1-5.2).");
}
