//! TIMELY's fairness lottery, and the patch that fixes it.
//!
//! Reproduces the heart of §4 interactively: run the TIMELY fluid model
//! from several starting conditions and watch it settle on *different*
//! rate splits each time (Theorems 3/4: no unique fixed point). Then run
//! Patched TIMELY (Algorithm 2) from the same starts and watch every run
//! converge to the fair share and the Theorem 5 queue.
//!
//! ```text
//! cargo run --release --example timely_fairness
//! ```

use ecn_delay::models::patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};
use ecn_delay::models::timely::{TimelyFluid, TimelyParams};

fn main() {
    let starts: &[(&str, [f64; 2])] = &[
        ("50/50", [0.5, 0.5]),
        ("60/40", [0.6, 0.4]),
        ("70/30", [0.7, 0.3]),
        ("90/10", [0.9, 0.1]),
    ];

    println!("=== original TIMELY (Algorithm 1) ===");
    println!("{:<8} {:>18} {:>14}", "start", "final split (f0)", "fair?");
    let params = TimelyParams::default_10g();
    let c = params.capacity_pps();
    for (label, fracs) in starts {
        let mut m = TimelyFluid::new(params.clone(), 2);
        let tr = m.simulate_with_rates(&[fracs[0] * c, fracs[1] * c], 0.25);
        let r0 = tr.mean_from(m.rate_index(0), 0.2);
        let r1 = tr.mean_from(m.rate_index(1), 0.2);
        let share = r0 / (r0 + r1);
        println!(
            "{label:<8} {share:>18.3} {:>14}",
            if (share - 0.5).abs() < 0.05 {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!("→ the final split tracks the starting conditions: infinitely many");
    println!("  fixed points, so fairness is an accident (Theorems 3–4, Figure 9).\n");

    println!("=== Patched TIMELY (Algorithm 2) ===");
    let p = PatchedTimelyParams::default_10g();
    let q_star_kb = p.q_star_kb(2);
    println!(
        "{:<8} {:>18} {:>14} {:>16}",
        "start", "final split (f0)", "fair?", "queue vs q*"
    );
    for (label, fracs) in starts {
        let mut m = PatchedTimelyFluid::new(p.clone(), 2);
        let c = p.base.capacity_pps();
        let tr = m.simulate_with_rates(&[fracs[0] * c, fracs[1] * c], 0.4);
        let r0 = tr.mean_from(m.rate_index(0), 0.35);
        let r1 = tr.mean_from(m.rate_index(1), 0.35);
        let share = r0 / (r0 + r1);
        let q_kb = models::units::pkts_to_kb(tr.mean_from(0, 0.35), p.base.packet_bytes);
        println!(
            "{label:<8} {share:>18.3} {:>14} {:>10.1}/{:<5.1}",
            if (share - 0.5).abs() < 0.05 {
                "yes"
            } else {
                "NO"
            },
            q_kb,
            q_star_kb
        );
    }
    println!("→ every start converges to the fair share, and the queue settles at");
    println!("  the unique Theorem 5 fixed point q* = N·δ·q'/(β·C) + q'.");
}
