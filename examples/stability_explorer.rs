//! Stability explorer: tune DCQCN for your own deployment.
//!
//! The paper's operational advice (§3.2): if your feedback delay is high
//! and the phase margin dips below zero at your flow count, reduce `R_AI`
//! or raise `K_max`. This example sweeps both knobs for a configuration you
//! pass on the command line and prints the margin map, then confirms the
//! boundary cases in the time domain.
//!
//! ```text
//! cargo run --release --example stability_explorer -- <flows> <delay_us>
//! cargo run --release --example stability_explorer -- 10 85
//! ```

use ecn_delay::models::dcqcn::{DcqcnFluid, DcqcnParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let delay_us: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(85.0);

    println!("DCQCN stability map for N = {n} flows, feedback delay = {delay_us} us\n");

    let r_ai_values = [5.0, 10.0, 20.0, 40.0, 80.0];
    let kmax_values = [200.0, 500.0, 1000.0, 2000.0, 5000.0];

    print!("{:>12}", "R_AI \\ Kmax");
    for k in kmax_values {
        print!("{:>10}", format!("{k}KB"));
    }
    println!();
    let mut best: Option<(f64, f64, f64)> = None;
    for r in r_ai_values {
        print!("{:>12}", format!("{r}Mbps"));
        for k in kmax_values {
            let mut p = DcqcnParams::default_40g();
            p.feedback_delay_us = delay_us;
            p.r_ai_mbps = r;
            p.kmax_kb = k;
            let pm = DcqcnFluid::new(p, n)
                .margin_report()
                .phase_margin_deg
                .unwrap_or(180.0);
            print!("{:>10.1}", pm);
            if best.is_none_or(|(bpm, _, _)| pm > bpm) {
                best = Some((pm, r, k));
            }
        }
        println!();
    }

    let (pm, r, k) = best.expect("swept at least one cell");
    println!("\nmost stable swept setting: R_AI = {r} Mbps, K_max = {k} KB (margin {pm:.1} deg)");
    println!(
        "note the trade-off (paper §3.2): smaller R_AI ramps slower, larger K_max queues more.\n"
    );

    // Time-domain confirmation at defaults vs the best setting.
    for (label, r_ai, kmax) in [("defaults", 40.0, 200.0), ("tuned", r, k)] {
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = delay_us;
        p.r_ai_mbps = r_ai;
        p.kmax_kb = kmax;
        let mut m = DcqcnFluid::new(p, n);
        let fp = m.fixed_point();
        let tr = m.simulate(0.08);
        let osc = tr.peak_to_peak_from(0, 0.05) / fp.q_star_pkts.max(1.0);
        println!(
            "{label:<9}: queue oscillation = {osc:6.3} x q*   ({})",
            if osc < 0.5 { "settles" } else { "oscillates" }
        );
    }
}
