//! Plain (non-delayed) ODE integrators: Euler, classic RK4, and adaptive
//! RKF45. These back the PI-controller fluid analysis and serve as reference
//! implementations for the DDE stepper's convergence tests.

use crate::trace::Trace;
use faults::SimError;

/// A first-order ODE system `dx/dt = f(t, x)`.
pub trait OdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;
    /// Evaluate the derivative into `dxdt` (length `dim()`).
    fn rhs(&mut self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

/// Blanket impl so closures can be used directly in tests and examples.
impl<F> OdeSystem for (usize, F)
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.0
    }
    fn rhs(&mut self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        (self.1)(t, x, dxdt)
    }
}

/// One explicit Euler step of size `h` (exposed for tests and for models that
/// need noise-compatible first-order stepping).
pub fn euler_step<S: OdeSystem>(sys: &mut S, t: f64, x: &mut [f64], h: f64, scratch: &mut [f64]) {
    sys.rhs(t, x, scratch);
    for (xi, ki) in x.iter_mut().zip(scratch.iter()) {
        *xi += h * ki;
    }
}

/// One classic RK4 step of size `h`.
pub fn rk4_step<S: OdeSystem>(sys: &mut S, t: f64, x: &mut [f64], h: f64, work: &mut Rk4Work) {
    let n = x.len();
    let Rk4Work {
        k1,
        k2,
        k3,
        k4,
        tmp,
    } = work;
    sys.rhs(t, x, k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * h * k1[i];
    }
    sys.rhs(t + 0.5 * h, tmp, k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * h * k2[i];
    }
    sys.rhs(t + 0.5 * h, tmp, k3);
    for i in 0..n {
        tmp[i] = x[i] + h * k3[i];
    }
    sys.rhs(t + h, tmp, k4);
    for i in 0..n {
        x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Reusable scratch buffers for [`rk4_step`].
#[derive(Debug, Clone)]
pub struct Rk4Work {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4Work {
    /// Allocate scratch space for an `n`-dimensional system.
    pub fn new(n: usize) -> Self {
        Rk4Work {
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            tmp: vec![0.0; n],
        }
    }
}

/// Integrate `sys` from `t0` to `t1` with fixed step `h` (RK4), recording
/// every `record_every`-th step into the returned [`Trace`].
pub fn integrate_ode<S: OdeSystem>(
    sys: &mut S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    h: f64,
    record_every: usize,
) -> Trace {
    try_integrate_ode(sys, x0, t0, t1, h, record_every).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`integrate_ode`]: a bad window or dimension mismatch
/// returns [`SimError::InvalidConfig`] instead of panicking.
pub fn try_integrate_ode<S: OdeSystem>(
    sys: &mut S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    h: f64,
    record_every: usize,
) -> Result<Trace, SimError> {
    if !(h > 0.0 && h.is_finite() && t1 >= t0) {
        return Err(SimError::config(
            "integrate_ode",
            format!("bad integration window: step {h} over [{t0}, {t1}]"),
        ));
    }
    if x0.len() != sys.dim() {
        return Err(SimError::config(
            "integrate_ode",
            format!(
                "state dimension mismatch: system dim {}, x0 len {}",
                sys.dim(),
                x0.len()
            ),
        ));
    }
    let record_every = record_every.max(1);
    let mut x = x0.to_vec();
    let mut work = Rk4Work::new(x.len());
    let mut trace = Trace::new(x.len());
    trace.push(t0, &x);
    let steps = ((t1 - t0) / h).ceil() as usize;
    let mut t = t0;
    for step in 1..=steps {
        let hh = (t1 - t).min(h);
        rk4_step(sys, t, &mut x, hh, &mut work);
        t += hh;
        if step % record_every == 0 || step == steps {
            trace.push(t, &x);
        }
    }
    Ok(trace)
}

/// Integrate with the adaptive Runge–Kutta–Fehlberg 4(5) scheme.
///
/// `tol` is the per-step absolute error tolerance on the max-norm. Returns
/// the trace of accepted steps.
pub fn integrate_ode_adaptive<S: OdeSystem>(
    sys: &mut S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    tol: f64,
    h_init: f64,
) -> Trace {
    try_integrate_ode_adaptive(sys, x0, t0, t1, tol, h_init).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`integrate_ode_adaptive`]. Bad inputs return
/// [`SimError::InvalidConfig`]; a stalled integrator (the step controller
/// collapsed without reaching `t1`) returns [`SimError::Divergence`] with the
/// time and step it got stuck at, so sweep drivers can record the point and
/// move on.
pub fn try_integrate_ode_adaptive<S: OdeSystem>(
    sys: &mut S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    tol: f64,
    h_init: f64,
) -> Result<Trace, SimError> {
    if !(tol > 0.0 && h_init > 0.0 && h_init.is_finite() && t1 >= t0) {
        return Err(SimError::config(
            "integrate_ode_adaptive",
            format!("bad inputs: tol {tol}, h_init {h_init}, window [{t0}, {t1}]"),
        ));
    }
    let n = sys.dim();
    if x0.len() != n {
        return Err(SimError::config(
            "integrate_ode_adaptive",
            format!(
                "state dimension mismatch: system dim {n}, x0 len {}",
                x0.len()
            ),
        ));
    }
    let mut x = x0.to_vec();
    let mut t = t0;
    let mut h = h_init.min(t1 - t0).max(f64::MIN_POSITIVE);
    let mut trace = Trace::new(n);
    trace.push(t, &x);

    // Fehlberg coefficients.
    const A: [f64; 6] = [0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0];
    const B: [[f64; 5]; 6] = [
        [0.0, 0.0, 0.0, 0.0, 0.0],
        [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ];
    const C4: [f64; 6] = [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -1.0 / 5.0,
        0.0,
    ];
    const C5: [f64; 6] = [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ];

    let mut k = vec![vec![0.0; n]; 6];
    let mut tmp = vec![0.0; n];
    let mut max_iters = 10_000_000usize;
    let mut iters = 0u64;
    while t < t1 && max_iters > 0 {
        max_iters -= 1;
        iters += 1;
        h = h.min(t1 - t);
        for s in 0..6 {
            for i in 0..n {
                tmp[i] = x[i];
                for (j, kj) in k.iter().enumerate().take(s) {
                    tmp[i] += h * B[s][j] * kj[i];
                }
            }
            let (t_s, tmp_ref) = (t + A[s] * h, &tmp);
            // Split borrow: write into k[s].
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            sys.rhs(t_s, tmp_ref, &mut tail[0]); // tail[0] is k[s] after split_at_mut(s)
        }
        // Error estimate = |x5 - x4|
        let mut err: f64 = 0.0;
        for i in 0..n {
            let e: f64 = k
                .iter()
                .enumerate()
                .map(|(s, ks)| (C5[s] - C4[s]) * ks[i])
                .sum();
            err = err.max((h * e).abs());
        }
        if err <= tol || h <= 1e-15 {
            for i in 0..n {
                let mut dx = 0.0;
                for s in 0..6 {
                    dx += C5[s] * k[s][i];
                }
                x[i] += h * dx;
            }
            t += h;
            trace.push(t, &x);
        }
        // Step-size control with safety factor and clamped growth.
        let scale = if err > 0.0 {
            0.9 * (tol / err).powf(0.2)
        } else {
            2.0
        };
        h *= scale.clamp(0.2, 2.0);
    }
    if max_iters == 0 {
        let norm = x.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        return Err(SimError::Divergence {
            context: "rkf45 adaptive integrator failed to advance".into(),
            t_s: t,
            state_norm: norm,
            last_step_s: h,
            step: iters,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dx/dt = -x, x(0) = 1 → x(t) = e^{-t}.
    fn decay() -> (usize, impl FnMut(f64, &[f64], &mut [f64])) {
        (1, |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = -x[0])
    }

    #[test]
    fn rk4_matches_exponential() {
        let mut sys = decay();
        let tr = integrate_ode(&mut sys, &[1.0], 0.0, 2.0, 0.01, 1);
        let last = tr.last_state().unwrap()[0];
        assert!((last - (-2.0f64).exp()).abs() < 1e-8, "got {last}");
    }

    #[test]
    fn euler_first_order_convergence() {
        // Halving h should roughly halve the error for Euler.
        let run = |h: f64| {
            let mut sys = decay();
            let mut x = [1.0];
            let mut scratch = [0.0];
            let steps = (1.0 / h) as usize;
            for s in 0..steps {
                euler_step(&mut sys, s as f64 * h, &mut x, h, &mut scratch);
            }
            (x[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(0.01);
        let e2 = run(0.005);
        let ratio = e1 / e2;
        assert!((1.7..2.3).contains(&ratio), "order-1 ratio {ratio}");
    }

    #[test]
    fn rk4_fourth_order_convergence() {
        let run = |h: f64| {
            let mut sys = decay();
            let tr = integrate_ode(&mut sys, &[1.0], 0.0, 1.0, h, usize::MAX);
            (tr.last_state().unwrap()[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(0.1);
        let e2 = run(0.05);
        let ratio = e1 / e2;
        assert!(ratio > 12.0, "order-4 ratio {ratio}"); // ideal 16
    }

    #[test]
    fn harmonic_oscillator_energy_preserved() {
        // x'' = -x as a system; RK4 should keep energy within 1e-6 over 10 s.
        let mut sys = (2usize, |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -x[0];
        });
        let tr = integrate_ode(&mut sys, &[1.0, 0.0], 0.0, 10.0, 0.001, 100);
        for i in 0..tr.len() {
            let s = tr.state(i);
            let energy = s[0] * s[0] + s[1] * s[1];
            assert!((energy - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn adaptive_matches_fixed() {
        let mut sys = decay();
        let tr = integrate_ode_adaptive(&mut sys, &[1.0], 0.0, 3.0, 1e-10, 0.1);
        let last = tr.last_state().unwrap()[0];
        assert!((last - (-3.0f64).exp()).abs() < 1e-7, "got {last}");
        // Adaptive should take far fewer steps than 1e-10-accurate fixed-step.
        assert!(tr.len() < 2_000);
    }

    #[test]
    fn adaptive_handles_stiff_ramp() {
        // dx/dt = -50(x - sin t): moderately stiff, solution tracks sin t.
        let mut sys = (1usize, |t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = -50.0 * (x[0] - t.sin());
        });
        let tr = integrate_ode_adaptive(&mut sys, &[0.0], 0.0, 5.0, 1e-8, 0.01);
        let last = tr.last_state().unwrap()[0];
        // After transients, x ≈ sin t with O(1/50) phase-lag correction.
        assert!((last - 5.0f64.sin()).abs() < 0.05, "got {last}");
    }

    #[test]
    fn try_variants_reject_bad_windows() {
        let mut sys = decay();
        let e = try_integrate_ode(&mut sys, &[1.0], 1.0, 0.0, 0.01, 1).unwrap_err();
        assert!(e.to_string().contains("bad integration window"), "{e}");
        let e = try_integrate_ode(&mut sys, &[1.0, 2.0], 0.0, 1.0, 0.01, 1).unwrap_err();
        assert!(e.to_string().contains("dimension mismatch"), "{e}");
        let e = try_integrate_ode_adaptive(&mut sys, &[1.0], 0.0, 1.0, -1e-8, 0.01).unwrap_err();
        assert!(e.to_string().contains("bad inputs"), "{e}");
    }

    #[test]
    fn try_adaptive_matches_panicking_path() {
        let mut sys = decay();
        let tr = try_integrate_ode_adaptive(&mut sys, &[1.0], 0.0, 3.0, 1e-10, 0.1).unwrap();
        let last = tr.last_state().unwrap()[0];
        assert!((last - (-3.0f64).exp()).abs() < 1e-7, "got {last}");
    }

    #[test]
    fn integrate_hits_exact_endpoint() {
        let mut sys = decay();
        // 0.3 not divisible by 0.07: final partial step must land on t1.
        let tr = integrate_ode(&mut sys, &[1.0], 0.0, 0.3, 0.07, 1);
        assert!((tr.times().last().unwrap() - 0.3).abs() < 1e-12);
    }
}
