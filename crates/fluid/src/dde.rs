//! Fixed-step RK4 integration of delay differential equations.
//!
//! The method of steps: the right-hand side receives the accumulated
//! [`History`] and performs its own delayed lookups (`hist.eval(t - d, c)`),
//! which naturally supports multiple, heterogeneous and *state-dependent*
//! delays (TIMELY's feedback delay `τ′ = q/C + MTU/C + D_prop` depends on the
//! queue itself). Intra-step RK stages query the history too; lookups past
//! the last knot return the latest value, so accuracy demands steps no larger
//! than the smallest delay — the integrator asserts a sane ratio.

use crate::history::History;
use crate::trace::Trace;
use faults::SimError;

/// Divergence-watchdog threshold on the state max-norm. The physical states
/// here are queues in packets/bytes (≤ 1e7) and rates in bits/second (≤ 1e11);
/// anything past this bound is numerical blow-up, not physics.
pub const DIVERGENCE_NORM: f64 = 1e12;

/// A delay differential system `dx/dt = f(t, x(t), history)`.
pub trait DdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Evaluate the derivative. `x` is the current state; delayed values are
    /// obtained from `hist` (which includes the pre-`t0` initial function).
    /// `&mut self` allows models that carry RNG state (feedback jitter in
    /// Figure 20).
    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]);

    /// The smallest delay the model will ever query, used for a step-size
    /// sanity check. Return `f64::INFINITY` for delay-free systems.
    fn min_delay(&self) -> f64;

    /// Optional state projection applied after every step (e.g. clamping the
    /// queue length and rates to be non-negative, as the physical system
    /// enforces). Default: no projection.
    fn project(&mut self, _t: f64, _x: &mut [f64]) {}
}

/// Options for [`integrate_dde`].
#[derive(Debug, Clone)]
pub struct DdeOptions {
    /// Fixed step size (seconds).
    pub step: f64,
    /// Record every n-th step into the output trace.
    pub record_every: usize,
    /// Trim history older than this horizon (seconds) behind the current
    /// time; must exceed the largest delay the model queries. `f64::INFINITY`
    /// disables trimming.
    pub history_horizon_s: f64,
}

impl Default for DdeOptions {
    fn default() -> Self {
        DdeOptions {
            step: 1e-6,
            record_every: 10,
            history_horizon_s: 0.01,
        }
    }
}

/// `tmp = x + coeff·k`: the RK intermediate-stage state. Elementwise over
/// the flat slice, so the same kernel serves the scalar path and the batched
/// `[state_dim × B]` struct-of-arrays block (lanes are adjacent in memory,
/// which is what lets rustc auto-vectorize across the batch).
#[inline]
pub(crate) fn stage_state(tmp: &mut [f64], x: &[f64], coeff: f64, k: &[f64]) {
    for ((t, &xi), &ki) in tmp.iter_mut().zip(x).zip(k) {
        *t = xi + coeff * ki;
    }
}

/// `x += h/6 · (k1 + 2k2 + 2k3 + k4)`: the classic RK4 combination.
/// Elementwise like [`stage_state`], shared by the scalar and batched paths.
#[inline]
pub(crate) fn rk4_combine(x: &mut [f64], h: f64, k1: &[f64], k2: &[f64], k3: &[f64], k4: &[f64]) {
    let w = h / 6.0;
    for i in 0..x.len() {
        x[i] += w * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Integrate the DDE from `t0` to `t1` starting at `x0`, with constant
/// pre-history equal to `x0`.
///
/// ```
/// use fluid::dde::{integrate_dde, DdeOptions, DdeSystem};
/// use fluid::history::History;
///
/// // dx/dt = -x(t-1), x ≡ 1 for t ≤ 0: x(1) = 0 exactly.
/// struct UnitDelay;
/// impl DdeSystem for UnitDelay {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&mut self, t: f64, _x: &[f64], h: &History, dx: &mut [f64]) {
///         dx[0] = -h.eval(t - 1.0, 0);
///     }
///     fn min_delay(&self) -> f64 { 1.0 }
/// }
/// let opts = DdeOptions { step: 1e-3, record_every: 1, history_horizon_s: f64::INFINITY };
/// let tr = integrate_dde(&mut UnitDelay, &[1.0], 0.0, 1.0, &opts);
/// assert!(tr.last_state().unwrap()[0].abs() < 1e-6);
/// ```
pub fn integrate_dde<S: DdeSystem>(
    sys: &mut S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    opts: &DdeOptions,
) -> Trace {
    integrate_dde_with_prehistory(sys, x0, x0, t0, t1, opts)
}

/// Integrate with an explicit constant pre-history `pre` (may differ from the
/// initial state, e.g. "queue was empty but rates were at line rate").
///
/// Panics on invalid options or divergence; sweep drivers that must survive
/// individual bad points use [`try_integrate_dde_with_prehistory`].
pub fn integrate_dde_with_prehistory<S: DdeSystem>(
    sys: &mut S,
    x0: &[f64],
    pre: &[f64],
    t0: f64,
    t1: f64,
    opts: &DdeOptions,
) -> Trace {
    try_integrate_dde_with_prehistory(sys, x0, pre, t0, t1, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`integrate_dde`]: structured errors instead of panics.
pub fn try_integrate_dde<S: DdeSystem>(
    sys: &mut S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    opts: &DdeOptions,
) -> Result<Trace, SimError> {
    try_integrate_dde_with_prehistory(sys, x0, x0, t0, t1, opts)
}

/// Fallible variant of [`integrate_dde_with_prehistory`].
///
/// Returns [`SimError::InvalidConfig`] for a bad window/step/dimension and
/// [`SimError::Divergence`] when the watchdog detects NaN/Inf or an exploding
/// state (max-norm beyond [`DIVERGENCE_NORM`]). On divergence the error
/// carries the time, state norm and last step so the caller can record the
/// failed point and continue the sweep.
pub fn try_integrate_dde_with_prehistory<S: DdeSystem>(
    sys: &mut S,
    x0: &[f64],
    pre: &[f64],
    t0: f64,
    t1: f64,
    opts: &DdeOptions,
) -> Result<Trace, SimError> {
    let n = sys.dim();
    if x0.len() != n || pre.len() != n {
        return Err(SimError::config(
            "integrate_dde",
            format!(
                "state dimension mismatch: system dim {n}, x0 len {}, pre len {}",
                x0.len(),
                pre.len()
            ),
        ));
    }
    if !(opts.step > 0.0 && opts.step.is_finite() && t1 >= t0) {
        return Err(SimError::config(
            "integrate_dde",
            format!(
                "bad integration window: step {} over [{t0}, {t1}]",
                opts.step
            ),
        ));
    }
    let min_delay = sys.min_delay();
    if !(min_delay.is_infinite() || opts.step <= min_delay) {
        return Err(SimError::config(
            "integrate_dde",
            format!(
                "step {} exceeds smallest delay {min_delay}; results would be inconsistent",
                opts.step
            ),
        ));
    }

    let mut hist = History::new(t0, pre);
    // simlint: allow(float-cmp) — exact-by-design: only a bitwise-identical pre-history skips the knot
    if pre != x0 {
        // The state jumps to x0 at t0; represent as a knot at t0 replacing
        // the pre value (History replaces same-time knots).
        hist.push(t0, x0);
    }

    let record_every = opts.record_every.max(1);
    let mut x = x0.to_vec();
    let mut trace = Trace::new(n);
    trace.push(t0, &x);

    let steps = ((t1 - t0) / opts.step).ceil() as usize;
    let mut t = t0;
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    let _span = obs::span::enter(obs::Phase::Integrate);
    for step in 1..=steps {
        let h = (t1 - t).min(opts.step);
        sys.rhs(t, &x, &hist, &mut k1);
        stage_state(&mut tmp, &x, 0.5 * h, &k1);
        sys.rhs(t + 0.5 * h, &tmp, &hist, &mut k2);
        stage_state(&mut tmp, &x, 0.5 * h, &k2);
        sys.rhs(t + 0.5 * h, &tmp, &hist, &mut k3);
        stage_state(&mut tmp, &x, h, &k3);
        sys.rhs(t + h, &tmp, &hist, &mut k4);
        rk4_combine(&mut x, h, &k1, &k2, &k3, &k4);
        t += h;
        sys.project(t, &mut x);
        // Divergence watchdog: NaN/Inf or an exploding state bails with a
        // structured diagnostic instead of taking the whole process down.
        let mut norm = 0.0f64;
        let mut finite = true;
        for &xi in &x {
            if !xi.is_finite() {
                finite = false;
            }
            norm = norm.max(xi.abs());
        }
        if !finite || norm > DIVERGENCE_NORM {
            let state_norm = if finite { norm } else { f64::NAN };
            obs::metrics::counter_inc("fluid.watchdog_trips");
            if obs::trace::enabled() {
                obs::trace::record(
                    t,
                    obs::Event::WatchdogTrip {
                        step: step as u64,
                        state_norm,
                    },
                );
            }
            let err = SimError::Divergence {
                context: "dde integration".into(),
                t_s: t,
                state_norm,
                last_step_s: h,
                step: step as u64,
            };
            // Flight-recorder post-mortem: mark the trip in the causal ring
            // and, if a dump path is armed, write the black box to disk
            // before the error propagates.
            obs::flight::record(t, "watchdog", state_norm, obs::flight::current_cause());
            obs::flight::dump_on_error(&err.to_string());
            return Err(err);
        }
        hist.push(t, &x);
        if opts.history_horizon_s.is_finite() {
            hist.trim_before(t - opts.history_horizon_s);
        }
        if step % record_every == 0 || step == steps {
            trace.push(t, &x);
            if obs::timeseries::enabled() {
                // Downsampled trajectory envelope at the trace cadence: the
                // window spans `record_every` steps' worth of recordings.
                obs::timeseries::sample(
                    "fluid.state_norm",
                    0,
                    (record_every as f64) * opts.step * 8.0,
                    t,
                    norm,
                );
                obs::timeseries::observe("fluid.state_norm", 0, norm);
            }
        }
        obs::metrics::counter_inc("fluid.dde_steps");
        if obs::trace::enabled() {
            obs::trace::record(
                t,
                obs::Event::DdeStep {
                    step: step as u64,
                    dim: n as u64,
                },
            );
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dx/dt = -x(t − 1): the classic test DDE. With constant pre-history
    /// x ≡ 1, the exact solution on [0,1] is x(t) = 1 − t, and on [1,2]
    /// x(t) = 1 − t + (t−1)²/2.
    struct UnitDelay;
    impl DdeSystem for UnitDelay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&mut self, t: f64, _x: &[f64], hist: &History, dxdt: &mut [f64]) {
            dxdt[0] = -hist.eval(t - 1.0, 0);
        }
        fn min_delay(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn matches_method_of_steps_exact_solution() {
        let opts = DdeOptions {
            step: 1e-3,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let tr = integrate_dde(&mut UnitDelay, &[1.0], 0.0, 2.0, &opts);
        for i in 0..tr.len() {
            let t = tr.times()[i];
            let x = tr.state(i)[0];
            let exact = if t <= 1.0 {
                1.0 - t
            } else {
                1.0 - t + (t - 1.0) * (t - 1.0) / 2.0
            };
            assert!((x - exact).abs() < 1e-6, "t={t}: {x} vs {exact}");
        }
    }

    #[test]
    fn zero_delay_reduces_to_ode() {
        struct Decay;
        impl DdeSystem for Decay {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&mut self, t: f64, _x: &[f64], hist: &History, dxdt: &mut [f64]) {
                dxdt[0] = -hist.eval(t, 0);
            }
            fn min_delay(&self) -> f64 {
                f64::INFINITY
            }
        }
        let opts = DdeOptions {
            step: 1e-3,
            record_every: 100,
            history_horizon_s: 0.1,
        };
        let tr = integrate_dde(&mut Decay, &[1.0], 0.0, 1.0, &opts);
        let last = tr.last_state().unwrap()[0];
        // History-based lookup lags by one step for the "current" value, so
        // accuracy is ~O(h); just confirm it tracks e^{-1} closely.
        assert!((last - (-1.0f64).exp()).abs() < 1e-2, "got {last}");
    }

    #[test]
    fn projection_clamps_state() {
        struct Drain;
        impl DdeSystem for Drain {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&mut self, _t: f64, _x: &[f64], _h: &History, dxdt: &mut [f64]) {
                dxdt[0] = -10.0;
            }
            fn min_delay(&self) -> f64 {
                f64::INFINITY
            }
            fn project(&mut self, _t: f64, x: &mut [f64]) {
                x[0] = x[0].max(0.0);
            }
        }
        let opts = DdeOptions {
            step: 0.01,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let tr = integrate_dde(&mut Drain, &[0.5], 0.0, 1.0, &opts);
        assert_eq!(tr.last_state().unwrap()[0], 0.0);
        for i in 0..tr.len() {
            assert!(tr.state(i)[0] >= 0.0);
        }
    }

    #[test]
    fn prehistory_differs_from_initial_state() {
        // dx/dt = -x(t-1); pre-history 2 but x0 = 0: derivative is -2 for
        // t in [0,1) regardless of the current state.
        let opts = DdeOptions {
            step: 1e-3,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let tr = integrate_dde_with_prehistory(&mut UnitDelay, &[0.0], &[2.0], 0.0, 0.5, &opts);
        let last = tr.last_state().unwrap()[0];
        assert!((last - (-1.0)).abs() < 1e-6, "got {last}");
    }

    #[test]
    fn history_trimming_does_not_change_result() {
        let run = |horizon: f64| {
            let opts = DdeOptions {
                step: 1e-3,
                record_every: 1,
                history_horizon_s: horizon,
            };
            integrate_dde(&mut UnitDelay, &[1.0], 0.0, 3.0, &opts)
                .last_state()
                .unwrap()[0]
        };
        let full = run(f64::INFINITY);
        let trimmed = run(1.5); // > max delay of 1.0
        assert!((full - trimmed).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds smallest delay")]
    fn oversized_step_rejected() {
        let opts = DdeOptions {
            step: 2.0,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        integrate_dde(&mut UnitDelay, &[1.0], 0.0, 4.0, &opts);
    }

    #[test]
    fn try_variant_reports_oversized_step_as_config_error() {
        let opts = DdeOptions {
            step: 2.0,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let e = try_integrate_dde(&mut UnitDelay, &[1.0], 0.0, 4.0, &opts).unwrap_err();
        assert!(!e.is_divergence());
        assert!(e.to_string().contains("exceeds smallest delay"), "{e}");
    }

    #[test]
    fn step_equal_to_min_delay_is_accepted_and_accurate() {
        // The boundary case step == min_delay: with x ≡ 1 pre-history the
        // delayed term is piecewise linear, which RK4 over the interpolated
        // history integrates exactly — x(1) = 0 and x(2) = -1/2.
        let opts = DdeOptions {
            step: 1.0,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let tr = try_integrate_dde(&mut UnitDelay, &[1.0], 0.0, 2.0, &opts).unwrap();
        assert_eq!(tr.len(), 3);
        assert!((tr.state(1)[0]).abs() < 1e-9, "x(1) = {}", tr.state(1)[0]);
        assert!(
            (tr.state(2)[0] + 0.5).abs() < 1e-9,
            "x(2) = {}",
            tr.state(2)[0]
        );
    }

    /// dx/dt = gain·x: explosive for large positive gain, the canonical
    /// watchdog fodder.
    struct Explosive {
        gain: f64,
    }
    impl DdeSystem for Explosive {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&mut self, _t: f64, x: &[f64], _h: &History, dxdt: &mut [f64]) {
            dxdt[0] = self.gain * x[0];
        }
        fn min_delay(&self) -> f64 {
            f64::INFINITY
        }
    }

    #[test]
    fn watchdog_trips_on_exploding_state() {
        let opts = DdeOptions {
            step: 1e-3,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let e =
            try_integrate_dde(&mut Explosive { gain: 1e3 }, &[1.0], 0.0, 1.0, &opts).unwrap_err();
        assert!(e.is_divergence(), "{e}");
        let faults::SimError::Divergence {
            t_s,
            state_norm,
            last_step_s,
            step,
            ..
        } = e
        else {
            unreachable!()
        };
        // e^{1000 t} crosses 1e12 near t ≈ 0.0276: the watchdog must fire
        // long before the nominal end of the window, while still finite.
        assert!(t_s < 0.1, "tripped at t = {t_s}");
        assert!(state_norm > DIVERGENCE_NORM && state_norm.is_finite());
        assert_eq!(last_step_s, 1e-3);
        assert!(step > 0);
    }

    #[test]
    fn watchdog_trips_on_nan_rhs() {
        struct NanRhs;
        impl DdeSystem for NanRhs {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&mut self, _t: f64, _x: &[f64], _h: &History, dxdt: &mut [f64]) {
                dxdt[0] = f64::NAN;
            }
            fn min_delay(&self) -> f64 {
                f64::INFINITY
            }
        }
        let opts = DdeOptions {
            step: 1e-3,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let e = try_integrate_dde(&mut NanRhs, &[1.0], 0.0, 1.0, &opts).unwrap_err();
        let faults::SimError::Divergence {
            state_norm, step, ..
        } = e
        else {
            panic!("expected divergence, got {e}");
        };
        assert!(state_norm.is_nan(), "NaN states report a NaN norm");
        assert_eq!(step, 1, "NaN must be caught on the very first step");
    }

    #[test]
    fn stable_system_unaffected_by_watchdog() {
        // Same machinery, contracting dynamics: Ok, identical to before.
        let opts = DdeOptions {
            step: 1e-3,
            record_every: 1,
            history_horizon_s: f64::INFINITY,
        };
        let tr = try_integrate_dde(&mut Explosive { gain: -1.0 }, &[1.0], 0.0, 1.0, &opts).unwrap();
        let last = tr.last_state().unwrap()[0];
        assert!((last - (-1.0f64).exp()).abs() < 1e-6, "got {last}");
    }
}
