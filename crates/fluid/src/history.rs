//! Dense solution history with linear interpolation, for delayed lookups.
//!
//! A DDE right-hand side needs `x_c(t − d)` for various components `c` and
//! delays `d` (possibly state-dependent, as in TIMELY's Eq 24). [`History`]
//! stores `(t, state)` knots as the integration advances and answers
//! interpolated queries. Queries before the recorded range fall back to the
//! *initial function* — a constant pre-history equal to the initial state by
//! default, which matches both models' initial conditions (constant rates and
//! empty queue before `t0`).

/// Interpolated solution history for DDE integration.
#[derive(Debug, Clone)]
pub struct History {
    dim: usize,
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    /// Values returned for queries at `t <= times[0]`.
    pre: Vec<f64>,
    /// Index hint for monotone query patterns (typical in integration).
    cursor: std::cell::Cell<usize>,
}

impl History {
    /// New history with the given pre-`t0` constant state.
    pub fn new(t0: f64, initial: &[f64]) -> Self {
        History {
            dim: initial.len(),
            times: vec![t0],
            states: vec![initial.to_vec()],
            pre: initial.to_vec(),
            cursor: std::cell::Cell::new(0),
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Append a knot. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, state: &[f64]) {
        assert_eq!(state.len(), self.dim);
        // simlint: allow(panic) — history is seeded with one knot at construction
        let last = *self.times.last().expect("history never empty");
        assert!(t >= last, "history times must be non-decreasing");
        if t == last {
            // Replace the knot (refinement of the same instant).
            if let Some(s) = self.states.last_mut() {
                *s = state.to_vec();
            }
        } else {
            self.times.push(t);
            self.states.push(state.to_vec());
        }
    }

    /// Earliest recorded time.
    pub fn t_front(&self) -> f64 {
        self.times[0] // seeded non-empty at construction
    }

    /// Latest recorded time.
    pub fn t_back(&self) -> f64 {
        // simlint: allow(panic) — seeded non-empty at construction
        *self.times.last().unwrap()
    }

    /// Interpolated value of component `c` at time `t`.
    ///
    /// * `t <= t_front()` → pre-history constant.
    /// * `t >= t_back()`  → latest value (constant extrapolation). This is
    ///   what makes intra-step stage evaluations well-defined when a delay is
    ///   smaller than the step size; the integrator keeps steps below the
    ///   smallest delay, so this path only smooths sub-step lookups.
    pub fn eval(&self, t: f64, c: usize) -> f64 {
        assert!(c < self.dim, "component out of range");
        // times[0] exists: seeded non-empty at construction.
        if t <= self.times[0] {
            return self.pre[c];
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            return self.states[n - 1][c];
        }
        let idx = self.locate(t);
        let (t0, t1) = (self.times[idx], self.times[idx + 1]);
        let (v0, v1) = (self.states[idx][c], self.states[idx + 1][c]);
        if t1 == t0 {
            return v1;
        }
        let w = (t - t0) / (t1 - t0);
        v0 + w * (v1 - v0)
    }

    /// Find `idx` with `times[idx] <= t < times[idx+1]`, exploiting monotone
    /// query locality via a cursor, falling back to binary search.
    fn locate(&self, t: f64) -> usize {
        let n = self.times.len();
        let mut idx = self.cursor.get().min(n - 2);
        if self.times[idx] <= t {
            // Walk forward a few steps before giving up to binary search.
            let mut walked = 0;
            while idx + 1 < n - 1 && self.times[idx + 1] <= t {
                idx += 1;
                walked += 1;
                if walked > 8 {
                    idx = self.bsearch(t);
                    break;
                }
            }
        } else {
            idx = self.bsearch(t);
        }
        self.cursor.set(idx);
        idx
    }

    fn bsearch(&self, t: f64) -> usize {
        match self.times.binary_search_by(|probe| probe.total_cmp(&t)) {
            Ok(i) => i.min(self.times.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.times.len() - 2),
        }
    }

    /// Drop knots older than `t_keep` (all strictly earlier than the knot
    /// preceding `t_keep`), bounding memory for long integrations. The
    /// pre-history constant is preserved for queries that still reach back
    /// before the trimmed front (they return the oldest retained knot's
    /// segment or the pre constant).
    pub fn trim_before(&mut self, t_keep: f64) {
        // Keep one knot at or before t_keep so interpolation at t_keep works.
        let mut first_needed = 0;
        for (i, &t) in self.times.iter().enumerate() {
            if t <= t_keep {
                first_needed = i;
            } else {
                break;
            }
        }
        if first_needed > 0 {
            self.times.drain(..first_needed);
            self.states.drain(..first_needed);
            self.pre = self.states[0].clone(); // drain keeps first_needed.., non-empty
            self.cursor.set(0);
        }
    }

    /// Number of retained knots.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always false: a history holds at least the initial knot.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_history() -> History {
        // x(t) = 2t on [0, 10], pre-history x = 0.
        let mut h = History::new(0.0, &[0.0]);
        for i in 1..=10 {
            let t = i as f64;
            h.push(t, &[2.0 * t]);
        }
        h
    }

    #[test]
    fn interpolates_linearly() {
        let h = linear_history();
        assert_eq!(h.eval(3.5, 0), 7.0);
        assert_eq!(h.eval(0.25, 0), 0.5);
        assert_eq!(h.eval(9.99, 0), 19.98);
    }

    #[test]
    fn pre_history_constant() {
        let h = linear_history();
        assert_eq!(h.eval(-5.0, 0), 0.0);
        assert_eq!(h.eval(0.0, 0), 0.0);
    }

    #[test]
    fn extrapolates_latest() {
        let h = linear_history();
        assert_eq!(h.eval(42.0, 0), 20.0);
    }

    #[test]
    fn replacing_same_time_knot() {
        let mut h = History::new(0.0, &[1.0]);
        h.push(1.0, &[5.0]);
        h.push(1.0, &[6.0]); // refine
        assert_eq!(h.eval(1.0, 0), 6.0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn monotone_and_random_queries_agree() {
        let h = linear_history();
        // Monotone sweep (uses cursor) then random jumps (binary search).
        for i in 0..100 {
            let t = i as f64 * 0.1;
            assert!((h.eval(t, 0) - 2.0 * t).abs() < 1e-12);
        }
        for &t in &[9.5, 0.1, 5.5, 2.2, 8.8, 0.9] {
            assert!((h.eval(t, 0) - 2.0 * t).abs() < 1e-12);
        }
    }

    #[test]
    fn trim_preserves_interpolation_after_cut() {
        let mut h = linear_history();
        h.trim_before(5.0);
        assert!(h.len() <= 6);
        assert_eq!(h.eval(7.5, 0), 15.0);
        assert_eq!(h.eval(5.0, 0), 10.0);
    }

    #[test]
    fn multi_component() {
        let mut h = History::new(0.0, &[1.0, -1.0]);
        h.push(2.0, &[3.0, -3.0]);
        assert_eq!(h.eval(1.0, 0), 2.0);
        assert_eq!(h.eval(1.0, 1), -2.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut h = History::new(0.0, &[0.0]);
        h.push(2.0, &[1.0]);
        h.push(1.0, &[1.0]);
    }
}
