//! Dense solution history with linear interpolation, for delayed lookups.
//!
//! A DDE right-hand side needs `x_c(t − d)` for various components `c` and
//! delays `d` (possibly state-dependent, as in TIMELY's Eq 24). [`History`]
//! stores `(t, state)` knots as the integration advances and answers
//! interpolated queries. Queries before the recorded range fall back to the
//! *initial function* — a constant pre-history equal to the initial state by
//! default, which matches both models' initial conditions (constant rates and
//! empty queue before `t0`).
//!
//! Storage is a single flat `Vec<f64>` with stride `dim`, so [`History::push`]
//! is one `extend_from_slice` (no per-knot allocation) and a whole-state
//! lookup ([`History::eval_all`]) locates the bracketing knot pair **once**
//! and interpolates every component from the two rows — the N-flow DCQCN RHS
//! needs the queue plus all N delayed rates at the same delayed time, which
//! would otherwise pay N+1 independent searches. [`History::trim_before`]
//! advances a logical front offset and only compacts the buffers once the
//! dead prefix dominates, amortizing the `drain` that used to run every step.

/// Interpolated solution history for DDE integration.
#[derive(Debug, Clone)]
pub struct History {
    dim: usize,
    /// Knot times; indices `< front` are trimmed (logically dead).
    times: Vec<f64>,
    /// Flat knot states, stride `dim`, same logical front as `times`.
    states: Vec<f64>,
    /// Physical index of the first live knot.
    front: usize,
    /// Values returned for queries at `t <= times[front]`.
    pre: Vec<f64>,
    /// Physical index hint for monotone query patterns (typical in
    /// integration).
    cursor: std::cell::Cell<usize>,
}

impl History {
    /// New history with the given pre-`t0` constant state.
    pub fn new(t0: f64, initial: &[f64]) -> Self {
        History {
            dim: initial.len(),
            times: vec![t0],
            states: initial.to_vec(),
            front: 0,
            pre: initial.to_vec(),
            cursor: std::cell::Cell::new(0),
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `idx` (physical) of the flat state buffer.
    #[inline]
    fn row(&self, idx: usize) -> &[f64] {
        &self.states[idx * self.dim..(idx + 1) * self.dim]
    }

    /// Append a knot. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, state: &[f64]) {
        assert_eq!(state.len(), self.dim);
        // In bounds: the history is seeded with one knot at construction and
        // never shrinks below it.
        let last = self.times[self.times.len() - 1];
        assert!(t >= last, "history times must be non-decreasing");
        // simlint: allow(float-cmp) — exact-by-design: only the bitwise-same instant replaces a knot
        if t == last {
            // Replace the knot (refinement of the same instant).
            let off = self.states.len() - self.dim;
            self.states[off..].copy_from_slice(state);
        } else {
            self.times.push(t);
            self.states.extend_from_slice(state);
        }
    }

    /// Earliest retained time.
    pub fn t_front(&self) -> f64 {
        self.times[self.front] // front < times.len() by construction
    }

    /// Latest recorded time.
    pub fn t_back(&self) -> f64 {
        // In bounds: seeded non-empty at construction, never shrinks below 1.
        self.times[self.times.len() - 1]
    }

    /// Interpolated value of component `c` at time `t`.
    ///
    /// * `t <= t_front()` → pre-history constant.
    /// * `t >= t_back()`  → latest value (constant extrapolation). This is
    ///   what makes intra-step stage evaluations well-defined when a delay is
    ///   smaller than the step size; the integrator keeps steps below the
    ///   smallest delay, so this path only smooths sub-step lookups.
    pub fn eval(&self, t: f64, c: usize) -> f64 {
        assert!(c < self.dim, "component out of range");
        if t <= self.times[self.front] {
            // front < times.len() by construction
            return self.pre[c];
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            // non-empty by construction
            return self.row(n - 1)[c];
        }
        let idx = self.locate(t);
        let (t0, t1) = (self.times[idx], self.times[idx + 1]);
        let (v0, v1) = (self.row(idx)[c], self.row(idx + 1)[c]);
        if t1 == t0 {
            return v1;
        }
        let w = (t - t0) / (t1 - t0);
        v0 + w * (v1 - v0)
    }

    /// Interpolate **every** component at time `t` into `out` (length
    /// `dim`), locating the bracketing knot pair once. Bit-identical to
    /// calling [`History::eval`] per component — the interpolation arithmetic
    /// is the same — at a single search instead of `dim`.
    pub fn eval_all(&self, t: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "output slice dimension mismatch");
        let _span = obs::span::enter(obs::Phase::Locate);
        if t <= self.times[self.front] {
            // front < times.len() by construction
            out.copy_from_slice(&self.pre);
            return;
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            // non-empty by construction
            out.copy_from_slice(self.row(n - 1));
            return;
        }
        let idx = self.locate(t);
        let (t0, t1) = (self.times[idx], self.times[idx + 1]);
        let (r0, r1) = (self.row(idx), self.row(idx + 1));
        if t1 == t0 {
            out.copy_from_slice(r1);
            return;
        }
        let w = (t - t0) / (t1 - t0);
        for ((o, &v0), &v1) in out.iter_mut().zip(r0).zip(r1) {
            *o = v0 + w * (v1 - v0);
        }
    }

    /// Interpolate the `count` components `offset, offset + stride,
    /// offset + 2·stride, …` at time `t` into `out[..count]`, locating the
    /// bracketing knot pair **once** for the whole strided slice.
    ///
    /// This is the batched-lane access pattern (see `fluid::batch`): a lane's
    /// state lives at components `lane, lane + B, lane + 2B, …` of a
    /// `[state_dim × B]` struct-of-arrays history row, so one call fetches a
    /// full per-lane delayed state with a single search. Bit-identical to
    /// calling [`History::eval`] per component — the interpolation arithmetic
    /// is the same.
    pub fn eval_strided(
        &self,
        t: f64,
        offset: usize,
        stride: usize,
        count: usize,
        out: &mut [f64],
    ) {
        assert!(stride >= 1, "stride must be at least 1");
        assert!(
            count == 0 || offset + (count - 1) * stride < self.dim,
            "strided component range out of bounds"
        );
        assert!(out.len() >= count, "output slice too short");
        // A dense full-row request (the scalar path: stride 1 over every
        // component) takes the contiguous-zip loop of `eval_all` — same
        // per-component arithmetic, better codegen than indexed gathers.
        if stride == 1 && offset == 0 && count == self.dim {
            return self.eval_all(t, &mut out[..count]);
        }
        let _span = obs::span::enter(obs::Phase::Locate);
        if t <= self.times[self.front] {
            // front < times.len() by construction
            for (k, o) in out[..count].iter_mut().enumerate() {
                *o = self.pre[offset + k * stride];
            }
            return;
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            // non-empty by construction
            let r = self.row(n - 1);
            for (k, o) in out[..count].iter_mut().enumerate() {
                *o = r[offset + k * stride];
            }
            return;
        }
        let idx = self.locate(t);
        let (t0, t1) = (self.times[idx], self.times[idx + 1]);
        let (r0, r1) = (self.row(idx), self.row(idx + 1));
        if t1 == t0 {
            for (k, o) in out[..count].iter_mut().enumerate() {
                *o = r1[offset + k * stride];
            }
            return;
        }
        let w = (t - t0) / (t1 - t0);
        for (k, o) in out[..count].iter_mut().enumerate() {
            let c = offset + k * stride;
            let (v0, v1) = (r0[c], r1[c]);
            *o = v0 + w * (v1 - v0);
        }
    }

    /// Find physical `idx` with `times[idx] <= t < times[idx+1]`, exploiting
    /// monotone query locality via a cursor, falling back to binary search.
    fn locate(&self, t: f64) -> usize {
        let n = self.times.len();
        let mut idx = self.cursor.get().clamp(self.front, n - 2);
        if self.times[idx] <= t {
            // Walk forward a few steps before giving up to binary search.
            let mut walked = 0;
            while idx + 1 < n - 1 && self.times[idx + 1] <= t {
                idx += 1;
                walked += 1;
                if walked > 8 {
                    idx = self.bsearch(t);
                    break;
                }
            }
        } else {
            idx = self.bsearch(t);
        }
        self.cursor.set(idx);
        idx
    }

    fn bsearch(&self, t: f64) -> usize {
        let hi = self.times.len() - 2;
        match self.times[self.front..].binary_search_by(|probe| probe.total_cmp(&t)) {
            Ok(i) => (self.front + i).min(hi),
            Err(i) => (self.front + i).saturating_sub(1).clamp(self.front, hi),
        }
    }

    /// Drop knots older than `t_keep` (all strictly earlier than the knot
    /// preceding `t_keep`), bounding memory for long integrations. The
    /// pre-history constant is preserved for queries that still reach back
    /// before the trimmed front (they return the oldest retained knot's
    /// segment or the pre constant).
    ///
    /// Trimming only advances the logical front; the buffers are compacted
    /// in chunks once the dead prefix outgrows the live suffix, so the cost
    /// of the copy is amortized O(1) per retired knot.
    pub fn trim_before(&mut self, t_keep: f64) {
        // Keep one knot at or before t_keep so interpolation at t_keep works:
        // partition_point gives the first index with t > t_keep; the knot
        // before it is the last one at or before t_keep.
        let live = &self.times[self.front..];
        let first_needed = live.partition_point(|&t| t <= t_keep).saturating_sub(1);
        if first_needed == 0 {
            return;
        }
        self.front += first_needed;
        self.pre
            .copy_from_slice(&self.states[self.front * self.dim..(self.front + 1) * self.dim]);
        if self.cursor.get() < self.front {
            self.cursor.set(self.front);
        }
        // Compact once the dead prefix dominates (and is big enough for the
        // copy to be worth it).
        if self.front > 256 && self.front * 2 > self.times.len() {
            let _span = obs::span::enter(obs::Phase::Compact);
            let dropped = self.front;
            self.times.drain(..self.front);
            self.states.drain(..self.front * self.dim);
            self.cursor.set(self.cursor.get() - self.front);
            self.front = 0;
            obs::metrics::counter_inc("fluid.history_compactions");
            obs::trace::record(
                t_keep,
                obs::Event::HistoryCompaction {
                    dropped_rows: dropped as u64,
                    retained_rows: self.times.len() as u64,
                },
            );
        }
    }

    /// Number of retained knots.
    pub fn len(&self) -> usize {
        self.times.len() - self.front
    }

    /// Always false: a history holds at least the initial knot.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_history() -> History {
        // x(t) = 2t on [0, 10], pre-history x = 0.
        let mut h = History::new(0.0, &[0.0]);
        for i in 1..=10 {
            let t = i as f64;
            h.push(t, &[2.0 * t]);
        }
        h
    }

    #[test]
    fn interpolates_linearly() {
        let h = linear_history();
        assert_eq!(h.eval(3.5, 0), 7.0);
        assert_eq!(h.eval(0.25, 0), 0.5);
        assert_eq!(h.eval(9.99, 0), 19.98);
    }

    #[test]
    fn pre_history_constant() {
        let h = linear_history();
        assert_eq!(h.eval(-5.0, 0), 0.0);
        assert_eq!(h.eval(0.0, 0), 0.0);
    }

    #[test]
    fn extrapolates_latest() {
        let h = linear_history();
        assert_eq!(h.eval(42.0, 0), 20.0);
    }

    #[test]
    fn replacing_same_time_knot() {
        let mut h = History::new(0.0, &[1.0]);
        h.push(1.0, &[5.0]);
        h.push(1.0, &[6.0]); // refine
        assert_eq!(h.eval(1.0, 0), 6.0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn monotone_and_random_queries_agree() {
        let h = linear_history();
        // Monotone sweep (uses cursor) then random jumps (binary search).
        for i in 0..100 {
            let t = i as f64 * 0.1;
            assert!((h.eval(t, 0) - 2.0 * t).abs() < 1e-12);
        }
        for &t in &[9.5, 0.1, 5.5, 2.2, 8.8, 0.9] {
            assert!((h.eval(t, 0) - 2.0 * t).abs() < 1e-12);
        }
    }

    #[test]
    fn trim_preserves_interpolation_after_cut() {
        let mut h = linear_history();
        h.trim_before(5.0);
        assert!(h.len() <= 6);
        assert_eq!(h.eval(7.5, 0), 15.0);
        assert_eq!(h.eval(5.0, 0), 10.0);
    }

    #[test]
    fn trim_then_query_before_front_returns_new_pre() {
        let mut h = linear_history();
        h.trim_before(5.0);
        // Queries at or before the new front return the oldest retained knot.
        assert_eq!(h.eval(1.0, 0), 10.0);
        assert_eq!(h.t_front(), 5.0);
    }

    #[test]
    fn multi_component() {
        let mut h = History::new(0.0, &[1.0, -1.0]);
        h.push(2.0, &[3.0, -3.0]);
        assert_eq!(h.eval(1.0, 0), 2.0);
        assert_eq!(h.eval(1.0, 1), -2.0);
    }

    #[test]
    fn eval_all_matches_eval_per_component() {
        let mut h = History::new(0.0, &[1.0, -1.0, 0.5]);
        for i in 1..=20 {
            let t = i as f64 * 0.5;
            h.push(t, &[1.0 + t, -1.0 - t * t, 0.5 * t]);
        }
        let mut out = vec![0.0; 3];
        for i in -4..30 {
            let t = i as f64 * 0.37;
            h.eval_all(t, &mut out);
            for (c, &o) in out.iter().enumerate() {
                assert_eq!(o, h.eval(t, c), "t={t} c={c}");
            }
        }
    }

    #[test]
    fn eval_all_matches_eval_on_random_knots() {
        // Random (sorted) knot times and random states: eval_all must agree
        // with per-component eval to the last bit, including after trims.
        let mut rng = desim::SimRng::new(0xB0B);
        let dim = 7;
        let init: Vec<f64> = (0..dim).map(|_| rng.next_f64()).collect();
        let mut h = History::new(0.0, &init);
        let mut t = 0.0;
        let mut out = vec![0.0; dim];
        for step in 0..500 {
            t += rng.next_f64() * 0.1;
            let state: Vec<f64> = (0..dim).map(|_| rng.next_f64() * 100.0 - 50.0).collect();
            h.push(t, &state);
            if step % 97 == 0 {
                h.trim_before(t - 1.0);
            }
            // Query a batch of random times straddling the whole range.
            for _ in 0..4 {
                let tq = rng.next_f64() * (t + 1.0) - 0.5;
                h.eval_all(tq, &mut out);
                for (c, &o) in out.iter().enumerate() {
                    let direct = h.eval(tq, c);
                    assert!(
                        o.to_bits() == direct.to_bits(),
                        "t={tq} c={c}: {o} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_strided_matches_eval_per_component() {
        // Strided lane access must agree with per-component eval to the last
        // bit, across pre-history, interior and extrapolation regions, and
        // after trims — this is the oracle for the batched SoA lane layout.
        let mut rng = desim::SimRng::new(0xBA7C);
        let lanes = 4;
        let lane_dim = 3;
        let dim = lanes * lane_dim;
        let init: Vec<f64> = (0..dim).map(|_| rng.next_f64()).collect();
        let mut h = History::new(0.0, &init);
        let mut t = 0.0;
        let mut out = vec![0.0; lane_dim];
        for step in 0..300 {
            t += rng.next_f64() * 0.1;
            let state: Vec<f64> = (0..dim).map(|_| rng.next_f64() * 100.0 - 50.0).collect();
            h.push(t, &state);
            if step % 83 == 0 {
                h.trim_before(t - 1.0);
            }
            for _ in 0..3 {
                let tq = rng.next_f64() * (t + 1.0) - 0.5;
                for lane in 0..lanes {
                    h.eval_strided(tq, lane, lanes, lane_dim, &mut out);
                    for (k, &o) in out.iter().enumerate() {
                        let direct = h.eval(tq, lane + k * lanes);
                        assert!(
                            o.to_bits() == direct.to_bits(),
                            "t={tq} lane={lane} k={k}: {o} vs {direct}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn long_run_trim_compacts_storage() {
        // Push far more knots than the horizon retains; the physical buffers
        // must stay bounded (compaction) while interpolation stays correct.
        let mut h = History::new(0.0, &[0.0]);
        for i in 1..=20_000 {
            let t = i as f64 * 1e-3;
            h.push(t, &[2.0 * t]);
            h.trim_before(t - 0.5);
        }
        assert!(h.len() < 600, "live window bounded, len = {}", h.len());
        // Physical storage is at most ~2x the live window after compaction.
        assert!(
            h.times.capacity() < 20_000,
            "storage must not grow with total pushes: cap {}",
            h.times.capacity()
        );
        let t = 19.75;
        assert!((h.eval(t, 0) - 2.0 * t).abs() < 1e-9);
    }

    /// Knots at t = 0, 1, …, n−1 with x = 2t.
    fn ramp_history(n: usize) -> History {
        let mut h = History::new(0.0, &[0.0]);
        for i in 1..n {
            let t = i as f64;
            h.push(t, &[2.0 * t]);
        }
        h
    }

    #[test]
    fn trim_at_exact_compaction_boundary() {
        // Compaction requires front > 256 AND front * 2 > times.len().
        // front == 256 sits exactly on the first boundary: no compaction.
        let mut h = ramp_history(601);
        h.trim_before(256.0);
        assert_eq!(h.front, 256, "at the boundary the front only advances");
        assert_eq!(h.len(), 601 - 256);
        // front == 257 passes the first test but 257*2 = 514 < 601: the dead
        // prefix does not dominate yet, still no compaction.
        h.trim_before(257.0);
        assert_eq!(h.front, 257);
        // Interpolation across the retained range is unaffected.
        assert_eq!(h.eval(300.5, 0), 601.0);
        assert_eq!(h.t_front(), 257.0);
    }

    #[test]
    fn trim_just_past_compaction_boundary_compacts() {
        // 513 knots: front = 257 satisfies both front > 256 and
        // 2*257 = 514 > 513, so this trim must physically compact.
        let mut h = ramp_history(513);
        h.trim_before(257.0);
        assert_eq!(h.front, 0, "compaction resets the physical front");
        assert_eq!(h.len(), 513 - 257);
        assert_eq!(h.times.len(), h.len(), "dead prefix physically dropped");
        assert_eq!(h.eval(400.25, 0), 800.5);
        // Queries behind the new front return the oldest retained knot.
        assert_eq!(h.eval(0.0, 0), 2.0 * 257.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut h = History::new(0.0, &[0.0]);
        h.push(2.0, &[1.0]);
        h.push(1.0, &[1.0]);
    }
}
