//! # fluid — ODE and delay-differential-equation integrators
//!
//! The fluid models in the CoNEXT'16 *"ECN or Delay"* paper (Figures 1 and 7)
//! are systems of **delay differential equations** (DDEs): the right-hand
//! sides reference delayed quantities such as the marking probability
//! `p(t − τ*)` and delayed queue lengths `q(t − τ′)`, and for TIMELY the
//! delay itself is state-dependent (`τ′ = q/C + MTU/C + D_prop`, Eq 24).
//!
//! This crate provides what those models need and nothing more:
//!
//! * [`OdeSystem`] + fixed-step Euler / RK4 and adaptive RKF45 integrators
//!   for plain ODEs (used by unit tests and the PI-controller analysis);
//! * [`History`] — a dense, linearly interpolated record of the solution,
//!   queried by the model for arbitrary delayed lookups;
//! * [`DdeSystem`] + a fixed-step RK4 DDE integrator using the method of
//!   steps: delayed values are read from the accumulated history, with the
//!   pre-`t0` segment supplied by a user initial function (constant initial
//!   state by default, matching the paper's "flows start at line rate");
//! * [`LaneSystem`] / [`LaneBatch`] + a batched lockstep RK4 DDE integrator
//!   ([`try_integrate_dde_batch`]): B sweep configs integrate simultaneously
//!   over one `[state_dim × B]` struct-of-arrays block with per-lane
//!   divergence reporting, bit-identical to the scalar path at B = 1;
//! * [`Trace`] — a recorded solution with per-component series extraction
//!   and decimation, the common currency of every figure runner.
//!
//! The integrators are deliberately explicit and fixed-step: the models have
//! modest stiffness, delays of a few microseconds set a natural step-size
//! bound anyway, and bit-for-bit reproducibility matters more than adaptive
//! cleverness here.

#![deny(missing_docs)]

pub mod batch;
pub mod dde;
pub mod history;
pub mod ode;
pub mod trace;

pub use batch::{
    batch_stride, integrate_dde_batch, lane_of, pack_lanes, try_integrate_dde_batch,
    BatchDdeSystem, LaneBatch, LaneSystem,
};
pub use dde::{integrate_dde, DdeSystem};
pub use history::History;
pub use ode::{integrate_ode, integrate_ode_adaptive, OdeSystem};
pub use trace::Trace;
