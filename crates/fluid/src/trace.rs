//! Recorded solutions of fluid-model integrations.

/// A recorded solution: times plus the full state vector at each time.
///
/// Storage mirrors [`crate::history::History`]'s flat strided layout: one
/// contiguous `Vec<f64>` holding row-major `dim`-wide state rows, so a
/// 10-flow DCQCN run records into two allocations instead of one `Vec` per
/// recorded point. Row `i` lives at `states[i*dim .. (i+1)*dim]`.
///
/// Figure runners extract named components (`queue`, `rate of flow i`) via
/// [`Trace::series`] and post-process (decimate, window, compare against the
/// packet simulator's traces).
#[derive(Debug, Clone)]
pub struct Trace {
    times: Vec<f64>,
    /// Flat row-major state storage, stride `dim`.
    states: Vec<f64>,
    dim: usize,
}

impl Trace {
    /// New empty trace for a `dim`-dimensional system.
    pub fn new(dim: usize) -> Self {
        Trace {
            times: Vec::new(),
            states: Vec::new(),
            dim,
        }
    }

    /// Record the state at time `t`.
    pub fn push(&mut self, t: f64, state: &[f64]) {
        assert_eq!(state.len(), self.dim, "state dimension mismatch");
        debug_assert!(
            self.times.last().is_none_or(|&last| t >= last),
            "trace times must be non-decreasing"
        );
        self.times.push(t);
        self.states.extend_from_slice(state);
    }

    /// The state dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Recorded time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// State vector at index `i` (a `dim`-wide slice of the flat buffer).
    pub fn state(&self, i: usize) -> &[f64] {
        assert!(i < self.times.len(), "trace index out of range");
        &self.states[i * self.dim..(i + 1) * self.dim]
    }

    /// Final recorded state, if any.
    pub fn last_state(&self) -> Option<&[f64]> {
        if self.times.is_empty() {
            None
        } else {
            Some(self.state(self.times.len() - 1))
        }
    }

    /// Extract component `c` as a `(t, value)` series.
    pub fn series(&self, c: usize) -> Vec<(f64, f64)> {
        assert!(c < self.dim, "component out of range");
        self.times
            .iter()
            .zip(self.states.chunks_exact(self.dim.max(1)))
            .map(|(&t, row)| (t, row[c]))
            .collect()
    }

    /// Extract component `c` restricted to `t >= from`.
    pub fn series_from(&self, c: usize, from: f64) -> Vec<(f64, f64)> {
        self.series(c)
            .into_iter()
            .filter(|&(t, _)| t >= from)
            .collect()
    }

    /// Keep roughly every n-th point (for figure output). Always keeps the
    /// first and last points.
    pub fn decimate(&self, keep_every: usize) -> Trace {
        assert!(keep_every > 0);
        let mut out = Trace::new(self.dim);
        let n = self.times.len();
        for i in 0..n {
            if i % keep_every == 0 || i == n - 1 {
                out.push(self.times[i], self.state(i));
            }
        }
        out
    }

    /// Max absolute value of component `c` over `t >= from` (oscillation
    /// amplitude probe used by stability tests).
    pub fn max_abs_from(&self, c: usize, from: f64) -> f64 {
        self.series_from(c, from)
            .iter()
            .map(|&(_, v)| v.abs())
            .fold(0.0, f64::max)
    }

    /// Peak-to-peak amplitude (max − min) of component `c` over `t >= from`.
    /// Small amplitude after a settling window ⇒ the trajectory converged;
    /// large amplitude ⇒ sustained oscillation (instability). Used to
    /// cross-check phase-margin predictions in the time domain.
    pub fn peak_to_peak_from(&self, c: usize, from: f64) -> f64 {
        let pts = self.series_from(c, from);
        if pts.is_empty() {
            return 0.0;
        }
        let max = pts
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = pts.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Time-average of component `c` over `t >= from` (trapezoidal).
    pub fn mean_from(&self, c: usize, from: f64) -> f64 {
        let pts = self.series_from(c, from);
        if pts.len() < 2 {
            return pts.first().map_or(0.0, |&(_, v)| v);
        }
        let mut area = 0.0;
        for w in pts.windows(2) {
            let (t0, v0) = w[0]; // windows(2) yields pairs
            let (t1, v1) = w[1]; // windows(2) yields pairs
            area += 0.5 * (v0 + v1) * (t1 - t0);
        }
        let t_last = pts.last().map_or(0.0, |p| p.0);
        area / (t_last - pts[0].0) // len >= 2 checked above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        let mut tr = Trace::new(2);
        for i in 0..=10 {
            let t = i as f64;
            tr.push(t, &[t, -t]);
        }
        tr
    }

    #[test]
    fn series_extraction() {
        let tr = ramp();
        let s = tr.series(0);
        assert_eq!(s.len(), 11);
        assert_eq!(s[3], (3.0, 3.0));
        let s1 = tr.series(1);
        assert_eq!(s1[3], (3.0, -3.0));
    }

    #[test]
    fn series_from_filters() {
        let tr = ramp();
        let s = tr.series_from(0, 7.5);
        assert_eq!(s.len(), 3); // t = 8, 9, 10
        assert_eq!(s[0].0, 8.0);
    }

    #[test]
    fn decimation_keeps_endpoints() {
        let tr = ramp();
        let d = tr.decimate(4);
        let times: Vec<f64> = d.times().to_vec();
        assert_eq!(times, vec![0.0, 4.0, 8.0, 10.0]);
    }

    #[test]
    fn amplitude_probes() {
        let mut tr = Trace::new(1);
        for i in 0..100 {
            let t = i as f64 * 0.1;
            tr.push(t, &[(t * 10.0).sin()]);
        }
        assert!(tr.max_abs_from(0, 0.0) > 0.99);
        assert!(tr.peak_to_peak_from(0, 0.0) > 1.9);
    }

    #[test]
    fn mean_of_linear_ramp() {
        let tr = ramp();
        // mean of t over [0,10] = 5
        assert!((tr.mean_from(0, 0.0) - 5.0).abs() < 1e-12);
        // restricted mean over [6,10] = 8
        assert!((tr.mean_from(0, 6.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_checked() {
        let mut tr = Trace::new(2);
        tr.push(0.0, &[1.0]);
    }

    #[test]
    fn empty_trace_accessors() {
        let tr = Trace::new(3);
        assert!(tr.is_empty());
        assert_eq!(tr.len(), 0);
        assert!(tr.last_state().is_none());
        assert!(tr.series(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "trace index out of range")]
    fn state_index_checked() {
        let tr = Trace::new(1);
        let _ = tr.state(0);
    }

    /// The pre-flattening representation, kept as a reference oracle: the
    /// flat strided buffer must reproduce its outputs **bit for bit**.
    struct NestedTrace {
        times: Vec<f64>,
        states: Vec<Vec<f64>>,
    }

    impl NestedTrace {
        fn push(&mut self, t: f64, state: &[f64]) {
            self.times.push(t);
            self.states.push(state.to_vec());
        }
        fn series(&self, c: usize) -> Vec<(f64, f64)> {
            self.times
                .iter()
                .zip(&self.states)
                .map(|(&t, s)| (t, s[c]))
                .collect()
        }
    }

    #[test]
    fn bit_identity_with_nested_representation() {
        // Push an irrational-flavoured sequence through both layouts and
        // compare every accessor output by exact bit pattern.
        let dim = 4;
        let mut flat = Trace::new(dim);
        let mut nested = NestedTrace {
            times: Vec::new(),
            states: Vec::new(),
        };
        let mut row = vec![0.0; dim];
        for i in 0..257 {
            let t = i as f64 * 0.3331;
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = ((i * 31 + c * 7) as f64).sin() * 1e9 / (c as f64 + 0.5);
            }
            flat.push(t, &row);
            nested.push(t, &row);
        }
        assert_eq!(flat.len(), nested.times.len());
        for i in 0..flat.len() {
            assert_eq!(flat.times()[i].to_bits(), nested.times[i].to_bits());
            for c in 0..dim {
                assert_eq!(
                    flat.state(i)[c].to_bits(),
                    nested.states[i][c].to_bits(),
                    "row {i} component {c}"
                );
            }
        }
        for c in 0..dim {
            let fs = flat.series(c);
            let ns = nested.series(c);
            assert_eq!(fs.len(), ns.len());
            for (f, n) in fs.iter().zip(&ns) {
                assert_eq!(f.0.to_bits(), n.0.to_bits());
                assert_eq!(f.1.to_bits(), n.1.to_bits());
            }
        }
        // Derived probes agree bit-for-bit too (same fold order).
        let last = flat.last_state().unwrap();
        for (c, v) in last.iter().enumerate() {
            assert_eq!(v.to_bits(), nested.states.last().unwrap()[c].to_bits());
        }
    }
}
