//! Batched lockstep RK4 integration of B independent DDE configs.
//!
//! A parameter sweep integrates many *independent* DDE instances with the
//! same state dimension and step grid — Figure 4's `delay × N` queue panels,
//! the stability-atlas grids of ROADMAP item 3. Integrating them one at a
//! time pays the full per-step overhead (history locate, RHS dispatch, trace
//! bookkeeping) per point. This module integrates B configs *simultaneously*
//! over one shared struct-of-arrays state block:
//!
//! * **Memory layout** — the batch state is `[state_dim × B]`, component `c`
//!   of lane `l` at flat index `c·B + l` (see [`lane_of`]). Lanes are adjacent
//!   in memory, so the RK4 stage kernels ([`crate::dde`]'s `stage_state` /
//!   `rk4_combine`, shared with the scalar path) are tight per-component
//!   loops over the batch lane that rustc auto-vectorizes. The [`History`]
//!   stores the same flat layout, so one [`History::eval_strided`] call
//!   fetches a lane's full delayed state with a single bracketing-knot
//!   locate, and the shared locate cursor amortizes the binary search across
//!   all B lanes of a delayed-time evaluation.
//! * **Bit-identity** — a lane kernel ([`LaneSystem::lane_rhs`]) is *the*
//!   model implementation: the scalar [`DdeSystem`](crate::dde::DdeSystem)
//!   path calls it with `lane = 0, stride = 1`, the batch path with
//!   `lane = l, stride = B`. One code path means B = 1 is bit-identical to
//!   the scalar integrator by construction, and because every per-lane
//!   operation touches only that lane's strided components, per-lane results
//!   are invariant under the batch width (B = 4 and B = 16 lanes holding the
//!   same config produce bitwise-equal traces).
//! * **Lane-divergence semantics** — the watchdog norm is evaluated per
//!   lane. A diverging lane is recorded as
//!   [`SimError::Divergence`] in its slot of the returned
//!   `Vec<Result<Trace, SimError>>`, its state is frozen at the last good
//!   step, and its batchmates integrate on unperturbed (lanes never read
//!   each other's components). Only when *every* lane has died does the
//!   integration stop early.

use crate::dde::{rk4_combine, stage_state, DdeOptions, DIVERGENCE_NORM};
use crate::history::History;
use crate::trace::Trace;
use faults::SimError;

/// Flat index of `component` of `lane` in a struct-of-arrays batch block
/// whose lane stride is `stride` (= the batch width B). The unit of the
/// value read through this index is the unit of `component` — strided batch
/// reads keep their dimensional meaning (recognized by the simlint
/// unit-flow pass).
#[inline]
pub fn lane_of(component: usize, lane: usize, stride: usize) -> usize {
    component * stride + lane
}

/// The lane stride of a batch of `lanes` configs: lanes are adjacent, so the
/// stride between consecutive components of one lane is the batch width.
#[inline]
pub fn batch_stride(lanes: usize) -> usize {
    lanes
}

/// Pack per-lane state rows (each `state_dim` long) into one
/// `[state_dim × B]` struct-of-arrays block: `out[lane_of(c, l, B)] =
/// rows[l][c]`.
pub fn pack_lanes(rows: &[Vec<f64>]) -> Vec<f64> {
    let lanes = rows.len();
    let n = rows.first().map_or(0, Vec::len);
    let mut out = vec![0.0; n * lanes];
    for (l, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), n, "all lanes must share the state dimension");
        for (c, &v) in row.iter().enumerate() {
            out[lane_of(c, l, lanes)] = v;
        }
    }
    out
}

/// A DDE right-hand side written as a *lane kernel*: it reads and writes
/// only the components of one lane of a strided batch block. The scalar
/// [`DdeSystem`](crate::dde::DdeSystem) path is the `lane = 0, stride = 1`
/// special case, so implementing this trait once gives both paths the same
/// arithmetic — the bit-identity guarantee of the batch integrator.
pub trait LaneSystem {
    /// Per-lane state dimension.
    fn lane_dim(&self) -> usize;

    /// Evaluate this lane's derivative. `x` and `dxdt` are full strided
    /// blocks; component `c` of this lane lives at [`lane_of`]`(c, lane,
    /// stride)`. Delayed lookups go through `hist` (same strided layout; use
    /// [`History::eval_strided`] for one-locate whole-lane reads).
    fn lane_rhs(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        dxdt: &mut [f64],
    );

    /// Smallest delay this lane will ever query (`f64::INFINITY` if none).
    fn min_delay(&self) -> f64;

    /// Optional per-step projection of this lane's components (clamping).
    /// Default: no projection.
    fn lane_project(&mut self, _t: f64, _x: &mut [f64], _lane: usize, _stride: usize) {}

    /// If every delayed lookup this lane makes at time `t` happens at one
    /// delayed instant, return that instant; `None` (the default) means the
    /// lane's lookups are state-dependent or span several instants.
    ///
    /// When all lanes of a batch report the bitwise-same instant, the batch
    /// driver interpolates the whole `[lane_dim × B]` block row **once**
    /// (one knot search, one dense lerp) and hands each lane its slice via
    /// [`LaneSystem::lane_rhs_prefetched`] — the "one locate amortized
    /// across lanes" fast path. Interpolation arithmetic is per-component
    /// identical to [`History::eval_strided`], so the fast path is
    /// bit-identical to the per-lane one.
    fn lane_delay_at(&self, _t: f64) -> Option<f64> {
        None
    }

    /// [`LaneSystem::lane_rhs`] with the block row at this lane's single
    /// delayed instant already interpolated into `delayed` (stride layout,
    /// full `[lane_dim × B]`). Only called when [`LaneSystem::lane_delay_at`]
    /// returned `Some`; the default delegates back to the history-querying
    /// path and ignores the prefetch.
    #[allow(clippy::too_many_arguments)]
    fn lane_rhs_prefetched(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        _delayed: &[f64],
        dxdt: &mut [f64],
    ) {
        self.lane_rhs(t, x, lane, stride, hist, dxdt);
    }
}

/// A batch of B lockstep DDE lanes sharing one strided state block.
pub trait BatchDdeSystem {
    /// Per-lane state dimension.
    fn lane_dim(&self) -> usize;

    /// Number of lanes B (the stride of the state block).
    fn lanes(&self) -> usize;

    /// Evaluate the derivative of the whole `[lane_dim × B]` block.
    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]);

    /// Smallest delay any lane will ever query.
    fn min_delay(&self) -> f64;

    /// Optional per-step projection of the whole block.
    fn project(&mut self, _t: f64, _x: &mut [f64]) {}
}

/// The standard [`BatchDdeSystem`]: B instances of one [`LaneSystem`] model,
/// one per lane. Lanes may hold different parameterizations (that is the
/// point of a sweep batch) but must share the state dimension.
pub struct LaneBatch<M: LaneSystem> {
    models: Vec<M>,
    lane_dim: usize,
    /// Scratch for the shared-delayed-instant prefetch row
    /// (`[lane_dim × B]`, see [`LaneSystem::lane_delay_at`]).
    prefetch: Vec<f64>,
}

impl<M: LaneSystem> LaneBatch<M> {
    /// Batch `models` into lockstep lanes. Panics if `models` is empty or
    /// the lane state dimensions disagree.
    pub fn new(models: Vec<M>) -> Self {
        assert!(!models.is_empty(), "a batch needs at least one lane");
        // `models[0]` is safe: non-emptiness asserted above.
        let lane_dim = models[0].lane_dim();
        for m in &models {
            assert_eq!(m.lane_dim(), lane_dim, "lanes must share the state dim");
        }
        let prefetch = vec![0.0; lane_dim * models.len()];
        LaneBatch {
            models,
            lane_dim,
            prefetch,
        }
    }

    /// The per-lane models, in lane order.
    pub fn into_inner(self) -> Vec<M> {
        self.models
    }

    /// Borrow the per-lane models, in lane order.
    pub fn models(&self) -> &[M] {
        &self.models
    }
}

impl<M: LaneSystem> BatchDdeSystem for LaneBatch<M> {
    fn lane_dim(&self) -> usize {
        self.lane_dim
    }

    fn lanes(&self) -> usize {
        self.models.len()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        let stride = self.models.len();
        // Fast path: if every lane's delayed lookups land on the bitwise-same
        // instant, interpolate the whole block row once and let each lane
        // gather its strided slice — one knot search and one dense lerp
        // instead of B strided walks over the wide history rows.
        let shared = self.models[0].lane_delay_at(t).filter(|&td0| {
            self.models[1..].iter().all(|m| {
                m.lane_delay_at(t)
                    .is_some_and(|td| td.to_bits() == td0.to_bits())
            })
        });
        if let Some(td) = shared {
            hist.eval_all(td, &mut self.prefetch);
            for (lane, m) in self.models.iter_mut().enumerate() {
                m.lane_rhs_prefetched(t, x, lane, stride, hist, &self.prefetch, dxdt);
            }
        } else {
            for (lane, m) in self.models.iter_mut().enumerate() {
                m.lane_rhs(t, x, lane, stride, hist, dxdt);
            }
        }
    }

    fn min_delay(&self) -> f64 {
        self.models
            .iter()
            .map(LaneSystem::min_delay)
            .fold(f64::INFINITY, f64::min)
    }

    fn project(&mut self, t: f64, x: &mut [f64]) {
        let stride = self.models.len();
        for (lane, m) in self.models.iter_mut().enumerate() {
            m.lane_project(t, x, lane, stride);
        }
    }
}

/// Batched variant of
/// [`integrate_dde`](crate::dde::integrate_dde): panics on an invalid
/// configuration; per-lane divergence comes back in the lane's `Result`.
pub fn integrate_dde_batch<S: BatchDdeSystem>(
    sys: &mut S,
    x0: &[f64],
    pre: &[f64],
    t0: f64,
    t1: f64,
    opts: &DdeOptions,
) -> Vec<Result<Trace, SimError>> {
    try_integrate_dde_batch(sys, x0, pre, t0, t1, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Integrate B lockstep lanes from `t0` to `t1`.
///
/// `x0` and `pre` are `[lane_dim × B]` struct-of-arrays blocks (see
/// [`pack_lanes`]). The outer `Result` reports configuration errors (bad
/// window/step/dimension — nothing ran); the inner per-lane `Result`s carry
/// each lane's de-interleaved [`Trace`] or its [`SimError::Divergence`].
/// A diverging lane is frozen at its last good state and its batchmates
/// continue; integration stops early only when every lane has diverged.
///
/// At B = 1 this is bit-identical to
/// [`try_integrate_dde_with_prehistory`](crate::dde::try_integrate_dde_with_prehistory):
/// same step grid, same RK4 stage arithmetic, same watchdog norm order, same
/// history knots.
pub fn try_integrate_dde_batch<S: BatchDdeSystem>(
    sys: &mut S,
    x0: &[f64],
    pre: &[f64],
    t0: f64,
    t1: f64,
    opts: &DdeOptions,
) -> Result<Vec<Result<Trace, SimError>>, SimError> {
    let n = sys.lane_dim();
    let b = sys.lanes();
    let total = n * b;
    if b == 0 {
        return Err(SimError::config("integrate_dde_batch", "zero lanes"));
    }
    if x0.len() != total || pre.len() != total {
        return Err(SimError::config(
            "integrate_dde_batch",
            format!(
                "state dimension mismatch: {n} components x {b} lanes, x0 len {}, pre len {}",
                x0.len(),
                pre.len()
            ),
        ));
    }
    if !(opts.step > 0.0 && opts.step.is_finite() && t1 >= t0) {
        return Err(SimError::config(
            "integrate_dde_batch",
            format!(
                "bad integration window: step {} over [{t0}, {t1}]",
                opts.step
            ),
        ));
    }
    let min_delay = sys.min_delay();
    if !(min_delay.is_infinite() || opts.step <= min_delay) {
        return Err(SimError::config(
            "integrate_dde_batch",
            format!(
                "step {} exceeds smallest delay {min_delay}; results would be inconsistent",
                opts.step
            ),
        ));
    }

    let mut hist = History::new(t0, pre);
    // simlint: allow(float-cmp) — exact-by-design: only a bitwise-identical pre-history skips the knot
    if pre != x0 {
        hist.push(t0, x0);
    }

    let record_every = opts.record_every.max(1);
    let mut x = x0.to_vec();
    let mut traces: Vec<Trace> = (0..b).map(|_| Trace::new(n)).collect();
    let mut lane_row = vec![0.0; n];
    for (lane, tr) in traces.iter_mut().enumerate() {
        deinterleave(&x, lane, b, &mut lane_row);
        tr.push(t0, &lane_row);
    }
    let mut errors: Vec<Option<SimError>> = (0..b).map(|_| None).collect();
    let mut alive = vec![true; b];
    let mut alive_count = b;

    let steps = ((t1 - t0) / opts.step).ceil() as usize;
    let mut t = t0;
    let mut k1 = vec![0.0; total];
    let mut k2 = vec![0.0; total];
    let mut k3 = vec![0.0; total];
    let mut k4 = vec![0.0; total];
    let mut tmp = vec![0.0; total];
    let mut x_prev = vec![0.0; total];

    let _span = obs::span::enter(obs::Phase::Integrate);
    'integration: for step in 1..=steps {
        let h = (t1 - t).min(opts.step);
        x_prev.copy_from_slice(&x);
        sys.rhs(t, &x, &hist, &mut k1);
        stage_state(&mut tmp, &x, 0.5 * h, &k1);
        sys.rhs(t + 0.5 * h, &tmp, &hist, &mut k2);
        stage_state(&mut tmp, &x, 0.5 * h, &k2);
        sys.rhs(t + 0.5 * h, &tmp, &hist, &mut k3);
        stage_state(&mut tmp, &x, h, &k3);
        sys.rhs(t + h, &tmp, &hist, &mut k4);
        rk4_combine(&mut x, h, &k1, &k2, &k3, &k4);
        t += h;
        sys.project(t, &mut x);
        // Dead lanes are frozen at their last good state: undo whatever the
        // combine/projection did to their components. Live lanes never read
        // them, so the freeze cannot perturb batchmates.
        if alive_count < b {
            for (lane, &is_alive) in alive.iter().enumerate() {
                if !is_alive {
                    restore_lane(&mut x, &x_prev, lane, b, n);
                }
            }
        }
        // Per-lane divergence watchdog: one exploding lane is recorded and
        // frozen without aborting its batchmates. Component order matches the
        // scalar watchdog, so at B = 1 the norm is bitwise the same.
        let mut step_norm = 0.0f64;
        for lane in 0..b {
            if !alive[lane] {
                continue;
            }
            let mut norm = 0.0f64;
            let mut finite = true;
            for c in 0..n {
                let xi = x[lane_of(c, lane, b)];
                if !xi.is_finite() {
                    finite = false;
                }
                norm = norm.max(xi.abs());
            }
            if !finite || norm > DIVERGENCE_NORM {
                let state_norm = if finite { norm } else { f64::NAN };
                obs::metrics::counter_inc("fluid.watchdog_trips");
                if obs::trace::enabled() {
                    obs::trace::record(
                        t,
                        obs::Event::WatchdogTrip {
                            step: step as u64,
                            state_norm,
                        },
                    );
                }
                let err = SimError::Divergence {
                    context: "dde integration".into(),
                    t_s: t,
                    state_norm,
                    last_step_s: h,
                    step: step as u64,
                };
                obs::flight::record(t, "watchdog", state_norm, obs::flight::current_cause());
                obs::flight::dump_on_error(&err.to_string());
                errors[lane] = Some(err);
                alive[lane] = false;
                alive_count -= 1;
                restore_lane(&mut x, &x_prev, lane, b, n);
                if alive_count == 0 {
                    break 'integration;
                }
            } else {
                step_norm = step_norm.max(norm);
            }
        }
        hist.push(t, &x);
        if opts.history_horizon_s.is_finite() {
            hist.trim_before(t - opts.history_horizon_s);
        }
        if step % record_every == 0 || step == steps {
            for (lane, tr) in traces.iter_mut().enumerate() {
                if alive[lane] {
                    deinterleave(&x, lane, b, &mut lane_row);
                    tr.push(t, &lane_row);
                }
            }
            if obs::timeseries::enabled() {
                obs::timeseries::sample(
                    "fluid.state_norm",
                    0,
                    (record_every as f64) * opts.step * 8.0,
                    t,
                    step_norm,
                );
                obs::timeseries::observe("fluid.state_norm", 0, step_norm);
            }
        }
        obs::metrics::counter_inc("fluid.dde_steps");
        if obs::trace::enabled() {
            obs::trace::record(
                t,
                obs::Event::DdeStep {
                    step: step as u64,
                    dim: total as u64,
                },
            );
        }
    }

    Ok(traces
        .into_iter()
        .zip(errors)
        .map(|(tr, err)| match err {
            Some(e) => Err(e),
            None => Ok(tr),
        })
        .collect())
}

/// Copy lane `lane` of the strided block `x` into the dense `row`.
#[inline]
fn deinterleave(x: &[f64], lane: usize, stride: usize, row: &mut [f64]) {
    for (c, r) in row.iter_mut().enumerate() {
        *r = x[lane_of(c, lane, stride)];
    }
}

/// Restore lane `lane`'s components of `x` from `x_prev` (freeze-on-death).
#[inline]
fn restore_lane(x: &mut [f64], x_prev: &[f64], lane: usize, stride: usize, n: usize) {
    for c in 0..n {
        let i = lane_of(c, lane, stride);
        x[i] = x_prev[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dde::{try_integrate_dde, DdeSystem};

    /// dx/dt = gain · x(t − 1): decays, oscillates or explodes per lane
    /// depending on `gain`. One lane kernel serves the scalar path too.
    struct DelayGain {
        gain: f64,
    }

    impl LaneSystem for DelayGain {
        fn lane_dim(&self) -> usize {
            1
        }
        fn lane_rhs(
            &mut self,
            t: f64,
            _x: &[f64],
            lane: usize,
            stride: usize,
            hist: &History,
            dxdt: &mut [f64],
        ) {
            dxdt[lane_of(0, lane, stride)] =
                self.gain * hist.eval(t - 1.0, lane_of(0, lane, stride));
        }
        fn min_delay(&self) -> f64 {
            1.0
        }
        fn lane_project(&mut self, _t: f64, x: &mut [f64], lane: usize, stride: usize) {
            // A non-trivial projection so the freeze/restore order is tested.
            let i = lane_of(0, lane, stride);
            x[i] = x[i].clamp(-1e15, 1e15);
        }
    }

    impl DdeSystem for DelayGain {
        fn dim(&self) -> usize {
            self.lane_dim()
        }
        fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
            self.lane_rhs(t, x, 0, 1, hist, dxdt);
        }
        fn min_delay(&self) -> f64 {
            LaneSystem::min_delay(self)
        }
        fn project(&mut self, t: f64, x: &mut [f64]) {
            self.lane_project(t, x, 0, 1);
        }
    }

    fn opts() -> DdeOptions {
        DdeOptions {
            step: 1e-2,
            record_every: 3,
            history_horizon_s: 1.5,
        }
    }

    fn assert_traces_bitwise_eq(a: &Trace, b: &Trace) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(a.times()[i].to_bits() == b.times()[i].to_bits());
            for (va, vb) in a.state(i).iter().zip(b.state(i)) {
                assert!(va.to_bits() == vb.to_bits(), "row {i}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn batch_of_one_is_bitwise_identical_to_scalar() {
        let scalar = try_integrate_dde(&mut DelayGain { gain: -1.0 }, &[1.0], 0.0, 5.0, &opts())
            .expect("stable");
        let mut batch = LaneBatch::new(vec![DelayGain { gain: -1.0 }]);
        let results =
            try_integrate_dde_batch(&mut batch, &[1.0], &[1.0], 0.0, 5.0, &opts()).unwrap();
        assert_eq!(results.len(), 1);
        let tr = results.into_iter().next().unwrap().expect("stable");
        assert_traces_bitwise_eq(&scalar, &tr);
    }

    #[test]
    fn batch_lanes_match_their_solo_runs_bitwise() {
        let gains = [-1.0f64, -0.5, 0.2, -1.4];
        let x0s: Vec<Vec<f64>> = gains.iter().map(|&g| vec![1.0 + g.abs()]).collect();
        let packed = pack_lanes(&x0s);
        let mut batch = LaneBatch::new(gains.iter().map(|&gain| DelayGain { gain }).collect());
        let results =
            try_integrate_dde_batch(&mut batch, &packed, &packed, 0.0, 4.0, &opts()).unwrap();
        for ((&gain, x0), res) in gains.iter().zip(&x0s).zip(results) {
            let solo =
                try_integrate_dde(&mut DelayGain { gain }, x0, 0.0, 4.0, &opts()).expect("stable");
            assert_traces_bitwise_eq(&solo, &res.expect("stable"));
        }
    }

    #[test]
    fn per_lane_results_invariant_under_batch_width() {
        // The same four configs, as a B = 4 batch and as the first four lanes
        // of a B = 16 batch: per-lane traces must be bitwise identical.
        let gains4 = [-1.0, -0.5, 0.2, -1.4];
        let gains16: Vec<f64> = (0..16).map(|i| -1.0 + 0.08 * i as f64).collect();
        let mut g16 = gains16.clone();
        g16[..4].copy_from_slice(&gains4);

        let x0 = |g: f64| vec![1.0 + g.abs()];
        let packed4 = pack_lanes(&gains4.iter().map(|&g| x0(g)).collect::<Vec<_>>());
        let packed16 = pack_lanes(&g16.iter().map(|&g| x0(g)).collect::<Vec<_>>());

        let mut b4 = LaneBatch::new(gains4.iter().map(|&gain| DelayGain { gain }).collect());
        let mut b16 = LaneBatch::new(g16.iter().map(|&gain| DelayGain { gain }).collect());
        let r4 = try_integrate_dde_batch(&mut b4, &packed4, &packed4, 0.0, 4.0, &opts()).unwrap();
        let r16 =
            try_integrate_dde_batch(&mut b16, &packed16, &packed16, 0.0, 4.0, &opts()).unwrap();
        for (a, b) in r4.iter().zip(&r16[..4]) {
            assert_traces_bitwise_eq(a.as_ref().expect("stable"), b.as_ref().expect("stable"));
        }
    }

    #[test]
    fn diverging_lane_fails_alone_and_batchmates_are_unperturbed() {
        // Lane 1 explodes (gain ≫ 0); lanes 0 and 2 must complete and match
        // their solo runs bitwise.
        let gains = [-1.0, 4000.0, -0.7];
        let x0s: Vec<Vec<f64>> = gains.iter().map(|_| vec![1.0]).collect();
        let packed = pack_lanes(&x0s);
        let mut batch = LaneBatch::new(gains.iter().map(|&gain| DelayGain { gain }).collect());
        let results =
            try_integrate_dde_batch(&mut batch, &packed, &packed, 0.0, 6.0, &opts()).unwrap();
        assert_eq!(results.len(), 3);
        let err = results[1].as_ref().expect_err("poisoned lane must diverge");
        assert!(err.is_divergence(), "{err}");
        for lane in [0usize, 2] {
            let solo = try_integrate_dde(
                &mut DelayGain { gain: gains[lane] },
                &[1.0],
                0.0,
                6.0,
                &opts(),
            )
            .expect("stable");
            assert_traces_bitwise_eq(&solo, results[lane].as_ref().expect("stable"));
        }
    }

    #[test]
    fn diverging_single_lane_matches_scalar_error() {
        let opts = opts();
        let scalar_err =
            try_integrate_dde(&mut DelayGain { gain: 4000.0 }, &[1.0], 0.0, 6.0, &opts)
                .expect_err("explodes");
        let mut batch = LaneBatch::new(vec![DelayGain { gain: 4000.0 }]);
        let results = try_integrate_dde_batch(&mut batch, &[1.0], &[1.0], 0.0, 6.0, &opts).unwrap();
        let batch_err = results.into_iter().next().unwrap().expect_err("explodes");
        // Same trip time, norm bits, step and last step as the scalar path.
        let faults::SimError::Divergence {
            t_s: ts,
            state_norm: ns,
            last_step_s: hs,
            step: ss,
            ..
        } = scalar_err
        else {
            panic!("expected divergence");
        };
        let faults::SimError::Divergence {
            t_s: tb,
            state_norm: nb,
            last_step_s: hb,
            step: sb,
            ..
        } = batch_err
        else {
            panic!("expected divergence");
        };
        assert!(ts.to_bits() == tb.to_bits());
        assert!(ns.to_bits() == nb.to_bits() || (ns.is_nan() && nb.is_nan()));
        assert!(hs.to_bits() == hb.to_bits());
        assert_eq!(ss, sb);
    }

    #[test]
    fn config_errors_are_outer_errors() {
        let mut batch = LaneBatch::new(vec![DelayGain { gain: -1.0 }]);
        let e = try_integrate_dde_batch(
            &mut batch,
            &[1.0],
            &[1.0],
            0.0,
            4.0,
            &DdeOptions {
                step: 2.0, // exceeds the min delay of 1.0
                record_every: 1,
                history_horizon_s: f64::INFINITY,
            },
        )
        .expect_err("oversized step");
        assert!(e.to_string().contains("exceeds smallest delay"), "{e}");
        let e2 = try_integrate_dde_batch(&mut batch, &[1.0, 2.0], &[1.0], 0.0, 4.0, &opts())
            .expect_err("dim mismatch");
        assert!(e2.to_string().contains("dimension mismatch"), "{e2}");
    }

    #[test]
    fn pack_lanes_layout_matches_lane_of() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]];
        let packed = pack_lanes(&rows);
        assert_eq!(packed, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(packed[lane_of(2, 1, batch_stride(2))], 30.0);
    }
}
