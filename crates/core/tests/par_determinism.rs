//! Cross-thread-count determinism: every sweep routed through
//! `desim::par::par_map` must render byte-identical JSON whether it ran
//! serially (`SIM_THREADS=1`) or on a multi-worker pool. This is the
//! contract the parallel executor exists to uphold — thread interleaving
//! may change wall-clock, never output.
//!
//! The thread count is pinned with `desim::par::with_threads` rather than
//! by mutating `SIM_THREADS`, so concurrently-running tests cannot race on
//! process-global environment.

use desim::par::with_threads;
use ecn_delay_core::experiments::{ext_incast, fig11, fig12, fig3, fig4};
use ecn_delay_core::ToJson;

fn quick_fig3() -> fig3::Fig3Config {
    fig3::Fig3Config {
        flow_counts: vec![2, 10, 64],
        delays_us: vec![4.0, 85.0],
        r_ai_mbps: vec![10.0, 40.0],
        kmax_kb: vec![200.0, 1000.0],
        panel_bc_delay_us: 85.0,
    }
}

#[test]
fn fig3_byte_identical_across_thread_counts() {
    let serial = with_threads(1, || fig3::run(&quick_fig3()))
        .to_json()
        .render_pretty();
    let par4 = with_threads(4, || fig3::run(&quick_fig3()))
        .to_json()
        .render_pretty();
    assert!(!serial.is_empty());
    assert_eq!(serial, par4, "fig3 JSON differs between 1 and 4 workers");
}

#[test]
fn fig4_trace_byte_identical_across_thread_counts() {
    // Full DDE integrations per panel — exercises the flat-buffer History
    // hot path under both execution modes.
    let cfg = fig4::Fig4Config {
        delays_us: vec![85.0],
        flow_counts: vec![2, 10],
        duration_s: 0.02,
    };
    let serial = with_threads(1, || fig4::run(&cfg))
        .to_json()
        .render_pretty();
    let par3 = with_threads(3, || fig4::run(&cfg))
        .to_json()
        .render_pretty();
    assert_eq!(serial, par3, "fig4 JSON differs between 1 and 3 workers");
}

#[test]
fn fig11_byte_identical_across_thread_counts() {
    let cfg = fig11::Fig11Config {
        flow_counts: vec![2, 16, 40, 64],
    };
    let serial = with_threads(1, || fig11::run(&cfg))
        .to_json()
        .render_pretty();
    let par4 = with_threads(4, || fig11::run(&cfg))
        .to_json()
        .render_pretty();
    assert_eq!(serial, par4, "fig11 JSON differs between 1 and 4 workers");
    // The threshold scan over ordered results must agree too.
    let a = with_threads(1, || fig11::run(&cfg)).instability_threshold;
    let b = with_threads(4, || fig11::run(&cfg)).instability_threshold;
    assert_eq!(a, b);
}

#[test]
fn fig12_byte_identical_across_thread_counts() {
    let cfg = fig12::Fig12Config {
        duration_a_s: 0.05,
        duration_bc_s: 0.05,
        n_stable: 4,
        n_unstable: 16,
    };
    let serial = with_threads(1, || fig12::run(&cfg))
        .to_json()
        .render_pretty();
    let par2 = with_threads(2, || fig12::run(&cfg))
        .to_json()
        .render_pretty();
    assert_eq!(serial, par2, "fig12 JSON differs between 1 and 2 workers");
}

#[test]
fn ext_incast_byte_identical_across_thread_counts() {
    // The fat-tree incast sweep: per-cell FCT digests fold every bit the
    // engine produced, so equal JSON here is bit-identity of the whole
    // simulation — ECMP path choices, marking decisions, event order.
    let cfg = ext_incast::ExtIncastConfig {
        k: 4,
        protocols: vec![ecn_delay_core::scenarios::Protocol::Dcqcn],
        sender_counts: vec![8, 24],
        bytes_per_sender: 8_000,
        ..Default::default()
    };
    // `wall_ms` is the one machine-dependent field in the result (persisted
    // as a scaling probe, excluded from every identity contract) — zero it
    // before rendering.
    let scrub = |mut res: ext_incast::ExtIncastResult| {
        for c in &mut res.cells {
            c.wall_ms = 0.0;
        }
        res.to_json().render_pretty()
    };
    let serial = scrub(with_threads(1, || ext_incast::run(&cfg)));
    let par4 = scrub(with_threads(4, || ext_incast::run(&cfg)));
    assert_eq!(
        serial, par4,
        "ext_incast JSON differs between 1 and 4 workers"
    );
}

/// The telemetry layer's own determinism contract: with time-series and the
/// flight recorder enabled, their exported JSONL is byte-identical across
/// worker counts.
///
/// The obs sinks are process-global and other tests in this binary run
/// concurrently, so the sweep runs under a distinctive parent trace context
/// and the comparison filters exported lines to this test's own context
/// subtree (every timeseries/flight line carries `"ctx"` for exactly this
/// reason). Metrics — global unfilterable sums — are deliberately out of
/// scope here; `obs-smoke` in CI compares them across whole processes.
#[test]
fn telemetry_byte_identical_across_thread_counts() {
    const PARENT: u64 = 7_777;
    let cfg = ext_incast::ExtIncastConfig {
        k: 4,
        protocols: vec![ecn_delay_core::scenarios::Protocol::Dcqcn],
        sender_counts: vec![8, 24],
        bytes_per_sender: 8_000,
        ..Default::default()
    };
    let ctx_of = |line: &str| -> Option<u64> {
        let rest = line.split("\"ctx\": ").nth(1)?;
        rest.split(|c: char| !c.is_ascii_digit())
            .next()?
            .parse()
            .ok()
    };
    let lo = PARENT * obs::trace::CONTEXT_STRIDE + 1;
    let hi = PARENT * obs::trace::CONTEXT_STRIDE + obs::trace::CONTEXT_STRIDE;
    let mine = move |out: &str| -> String {
        out.lines()
            .filter(|l| ctx_of(l).is_some_and(|c| (lo..=hi).contains(&c)))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let run_with = |threads: usize| -> (String, String) {
        // Fresh sinks per run: the (name, key, ctx) aggregates would
        // otherwise accumulate across the two sweeps.
        obs::timeseries::reset();
        obs::flight::reset();
        obs::timeseries::enable();
        obs::flight::enable();
        with_threads(threads, || {
            obs::trace::with_context(PARENT, || {
                let _ = ext_incast::run(&cfg);
            })
        });
        obs::timeseries::disable();
        obs::flight::disable();
        let ts = mine(&obs::timeseries::export_jsonl());
        let fl = mine(&obs::flight::export_jsonl());
        (ts, fl)
    };
    let (ts1, fl1) = run_with(1);
    let (ts4, fl4) = run_with(4);
    assert!(
        ts1.contains("netsim.queue_bytes") && ts1.contains("\"kind\": \"hist\""),
        "time-series capture must be non-trivial:\n{ts1}"
    );
    assert!(
        fl1.contains("\"kind\": \"dispatch\"") && fl1.contains("\"by\": "),
        "flight capture must carry causal back-pointers:\n{fl1}"
    );
    assert_eq!(
        ts1, ts4,
        "time-series JSONL differs between 1 and 4 workers"
    );
    assert_eq!(fl1, fl4, "flight JSONL differs between 1 and 4 workers");
}
