//! Observability-trace determinism across worker counts.
//!
//! The obs trace sink is process-global, so this lives in its own
//! integration-test binary: no other test records events while tracing is
//! enabled here. The contract under test: a sweep's event trace (DdeStep /
//! HistoryCompaction records emitted from inside `par_map` jobs) is
//! byte-identical whether the sweep ran serially or on a multi-worker pool,
//! because recording contexts derive from input indices, never threads.

use desim::par::with_threads;
use ecn_delay_core::experiments::fig4;

fn traced_run(threads: usize, cfg: &fig4::Fig4Config) -> String {
    obs::trace::reset();
    obs::trace::enable();
    let _ = with_threads(threads, || fig4::run(cfg));
    obs::trace::disable();
    let out = obs::trace::export_jsonl();
    obs::trace::reset();
    out
}

#[test]
fn fig4_obs_trace_byte_identical_across_thread_counts() {
    // fig4 integrates full DDE trajectories per sweep point, so the trace
    // is non-trivial (integration steps plus history compactions).
    let cfg = fig4::Fig4Config {
        delays_us: vec![85.0],
        flow_counts: vec![2, 10],
        duration_s: 0.02,
    };
    let serial = traced_run(1, &cfg);
    let par4 = traced_run(4, &cfg);
    assert!(
        serial.contains("\"type\": \"DdeStep\""),
        "expected DdeStep events in the fig4 trace"
    );
    // Jobs record under distinct contexts derived from their input index.
    assert!(serial.contains("\"ctx\": 1,"), "missing job context 1");
    assert!(serial.contains("\"ctx\": 2,"), "missing job context 2");
    assert_eq!(serial, par4, "obs trace differs between 1 and 4 workers");
}
