//! Packet-level scenario builders shared by the experiment runners.

use desim::{SimDuration, SimRng, SimTime};
use netsim::cc::CongestionControl;
use netsim::{Engine, EngineConfig, FlowSpec, LinkId, Pacing, Topology};
use protocols::{
    DcqcnCc, DcqcnCcParams, PatchedTimelyCc, PatchedTimelyCcParams, TimelyCc, TimelyCcParams,
};
use workload::{generate_flows, generate_incast, FlowSizeDist, IncastConfig, ScenarioConfig};

/// Which protocol drives the senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// DCQCN (ECN-based) with per-packet pacing.
    Dcqcn,
    /// TIMELY (delay-based) with per-chunk pacing.
    Timely,
    /// TIMELY with per-packet pacing (the paper's model-validation mode).
    TimelyPerPacket,
    /// Patched TIMELY (Algorithm 2), per-chunk pacing.
    PatchedTimely,
}

impl Protocol {
    /// Human-readable label for figure output.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Dcqcn => "DCQCN",
            Protocol::Timely => "TIMELY",
            Protocol::TimelyPerPacket => "TIMELY(per-packet)",
            Protocol::PatchedTimely => "PatchedTIMELY",
        }
    }

    /// Instantiate the congestion control (with the paper's defaults) and
    /// the matching pacing mode.
    pub fn build_cc(&self, start_rate_divisor: f64) -> (Box<dyn CongestionControl>, Pacing, u32) {
        match self {
            Protocol::Dcqcn => (
                Box::new(DcqcnCc::new(DcqcnCcParams::default())),
                Pacing::PerPacket,
                64_000, // RTT samples unused; ack sparsely
            ),
            Protocol::Timely => {
                let mut p = TimelyCcParams::default();
                p.start_rate_divisor = start_rate_divisor;
                let seg = p.seg_bytes;
                (
                    Box::new(TimelyCc::new(p)),
                    Pacing::PerChunk { seg_bytes: seg },
                    seg,
                )
            }
            Protocol::TimelyPerPacket => {
                let mut p = TimelyCcParams::default();
                p.start_rate_divisor = start_rate_divisor;
                let seg = p.seg_bytes;
                // Per-packet pacing: the RTT probe is a single packet, so
                // the self-serialization to subtract is one MTU, not a
                // whole segment.
                p.seg_bytes = 1000;
                (Box::new(TimelyCc::new(p)), Pacing::PerPacket, seg)
            }
            Protocol::PatchedTimely => {
                let mut p = PatchedTimelyCcParams::default();
                p.base.start_rate_divisor = start_rate_divisor;
                let seg = p.base.seg_bytes;
                (
                    Box::new(PatchedTimelyCc::new(p)),
                    Pacing::PerChunk { seg_bytes: seg },
                    seg,
                )
            }
        }
    }
}

/// Build the §3.1/§4.1 validation scenario: `n` long-lived flows from
/// distinct senders to one receiver through one switch.
///
/// Returns the engine plus the bottleneck link id (switch → receiver).
pub fn single_switch_longlived(
    protocol: Protocol,
    n_flows: usize,
    bandwidth_bps: f64,
    prop_delay: SimDuration,
    cfg: EngineConfig,
) -> (Engine, LinkId) {
    let (topo, senders, receiver) = Topology::single_switch(n_flows, bandwidth_bps, prop_delay);
    // The switch→receiver link is the bottleneck; find it.
    let switch = netsim::NodeId(n_flows + 1);
    let bottleneck = topo
        .next_hop(switch, receiver)
        .expect("switch connects receiver");
    let mut eng = Engine::new(topo, cfg);
    for (i, &s) in senders.iter().enumerate() {
        let (cc, pacing, ack_chunk) = protocol.build_cc(n_flows as f64);
        let _ = i;
        eng.add_flow(FlowSpec {
            src: s,
            dst: receiver,
            size_bytes: None,
            start: SimTime::ZERO,
            pacing,
            cc,
            ack_chunk_bytes: ack_chunk,
        });
    }
    (eng, bottleneck)
}

/// Build the Figure 13 FCT scenario: a dumbbell with workload-generated
/// finite flows. Returns the engine and the bottleneck link id.
pub fn dumbbell_fct(
    protocol: Protocol,
    scenario: &ScenarioConfig,
    dist: &FlowSizeDist,
    bandwidth_bps: f64,
    prop_delay: SimDuration,
    cfg: EngineConfig,
) -> (Engine, LinkId) {
    let (topo, senders, receivers, bottleneck) =
        Topology::dumbbell(scenario.n_pairs, bandwidth_bps, prop_delay);
    let mut rng = SimRng::new(scenario.seed);
    let flows = generate_flows(scenario, dist, &mut rng);
    let mut eng = Engine::new(topo, cfg);
    for f in &flows {
        // TIMELY's start rate is C/(N+1) where N counts the *sender's own*
        // active flows ([21]); in this workload a sender rarely has another
        // concurrent flow, so new flows enter at line rate — the inrush
        // behaviour behind the paper's Figure 16 queue spikes. DCQCN always
        // starts at line rate by specification.
        let (cc, pacing, ack_chunk) = protocol.build_cc(1.0);
        eng.add_flow(FlowSpec {
            src: senders[f.sender_index],
            dst: receivers[f.receiver_index],
            size_bytes: Some(f.size_bytes),
            start: f.start,
            pacing,
            cc,
            ack_chunk_bytes: ack_chunk,
        });
    }
    (eng, bottleneck)
}

/// Build a fat-tree incast: a `k`-ary fat-tree with an incast burst mapped
/// onto its hosts. The oversubscribed link is the receiver's last hop
/// (edge switch → host); its id is returned as the bottleneck.
///
/// Flow ids follow the burst's deterministic start-time order, and ECMP
/// path hashes derive from `(cfg.seed, flow id, endpoints)`, so a given
/// `(k, incast, cfg)` triple reproduces the identical simulation bit for
/// bit regardless of `SIM_THREADS`.
pub fn fat_tree_incast(
    protocol: Protocol,
    k: usize,
    incast: &IncastConfig,
    bandwidth_bps: f64,
    prop_delay: SimDuration,
    cfg: EngineConfig,
) -> (Engine, LinkId) {
    let (topo, hosts) = Topology::fat_tree(k, bandwidth_bps, prop_delay);
    let burst = generate_incast(incast, hosts.len());
    let receiver = hosts[burst.receiver];
    // The receiver's edge switch sits one hop up; the bottleneck is the
    // downlink back to the host.
    let up = topo
        .next_hop(receiver, hosts[(burst.receiver + 1) % hosts.len()])
        .expect("fat-tree hosts are connected");
    let edge = topo.link(up).dst;
    let bottleneck = topo
        .next_hop(edge, receiver)
        .expect("edge switch connects its hosts");
    let mut eng = Engine::new(topo, cfg);
    for f in &burst.flows {
        // Incast senders typically source one response flow each, so flows
        // enter at line rate — the inrush the scenario is built to stress
        // (same reasoning as the dumbbell workload).
        let (cc, pacing, ack_chunk) = protocol.build_cc(1.0);
        eng.add_flow(FlowSpec {
            src: hosts[f.sender_index],
            dst: hosts[f.receiver_index],
            size_bytes: Some(f.size_bytes),
            start: f.start,
            pacing,
            cc,
            ack_chunk_bytes: ack_chunk,
        });
    }
    (eng, bottleneck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;

    #[test]
    fn dcqcn_two_flows_converge_to_fair_share() {
        // End-to-end packet-level fairness: the packet analogue of Fig 2.
        let (mut eng, bottleneck) = single_switch_longlived(
            Protocol::Dcqcn,
            2,
            10e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_millis(100));
        // Delivered throughput over the tail should be close to 5 Gbps
        // per flow.
        for f in 0..2 {
            let tail: Vec<f64> = report.rate_traces[f]
                .iter()
                .filter(|&&(t, _)| t > 0.08)
                .map(|&(_, bps)| bps)
                .collect();
            assert!(!tail.is_empty());
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            assert!(
                (mean - 5e9).abs() / 5e9 < 0.12,
                "flow {f} tail rate {mean:.3e}"
            );
        }
        // The bottleneck queue must sit between the RED thresholds.
        let tr = &report.queue_traces[&bottleneck];
        let tail: Vec<f64> = tr
            .points()
            .iter()
            .filter(|&&(t, _)| t > 0.08)
            .map(|&(_, q)| q)
            .collect();
        let mean_q = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        assert!(
            mean_q > 1_000.0 && mean_q < 220_000.0,
            "queue mean {mean_q:.0} outside RED band"
        );
    }

    #[test]
    fn timely_keeps_link_busy() {
        let (mut eng, _b) = single_switch_longlived(
            Protocol::Timely,
            2,
            10e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_millis(100));
        let total: u64 = report.delivered_bytes.iter().sum();
        let util = total as f64 * 8.0 / 0.1 / 10e9;
        assert!(util > 0.7, "utilization {util:.3}");
    }

    #[test]
    fn fat_tree_incast_completes_all_flows() {
        let incast = IncastConfig {
            n_senders: 16,
            bytes_per_sender: 32_000,
            ..Default::default()
        };
        let mut cfg = EngineConfig::default();
        cfg.rate_trace_window = None;
        let (mut eng, bottleneck) = fat_tree_incast(
            Protocol::Dcqcn,
            4,
            &incast,
            10e9,
            SimDuration::from_micros(1),
            cfg,
        );
        let report = eng.run(SimTime::from_millis(60));
        assert_eq!(report.fcts.len(), 16, "every incast flow must finish");
        assert!(report.queue_traces.contains_key(bottleneck));
        for r in &report.fcts {
            let ideal = r.size_bytes as f64 * 8.0 / 10e9;
            assert!(r.fct_s >= ideal * 0.99, "fct below serialization bound");
        }
        // 16:1 fan-in over a 10 Gbps last hop: total service time is at
        // least 16 × 32 KB / 10 Gbps ≈ 410 µs, so the slowest flow must
        // take several times a single flow's ideal FCT.
        let worst = report.fcts.iter().map(|r| r.fct_s).fold(0.0, f64::max);
        assert!(
            worst > 3.0 * (32_000.0 * 8.0 / 10e9),
            "no fan-in contention"
        );
    }

    #[test]
    fn dumbbell_fct_smoke() {
        let scenario = ScenarioConfig {
            n_pairs: 10,
            load_factor: 0.4,
            base_rate_bps: 8e9,
            horizon_s: 0.05,
            seed: 3,
        };
        let dist = FlowSizeDist::web_search();
        let (mut eng, bottleneck) = dumbbell_fct(
            Protocol::Dcqcn,
            &scenario,
            &dist,
            10e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_millis(150));
        assert!(!report.fcts.is_empty(), "flows must complete");
        assert!(report.queue_traces.contains_key(bottleneck));
        // All FCTs positive and no impossible values.
        for r in &report.fcts {
            let ideal = r.size_bytes as f64 * 8.0 / 10e9;
            assert!(r.fct_s >= ideal * 0.99, "fct below serialization bound");
        }
    }
}

crate::impl_to_json_debug!(Protocol);
