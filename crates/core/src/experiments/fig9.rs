//! Figure 9: two TIMELY flows under different starting conditions end in
//! completely different operating regimes — the operational face of
//! Theorems 3/4 (no unique fixed point ⇒ arbitrary unfairness).
//!
//! (a) both start at 5 Gbps at t = 0; (b) both at 5 Gbps, one 10 ms late;
//! (c) one at 7 Gbps, the other at 3 Gbps.

use crate::experiments::Series;
use models::timely::{TimelyFluid, TimelyParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config { duration_s: 0.3 }
    }
}

/// One starting-condition panel.
#[derive(Debug, Clone)]
pub struct Fig9Panel {
    /// Panel label matching the paper.
    pub label: String,
    /// Flow-0 rate (Gbps).
    pub rate0_gbps: Series,
    /// Flow-1 rate (Gbps).
    pub rate1_gbps: Series,
    /// Tail-window share of flow 0 (0.5 = fair).
    pub tail_share_flow0: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Panels (a), (b), (c).
    pub panels: Vec<Fig9Panel>,
}

fn run_case(label: &str, rates0: [f64; 2], starts: [f64; 2], duration: f64) -> Fig9Panel {
    let params = TimelyParams::default_10g();
    let mut m = TimelyFluid::new(params, 2).with_start_times(starts.to_vec());
    let tr = m.simulate_with_rates(&rates0, duration);
    let from = duration * 0.8;
    let r0 = tr.mean_from(m.rate_index(0), from);
    let r1 = tr.mean_from(m.rate_index(1), from);
    Fig9Panel {
        label: label.to_string(),
        rate0_gbps: m.rates_gbps(&tr, 0),
        rate1_gbps: m.rates_gbps(&tr, 1),
        tail_share_flow0: r0 / (r0 + r1),
    }
}

/// Run all three panels.
pub fn run(cfg: &Fig9Config) -> Fig9Result {
    let c = TimelyParams::default_10g().capacity_pps();
    let panels = vec![
        run_case(
            "(a) both 5Gbps at t=0",
            [0.5 * c, 0.5 * c],
            [0.0, 0.0],
            cfg.duration_s,
        ),
        run_case(
            "(b) both 5Gbps, one 10ms late",
            [0.5 * c, 0.5 * c],
            [0.0, 0.01],
            cfg.duration_s,
        ),
        run_case(
            "(c) 7Gbps vs 3Gbps",
            [0.7 * c, 0.3 * c],
            [0.0, 0.0],
            cfg.duration_s,
        ),
    ];
    Fig9Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_depend_on_starting_conditions() {
        let res = run(&Fig9Config { duration_s: 0.2 });
        let a = res.panels[0].tail_share_flow0;
        let c = res.panels[2].tail_share_flow0;
        // Symmetric start stays near fair; asymmetric start stays skewed —
        // and the two regimes differ, which is the point of the figure.
        assert!((a - 0.5).abs() < 0.1, "(a) share {a:.3}");
        assert!(c > 0.55, "(c) share should stay skewed: {c:.3}");
        assert!(
            (a - c).abs() > 0.05,
            "different initial conditions must yield different regimes"
        );
    }

    #[test]
    fn late_flow_disadvantaged_or_divergent() {
        let res = run(&Fig9Config { duration_s: 0.2 });
        let b = res.panels[1].tail_share_flow0;
        // Panel (b) must land away from the (a) outcome (the figure's
        // message is divergence, not a specific split).
        let a = res.panels[0].tail_share_flow0;
        assert!(
            (a - b).abs() > 0.02,
            "late start should shift the regime: a={a:.3} b={b:.3}"
        );
    }
}

crate::impl_to_json!(Fig9Config { duration_s });
crate::impl_to_json!(Fig9Panel {
    label,
    rate0_gbps,
    rate1_gbps,
    tail_share_flow0
});
crate::impl_to_json!(Fig9Result { panels });
