//! Figure 4: impact of delay and flow count on DCQCN stability, in the
//! fluid model. Six panels: τ* ∈ {4 µs, 85 µs} × N ∈ {2, 10, 64}; at 85 µs
//! the N = 10 case oscillates while N = 2 and N = 64 settle.

use crate::experiments::Series;
use fluid::Trace;
use models::dcqcn::{DcqcnFluid, DcqcnParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Delays (µs).
    pub delays_us: Vec<f64>,
    /// Flow counts.
    pub flow_counts: Vec<usize>,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            delays_us: vec![4.0, 85.0],
            flow_counts: vec![2, 10, 64],
            duration_s: 0.1,
        }
    }
}

/// One panel of the grid.
#[derive(Debug, Clone)]
pub struct Fig4Panel {
    /// Feedback delay in µs.
    pub delay_us: f64,
    /// Number of flows.
    pub n_flows: usize,
    /// Flow-0 rate (Gbps) over time.
    pub rate_gbps: Series,
    /// Queue (KB) over time.
    pub queue_kb: Series,
    /// Queue oscillation over the tail window, normalized by q*.
    pub queue_oscillation: f64,
    /// Stable per the phase-margin analysis?
    pub predicted_stable: bool,
}

/// Full grid.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// All panels.
    pub panels: Vec<Fig4Panel>,
}

fn make_panel(fluid: DcqcnFluid, d: f64, n: usize, duration_s: f64, trace: &Trace) -> Fig4Panel {
    let fp = fluid.fixed_point();
    let predicted_stable = fluid.margin_report().is_stable();
    let tail = duration_s * 0.6;
    let osc = trace.peak_to_peak_from(0, tail) / fp.q_star_pkts.max(1.0);
    Fig4Panel {
        delay_us: d,
        n_flows: n,
        rate_gbps: fluid.rates_gbps(trace, 0),
        queue_kb: fluid.queue_kb(trace),
        queue_oscillation: osc,
        predicted_stable,
    }
}

/// Run the grid: each `(delay, N)` panel is an independent DDE integration,
/// run through [`desim::par::par_map`] with ordered results.
///
/// When [`desim::par::batch_enabled`] (the default; `SIM_BATCH=0` opts out),
/// panels sharing `(N, derived step)` integrate as lanes of one
/// [`DcqcnFluid::simulate_batch`] call — both paper delays derive the same
/// 1 µs step, so the grid batches by flow count. Per-lane results are
/// bit-identical to solo integrations (the `fluid::batch` oracle tests), so
/// the two paths produce byte-identical panels.
pub fn run(cfg: &Fig4Config) -> Fig4Result {
    let mut jobs: Vec<(f64, usize)> = Vec::new();
    for &d in &cfg.delays_us {
        for &n in &cfg.flow_counts {
            jobs.push((d, n));
        }
    }

    let model_for = |d: f64, n: usize| {
        let mut params = DcqcnParams::default_40g();
        params.feedback_delay_us = d;
        DcqcnFluid::new(params, n)
    };

    let panels = if desim::par::batch_enabled() {
        // Group panel indices by (N, step bits): lanes of one batch must
        // share the state dimension and the derived integration step.
        let mut groups: Vec<((usize, u64), Vec<usize>)> = Vec::new();
        for (idx, &(d, n)) in jobs.iter().enumerate() {
            let step_bits = (model_for(d, n).params.feedback_delay_s() / 4.0)
                .min(1e-6)
                .to_bits();
            let key = (n, step_bits);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(idx),
                None => groups.push((key, vec![idx])),
            }
        }
        let duration_s = cfg.duration_s;
        let jobs_ref = &jobs;
        let out = desim::par::par_map(groups, |(_, idxs): ((usize, u64), Vec<usize>)| {
            let models: Vec<DcqcnFluid> = idxs
                .iter()
                .map(|&idx| {
                    let (d, n) = jobs_ref[idx];
                    model_for(d, n)
                })
                .collect();
            let traces = DcqcnFluid::simulate_batch(models.clone(), duration_s);
            idxs.into_iter()
                .zip(models)
                .zip(traces)
                .map(|((idx, fluid), trace)| {
                    let (d, n) = jobs_ref[idx];
                    // simlint: allow(panic, no-unwrap-sim) — mirrors the scalar path, which panics on divergence
                    let trace = trace.unwrap_or_else(|e| panic!("fig4 lane diverged: {e}"));
                    (idx, make_panel(fluid, d, n, duration_s, &trace))
                })
                .collect::<Vec<(usize, Fig4Panel)>>()
        });
        let mut slots: Vec<Option<Fig4Panel>> = (0..jobs.len()).map(|_| None).collect();
        for (idx, panel) in out.into_iter().flatten() {
            slots[idx] = Some(panel);
        }
        slots
            .into_iter()
            // simlint: allow(panic, no-unwrap-sim) — every input index appears in exactly one group
            .map(|s| s.expect("panel slot unfilled"))
            .collect()
    } else {
        desim::par::par_map(jobs, |(d, n)| {
            let mut fluid = model_for(d, n);
            let trace = fluid.simulate(cfg.duration_s);
            make_panel(fluid, d, n, cfg.duration_s, &trace)
        })
    };
    Fig4Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_story() {
        let res = run(&Fig4Config {
            duration_s: 0.08,
            ..Default::default()
        });
        let find = |d: f64, n: usize| {
            res.panels
                .iter()
                .find(|p| p.delay_us == d && p.n_flows == n)
                .unwrap()
        };
        // 4 µs: everything calm.
        for &n in &[2usize, 10, 64] {
            let p = find(4.0, n);
            assert!(
                p.queue_oscillation < 0.5,
                "4µs/N={n} should be calm, osc {:.2}",
                p.queue_oscillation
            );
        }
        // 85 µs: N=10 oscillates much more than N=2 and N=64.
        let p2 = find(85.0, 2).queue_oscillation;
        let p10 = find(85.0, 10).queue_oscillation;
        let p64 = find(85.0, 64).queue_oscillation;
        assert!(
            p10 > 2.0 * p2 && p10 > 1.5 * p64,
            "N=10 must be the unstable one: {p2:.2} / {p10:.2} / {p64:.2}"
        );
    }

    #[test]
    fn batched_and_scalar_paths_are_bitwise_identical() {
        // Two delays at N=2 share (dim, step) → one 2-lane batch vs two
        // scalar integrations; every series must agree to the bit.
        let cfg = Fig4Config {
            delays_us: vec![4.0, 85.0],
            flow_counts: vec![2],
            duration_s: 0.005,
        };
        let a = desim::par::with_batch(true, || run(&cfg));
        let b = desim::par::with_batch(false, || run(&cfg));
        assert_eq!(a.panels.len(), b.panels.len());
        for (pa, pb) in a.panels.iter().zip(&b.panels) {
            assert_eq!(pa.delay_us, pb.delay_us);
            assert_eq!(pa.n_flows, pb.n_flows);
            assert_eq!(pa.predicted_stable, pb.predicted_stable);
            assert_eq!(
                pa.queue_oscillation.to_bits(),
                pb.queue_oscillation.to_bits()
            );
            let bits = |s: &Series| -> Vec<(u64, u64)> {
                s.iter().map(|&(t, v)| (t.to_bits(), v.to_bits())).collect()
            };
            assert_eq!(bits(&pa.rate_gbps), bits(&pb.rate_gbps));
            assert_eq!(bits(&pa.queue_kb), bits(&pb.queue_kb));
        }
    }

    #[test]
    fn time_domain_agrees_with_frequency_domain() {
        // The phase-margin prediction and observed oscillation must agree
        // on the paper's grid.
        let res = run(&Fig4Config {
            duration_s: 0.08,
            ..Default::default()
        });
        for p in &res.panels {
            if p.predicted_stable {
                assert!(
                    p.queue_oscillation < 1.0,
                    "predicted stable but oscillating: τ*={} N={} osc={:.2}",
                    p.delay_us,
                    p.n_flows,
                    p.queue_oscillation
                );
            } else {
                assert!(
                    p.queue_oscillation > 0.5,
                    "predicted unstable but calm: τ*={} N={} osc={:.2}",
                    p.delay_us,
                    p.n_flows,
                    p.queue_oscillation
                );
            }
        }
    }
}

crate::impl_to_json!(Fig4Config {
    delays_us,
    flow_counts,
    duration_s
});
crate::impl_to_json!(Fig4Panel {
    delay_us,
    n_flows,
    rate_gbps,
    queue_kb,
    queue_oscillation,
    predicted_stable
});
crate::impl_to_json!(Fig4Result { panels });
