//! Figure 4: impact of delay and flow count on DCQCN stability, in the
//! fluid model. Six panels: τ* ∈ {4 µs, 85 µs} × N ∈ {2, 10, 64}; at 85 µs
//! the N = 10 case oscillates while N = 2 and N = 64 settle.

use crate::experiments::Series;
use models::dcqcn::{DcqcnFluid, DcqcnParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Delays (µs).
    pub delays_us: Vec<f64>,
    /// Flow counts.
    pub flow_counts: Vec<usize>,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            delays_us: vec![4.0, 85.0],
            flow_counts: vec![2, 10, 64],
            duration_s: 0.1,
        }
    }
}

/// One panel of the grid.
#[derive(Debug, Clone)]
pub struct Fig4Panel {
    /// Feedback delay in µs.
    pub delay_us: f64,
    /// Number of flows.
    pub n_flows: usize,
    /// Flow-0 rate (Gbps) over time.
    pub rate_gbps: Series,
    /// Queue (KB) over time.
    pub queue_kb: Series,
    /// Queue oscillation over the tail window, normalized by q*.
    pub queue_oscillation: f64,
    /// Stable per the phase-margin analysis?
    pub predicted_stable: bool,
}

/// Full grid.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// All panels.
    pub panels: Vec<Fig4Panel>,
}

/// Run the grid: each `(delay, N)` panel is an independent DDE integration,
/// run through [`desim::par::par_map`] with ordered results.
pub fn run(cfg: &Fig4Config) -> Fig4Result {
    let mut jobs: Vec<(f64, usize)> = Vec::new();
    for &d in &cfg.delays_us {
        for &n in &cfg.flow_counts {
            jobs.push((d, n));
        }
    }
    let panels = desim::par::par_map(jobs, |(d, n)| {
        let mut params = DcqcnParams::default_40g();
        params.feedback_delay_us = d;
        let mut fluid = DcqcnFluid::new(params, n);
        let fp = fluid.fixed_point();
        let predicted_stable = fluid.margin_report().is_stable();
        let trace = fluid.simulate(cfg.duration_s);
        let tail = cfg.duration_s * 0.6;
        let osc = trace.peak_to_peak_from(0, tail) / fp.q_star_pkts.max(1.0);
        Fig4Panel {
            delay_us: d,
            n_flows: n,
            rate_gbps: fluid.rates_gbps(&trace, 0),
            queue_kb: fluid.queue_kb(&trace),
            queue_oscillation: osc,
            predicted_stable,
        }
    });
    Fig4Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_story() {
        let res = run(&Fig4Config {
            duration_s: 0.08,
            ..Default::default()
        });
        let find = |d: f64, n: usize| {
            res.panels
                .iter()
                .find(|p| p.delay_us == d && p.n_flows == n)
                .unwrap()
        };
        // 4 µs: everything calm.
        for &n in &[2usize, 10, 64] {
            let p = find(4.0, n);
            assert!(
                p.queue_oscillation < 0.5,
                "4µs/N={n} should be calm, osc {:.2}",
                p.queue_oscillation
            );
        }
        // 85 µs: N=10 oscillates much more than N=2 and N=64.
        let p2 = find(85.0, 2).queue_oscillation;
        let p10 = find(85.0, 10).queue_oscillation;
        let p64 = find(85.0, 64).queue_oscillation;
        assert!(
            p10 > 2.0 * p2 && p10 > 1.5 * p64,
            "N=10 must be the unstable one: {p2:.2} / {p10:.2} / {p64:.2}"
        );
    }

    #[test]
    fn time_domain_agrees_with_frequency_domain() {
        // The phase-margin prediction and observed oscillation must agree
        // on the paper's grid.
        let res = run(&Fig4Config {
            duration_s: 0.08,
            ..Default::default()
        });
        for p in &res.panels {
            if p.predicted_stable {
                assert!(
                    p.queue_oscillation < 1.0,
                    "predicted stable but oscillating: τ*={} N={} osc={:.2}",
                    p.delay_us,
                    p.n_flows,
                    p.queue_oscillation
                );
            } else {
                assert!(
                    p.queue_oscillation > 0.5,
                    "predicted unstable but calm: τ*={} N={} osc={:.2}",
                    p.delay_us,
                    p.n_flows,
                    p.queue_oscillation
                );
            }
        }
    }
}

crate::impl_to_json!(Fig4Config {
    delays_us,
    flow_counts,
    duration_s
});
crate::impl_to_json!(Fig4Panel {
    delay_us,
    n_flows,
    rate_gbps,
    queue_kb,
    queue_oscillation,
    predicted_stable
});
crate::impl_to_json!(Fig4Result { panels });
