//! Figure 20: protocol stability under random feedback-delay jitter.
//!
//! "We inject uniform random jitter to the feedback delay of DCQCN (τ*)
//! and TIMELY (τ′) models. With jitter of \[0,100µs\], TIMELY becomes
//! unstable compared to the same scenario without the jitter. In contrast,
//! the same level of jitter does not impact DCQCN stability." The reason
//! (§5.2): jitter only *delays* the ECN feedback, but it delays *and
//! corrupts* a delay-based feedback signal.
//!
//! We use Patched TIMELY (as in Figure 12a, the paper's jitter baseline is
//! the patched, convergent variant) and compare queue oscillation with and
//! without jitter for both protocols.

use crate::experiments::Series;
use models::dcqcn::{DcqcnFluid, DcqcnParams};
use models::jitter::Jitter;
use models::patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig20Config {
    /// Jitter amplitude (µs); the paper uses 100.
    pub jitter_us: f64,
    /// Jitter resampling window (µs).
    pub jitter_window_us: f64,
    /// Flows.
    pub n_flows: usize,
    /// Duration (seconds).
    pub duration_s: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for Fig20Config {
    fn default() -> Self {
        Fig20Config {
            jitter_us: 100.0,
            jitter_window_us: 20.0,
            n_flows: 2,
            duration_s: 0.4,
            seed: 7,
        }
    }
}

/// One protocol's jitter contrast.
#[derive(Debug, Clone)]
pub struct JitterPanel {
    /// Protocol label.
    pub protocol: String,
    /// Queue (KB) without jitter.
    pub queue_clean_kb: Series,
    /// Queue (KB) with jitter.
    pub queue_jitter_kb: Series,
    /// Normalized queue oscillation (clean, jittered).
    pub oscillation: (f64, f64),
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig20Result {
    /// DCQCN and (patched) TIMELY panels.
    pub panels: Vec<JitterPanel>,
}

/// Run both protocols with and without jitter.
pub fn run(cfg: &Fig20Config) -> Fig20Result {
    let jitter = Jitter::uniform(cfg.jitter_us * 1e-6, cfg.jitter_window_us * 1e-6, cfg.seed);
    let tail = cfg.duration_s * 0.6;
    let mut panels = Vec::new();

    // DCQCN.
    {
        let params = DcqcnParams::default_40g();
        let mut clean = DcqcnFluid::new(params.clone(), cfg.n_flows);
        let fp = clean.fixed_point();
        let tr_clean = clean.simulate(cfg.duration_s);
        let mut noisy = DcqcnFluid::new(params, cfg.n_flows).with_jitter(jitter.clone());
        let tr_noisy = noisy.simulate(cfg.duration_s);
        panels.push(JitterPanel {
            protocol: "DCQCN".into(),
            oscillation: (
                tr_clean.peak_to_peak_from(0, tail) / fp.q_star_pkts.max(1.0),
                tr_noisy.peak_to_peak_from(0, tail) / fp.q_star_pkts.max(1.0),
            ),
            queue_clean_kb: clean.queue_kb(&tr_clean),
            queue_jitter_kb: noisy.queue_kb(&tr_noisy),
        });
    }

    // Patched TIMELY (the convergent baseline of Fig 12a).
    {
        let params = PatchedTimelyParams::default_10g();
        let q_star = params.q_star_pkts(cfg.n_flows);
        let mut clean = PatchedTimelyFluid::new(params.clone(), cfg.n_flows);
        let tr_clean = clean.simulate(cfg.duration_s);
        let mut noisy = PatchedTimelyFluid::new(params, cfg.n_flows).with_jitter(jitter);
        let tr_noisy = noisy.simulate(cfg.duration_s);
        panels.push(JitterPanel {
            protocol: "PatchedTIMELY".into(),
            oscillation: (
                tr_clean.peak_to_peak_from(0, tail) / q_star.max(1.0),
                tr_noisy.peak_to_peak_from(0, tail) / q_star.max(1.0),
            ),
            queue_clean_kb: clean.queue_kb(&tr_clean),
            queue_jitter_kb: noisy.queue_kb(&tr_noisy),
        });
    }

    Fig20Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcqcn_resilient_timely_degraded() {
        let res = run(&Fig20Config {
            duration_s: 0.3,
            ..Default::default()
        });
        let dcqcn = &res.panels[0];
        let timely = &res.panels[1];
        let dcqcn_blowup = dcqcn.oscillation.1 / dcqcn.oscillation.0.max(0.02);
        let timely_blowup = timely.oscillation.1 / timely.oscillation.0.max(0.02);
        assert!(
            timely_blowup > 2.0 * dcqcn_blowup,
            "jitter must hurt the delay-based protocol more: \
             DCQCN ×{dcqcn_blowup:.2}, TIMELY ×{timely_blowup:.2}"
        );
        // DCQCN stays stable in absolute terms too.
        assert!(
            dcqcn.oscillation.1 < 1.0,
            "DCQCN with jitter should remain stable: {:.2}",
            dcqcn.oscillation.1
        );
    }
}

crate::impl_to_json!(Fig20Config {
    jitter_us,
    jitter_window_us,
    n_flows,
    duration_s,
    seed
});
crate::impl_to_json!(JitterPanel {
    protocol,
    queue_clean_kb,
    queue_jitter_kb,
    oscillation
});
crate::impl_to_json!(Fig20Result { panels });
