//! Eq 14 validation table: the closed-form approximation of the DCQCN
//! fixed-point marking probability against the exact root of Eq 11, and
//! the resulting queue length (Eq 9) — the quantitative backbone of
//! Theorem 1's discussion ("the queue length q* … depends on the number of
//! flows N").

use models::dcqcn::{DcqcnFluid, DcqcnParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Eq14Config {
    /// Flow counts to tabulate.
    pub flow_counts: Vec<usize>,
    /// Capacities (Gbps) to tabulate.
    pub capacities_gbps: Vec<f64>,
}

impl Default for Eq14Config {
    fn default() -> Self {
        Eq14Config {
            flow_counts: vec![1, 2, 4, 8, 16, 32],
            capacities_gbps: vec![10.0, 40.0],
        }
    }
}

/// One table row.
#[derive(Debug, Clone)]
pub struct Eq14Row {
    /// Capacity (Gbps).
    pub capacity_gbps: f64,
    /// Flow count.
    pub n_flows: usize,
    /// Exact `p*` from Eq 11.
    pub p_exact: f64,
    /// Approximate `p*` from Eq 14.
    pub p_approx: f64,
    /// Relative error of the approximation.
    pub rel_error: f64,
    /// Queue `q*` (KB) implied by the exact root (Eq 9).
    pub q_star_kb: f64,
    /// Whether `p*` exceeds `P_max` (operating point past the RED knee).
    pub saturated: bool,
}

/// Result.
#[derive(Debug, Clone)]
pub struct Eq14Result {
    /// Table rows.
    pub rows: Vec<Eq14Row>,
}

/// Run the table.
pub fn run(cfg: &Eq14Config) -> Eq14Result {
    let mut rows = Vec::new();
    for &c in &cfg.capacities_gbps {
        for &n in &cfg.flow_counts {
            let mut params = DcqcnParams::default_40g();
            params.capacity_gbps = c;
            let fluid = DcqcnFluid::new(params.clone(), n);
            let fp = fluid.fixed_point();
            let approx = params.p_star_approx(n);
            rows.push(Eq14Row {
                capacity_gbps: c,
                n_flows: n,
                p_exact: fp.p_star,
                p_approx: approx,
                rel_error: (approx - fp.p_star).abs() / fp.p_star,
                q_star_kb: fp.q_star_kb,
                saturated: fp.saturated,
            });
        }
    }
    Eq14Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximation_good_in_small_p_regime() {
        let res = run(&Eq14Config::default());
        for row in &res.rows {
            // Where the paper's premise holds (p* close to 0), the Taylor
            // form is accurate.
            if row.p_exact < 0.01 {
                // The O(p⁴) Taylor truncation is good to tens of percent in
                // this regime (the paper uses it for scaling, not accuracy).
                assert!(
                    row.rel_error < 0.35,
                    "C={} N={}: rel error {:.3}",
                    row.capacity_gbps,
                    row.n_flows,
                    row.rel_error
                );
            }
        }
    }

    #[test]
    fn p_star_grows_with_n_and_shrinks_with_c() {
        let res = run(&Eq14Config::default());
        let get = |c: f64, n: usize| {
            res.rows
                .iter()
                .find(|r| r.capacity_gbps == c && r.n_flows == n)
                .unwrap()
                .p_exact
        };
        assert!(get(40.0, 2) < get(40.0, 16), "p* increases with N");
        assert!(get(40.0, 8) < get(10.0, 8), "p* decreases with C");
    }

    #[test]
    fn queue_tracks_p_star() {
        let res = run(&Eq14Config::default());
        for w in res
            .rows
            .iter()
            .filter(|r| r.capacity_gbps == 40.0)
            .collect::<Vec<_>>()
            .windows(2)
        {
            assert!(w[1].q_star_kb >= w[0].q_star_kb, "q* monotone in N");
        }
    }
}

crate::impl_to_json!(Eq14Config {
    flow_counts,
    capacities_gbps
});
crate::impl_to_json!(Eq14Row {
    capacity_gbps,
    n_flows,
    p_exact,
    p_approx,
    rel_error,
    q_star_kb,
    saturated
});
crate::impl_to_json!(Eq14Result { rows });
