//! Figure 18: DCQCN with a PI controller at the switch.
//!
//! "All the flows converge to the same (fair) rate and the queue length is
//! stabilized to a preconfigured value, regardless of the number of flows
//! (as well as regardless of propagation delay)."

use crate::experiments::Series;
use models::dcqcn::DcqcnParams;
use models::pi::DcqcnPiFluid;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig18Config {
    /// Flow counts.
    pub flow_counts: Vec<usize>,
    /// Queue reference (KB).
    pub q_ref_kb: f64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig18Config {
    fn default() -> Self {
        Fig18Config {
            flow_counts: vec![2, 10, 64],
            q_ref_kb: 100.0,
            duration_s: 0.4,
        }
    }
}

/// One flow-count panel.
#[derive(Debug, Clone)]
pub struct Fig18Panel {
    /// Flow count.
    pub n_flows: usize,
    /// Queue (KB) over time.
    pub queue_kb: Series,
    /// Flow-0 rate (Gbps) over time.
    pub rate_gbps: Series,
    /// Tail queue mean (KB).
    pub tail_queue_kb: f64,
    /// Worst relative deviation of any flow from fair share, over the tail.
    pub worst_rate_error: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig18Result {
    /// Panels.
    pub panels: Vec<Fig18Panel>,
    /// The reference (KB).
    pub q_ref_kb: f64,
}

/// Run.
pub fn run(cfg: &Fig18Config) -> Fig18Result {
    let params = DcqcnParams::default_40g();
    let gains = DcqcnPiFluid::default_gains(&params, cfg.q_ref_kb);
    let mut panels = Vec::new();
    for &n in &cfg.flow_counts {
        let mut m = DcqcnPiFluid::new(params.clone(), gains.clone(), n);
        let tr = m.simulate(cfg.duration_s);
        let from = cfg.duration_s * 0.75;
        let fair = m.params.capacity_pps() / n as f64;
        let worst = (0..n)
            .map(|i| ((tr.mean_from(m.rc_index(i), from) - fair) / fair).abs())
            .fold(0.0, f64::max);
        let q_kb: Series = tr
            .series(0)
            .into_iter()
            .map(|(t, pkts)| (t, models::units::pkts_to_kb(pkts, m.params.packet_bytes)))
            .collect();
        let rate: Series = tr
            .series(m.rc_index(0))
            .into_iter()
            .map(|(t, pps)| (t, models::units::pps_to_gbps(pps, m.params.packet_bytes)))
            .collect();
        let tail_q = q_kb
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, v)| v)
            .sum::<f64>()
            / q_kb.iter().filter(|&&(t, _)| t >= from).count().max(1) as f64;
        panels.push(Fig18Panel {
            n_flows: n,
            queue_kb: q_kb,
            rate_gbps: rate,
            tail_queue_kb: tail_q,
            worst_rate_error: worst,
        });
    }
    Fig18Result {
        panels,
        q_ref_kb: cfg.q_ref_kb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pinned_and_fair_for_all_n() {
        // The PI promise: q → q_ref independent of N, rates fair.
        let res = run(&Fig18Config {
            flow_counts: vec![2, 10],
            q_ref_kb: 100.0,
            duration_s: 0.35,
        });
        for p in &res.panels {
            assert!(
                (p.tail_queue_kb - 100.0).abs() / 100.0 < 0.15,
                "N={}: queue {:.1} KB vs 100 KB",
                p.n_flows,
                p.tail_queue_kb
            );
            assert!(
                p.worst_rate_error < 0.1,
                "N={}: worst rate error {:.3}",
                p.n_flows,
                p.worst_rate_error
            );
        }
        // Same queue for different N — the contrast with Eq 14 where q*
        // grows with N.
        let dq = (res.panels[0].tail_queue_kb - res.panels[1].tail_queue_kb).abs();
        assert!(dq < 15.0, "queues should coincide across N: Δ={dq:.1} KB");
    }
}

crate::impl_to_json!(Fig18Config {
    flow_counts,
    q_ref_kb,
    duration_s
});
crate::impl_to_json!(Fig18Panel {
    n_flows,
    queue_kb,
    rate_gbps,
    tail_queue_kb,
    worst_rate_error
});
crate::impl_to_json!(Fig18Result { panels, q_ref_kb });
