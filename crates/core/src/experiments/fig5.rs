//! Figure 5: the DCQCN instability of Figure 4 confirmed with packet-level
//! simulations — 10 flows with an 85 µs control loop oscillate; 2 flows do
//! not.
//!
//! In the packet simulator the control-loop delay is realized with link
//! propagation delays: τ* ≈ 2 hops of data path + 2 hops of CNP return.

use crate::experiments::Series;
use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use netsim::EngineConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Flow counts to contrast.
    pub flow_counts: Vec<usize>,
    /// One-hop propagation delay (µs); the effective loop delay is ~4×.
    pub hop_delay_us: u64,
    /// Bandwidth in Gbps.
    pub bandwidth_gbps: f64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            flow_counts: vec![2, 10, 64],
            hop_delay_us: 21, // ≈ 85 µs loop
            bandwidth_gbps: 40.0,
            duration_s: 0.1,
        }
    }
}

/// One packet-level run.
#[derive(Debug, Clone)]
pub struct Fig5Panel {
    /// Number of flows.
    pub n_flows: usize,
    /// Bottleneck queue (KB) over time.
    pub queue_kb: Series,
    /// Flow-0 delivered rate (Gbps) over time.
    pub rate_gbps: Series,
    /// Queue peak-to-peak over the tail (KB).
    pub queue_p2p_kb: f64,
}

/// Full result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One panel per flow count.
    pub panels: Vec<Fig5Panel>,
}

/// Run the packet-level stability contrast: one independent engine per flow
/// count, in parallel with ordered results.
///
/// Packet-level runs have no shared fluid state to batch, so when
/// [`desim::par::batch_enabled`] the sweep dispatches through
/// [`desim::par::par_map_chunked`] — consecutive flow counts share one
/// worker dispatch, amortizing spawn overhead without touching the per-run
/// arithmetic (results are byte-identical either way).
pub fn run(cfg: &Fig5Config) -> Fig5Result {
    let run_one = |n: usize| {
        let (mut eng, bottleneck) = single_switch_longlived(
            Protocol::Dcqcn,
            n,
            cfg.bandwidth_gbps * 1e9,
            SimDuration::from_micros(cfg.hop_delay_us),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
        let queue_kb: Series = report.queue_traces[&bottleneck]
            .points()
            .iter()
            .map(|&(t, b)| (t, b / 1000.0))
            .collect();
        let rate_gbps: Series = report.rate_traces[0]
            .iter()
            .map(|&(t, bps)| (t, bps / 1e9))
            .collect();
        let tail = cfg.duration_s * 0.5;
        let tail_pts: Vec<f64> = queue_kb
            .iter()
            .filter(|&&(t, _)| t >= tail)
            .map(|&(_, v)| v)
            .collect();
        let p2p = tail_pts.iter().cloned().fold(f64::MIN, f64::max)
            - tail_pts.iter().cloned().fold(f64::MAX, f64::min);
        Fig5Panel {
            n_flows: n,
            queue_kb,
            rate_gbps,
            queue_p2p_kb: p2p,
        }
    };
    let panels = if desim::par::batch_enabled() {
        desim::par::par_map_chunked(cfg.flow_counts.clone(), 2, |chunk| {
            chunk.into_iter().map(run_one).collect()
        })
    } else {
        desim::par::par_map(cfg.flow_counts.clone(), run_one)
    };
    Fig5Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_flows_oscillate_more_than_two() {
        let cfg = Fig5Config {
            flow_counts: vec![2, 10],
            duration_s: 0.08,
            ..Default::default()
        };
        let res = run(&cfg);
        let p2 = res.panels[0].queue_p2p_kb;
        let p10 = res.panels[1].queue_p2p_kb;
        assert!(
            p10 > 1.5 * p2,
            "packet-level N=10 must oscillate more: {p2:.1} vs {p10:.1} KB"
        );
    }
}

crate::impl_to_json!(Fig5Config {
    flow_counts,
    hop_delay_us,
    bandwidth_gbps,
    duration_s
});
crate::impl_to_json!(Fig5Panel {
    n_flows,
    queue_kb,
    rate_gbps,
    queue_p2p_kb
});
crate::impl_to_json!(Fig5Result { panels });
