//! Figure 11: Patched TIMELY phase margin vs number of flows.
//!
//! "The phase margin result shows this system is stable until the number
//! of flows is greater than 40 […] more flows lead to larger queue size
//! (Eq 31), thus leading to larger feedback delay (Eq 24). This leads to
//! system instability."

use models::patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// Flow counts to sweep.
    pub flow_counts: Vec<usize>,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            flow_counts: vec![2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64],
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// `(n_flows, phase margin °, q* KB, feedback delay µs)` per point.
    pub points: Vec<(usize, f64, f64, f64)>,
    /// First flow count with a negative margin (the stability limit).
    pub instability_threshold: Option<usize>,
}

/// Run the sweep: margins are independent per flow count, so they run
/// through [`desim::par::par_map`]; the threshold scan stays a serial pass
/// over the ordered results.
pub fn run(cfg: &Fig11Config) -> Fig11Result {
    let params = PatchedTimelyParams::default_10g();
    let points = desim::par::par_map(cfg.flow_counts.clone(), |n| {
        let m = PatchedTimelyFluid::new(params.clone(), n);
        let pm = m.margin_report().phase_margin_deg.unwrap_or(180.0);
        let q_star = params.q_star_kb(n);
        let delay_us = params.base.tau_feedback(params.q_star_pkts(n)) * 1e6;
        (n, pm, q_star, delay_us)
    });
    let threshold = points.iter().find(|p| p.1 < 0.0).map(|p| p.0);
    Fig11Result {
        points,
        instability_threshold: threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_limit_in_plausible_range() {
        let res = run(&Fig11Config::default());
        let thr = res
            .instability_threshold
            .expect("must go unstable at large N");
        // The paper reports ~40 with its tuning; our numerically linearized
        // loop places the crossing in the same regime (tens of flows).
        assert!(
            (8..=56).contains(&thr),
            "instability threshold {thr} out of range"
        );
        // Small N stable.
        assert!(res.points[0].1 > 0.0);
    }

    #[test]
    fn feedback_delay_grows_with_flows() {
        // Eq 31 + Eq 24: the mechanism behind the collapse.
        let res = run(&Fig11Config::default());
        for w in res.points.windows(2) {
            assert!(w[1].3 > w[0].3, "delay must grow with N");
            assert!(w[1].2 > w[0].2, "q* must grow with N");
        }
    }
}

crate::impl_to_json!(Fig11Config { flow_counts });
crate::impl_to_json!(Fig11Result {
    points,
    instability_threshold
});
