//! Appendix B validation: the discrete model's structural quantities
//! checked against the packet-level simulator.
//!
//! The Theorem 2 proof rests on two estimates:
//!
//! * **Eq 41** — the queue-buildup time `t ≤ (−1+√(1+8K_max/(N·R_AI·τ′)))/2`
//!   after aggregate rate crosses capacity;
//! * **Eq 40** — the AIMD cycle length
//!   `ΔT_k = 2 + (t/2 + C/(2·N·R_AI))·α(T_k)` in units of τ′.
//!
//! This experiment measures the *actual* AIMD cycle length of DCQCN in the
//! packet simulator (time between successive rate cuts of a flow at
//! steady state) and compares it with Eq 40 evaluated at the fixed-point
//! `α*` — a cross-layer check the paper never ran but its proof implies.

use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use models::dcqcn::DcqcnParams;
use models::discrete::DiscreteAimd;
use netsim::EngineConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct AppendixBConfig {
    /// Flow counts to test.
    pub flow_counts: Vec<usize>,
    /// Bandwidth (Gbps).
    pub bandwidth_gbps: f64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for AppendixBConfig {
    fn default() -> Self {
        AppendixBConfig {
            flow_counts: vec![2, 4, 8],
            bandwidth_gbps: 40.0,
            duration_s: 0.2,
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct AppendixBRow {
    /// Flow count.
    pub n_flows: usize,
    /// Fixed-point α* (Eq 42).
    pub alpha_star: f64,
    /// Eq 40's predicted cycle length at α*, in µs.
    pub predicted_cycle_us: f64,
    /// Measured mean inter-cut interval in the packet sim, µs.
    pub measured_cycle_us: f64,
    /// Number of cut events measured.
    pub cuts_measured: usize,
}

/// Result.
#[derive(Debug, Clone)]
pub struct AppendixBResult {
    /// Per-N rows.
    pub rows: Vec<AppendixBRow>,
}

/// Detect rate cuts in a delivered-rate trace: a drop of more than `frac`
/// relative to the previous window.
fn cut_times(trace: &[(f64, f64)], frac: f64, from: f64) -> Vec<f64> {
    let mut cuts = Vec::new();
    for w in trace.windows(2) {
        let (t0, r0) = w[0];
        let (t1, r1) = w[1];
        let _ = t0;
        if t1 >= from && r0 > 0.0 && (r0 - r1) / r0 > frac {
            cuts.push(t1);
        }
    }
    cuts
}

/// Run the cross-layer cycle-length comparison. Each flow count is an
/// independent (analytic + packet-sim) job, run in parallel with ordered
/// results.
///
/// When [`desim::par::batch_enabled`], the sweep dispatches through
/// [`desim::par::par_map_chunked`] (packet engines can't share lanes, so
/// chunked dispatch is the batching story here); per-row arithmetic is
/// unchanged, so both paths produce byte-identical rows.
pub fn run(cfg: &AppendixBConfig) -> AppendixBResult {
    let run_one = |n: usize| {
        // --- analytic prediction -----------------------------------------
        let mut params = DcqcnParams::default_40g();
        params.capacity_gbps = cfg.bandwidth_gbps;
        let c = params.capacity_pps();
        let discrete = DiscreteAimd::new(params.clone(), &vec![c / n as f64; n]);
        let alpha_star = discrete.alpha_star();
        let cycle_units = discrete.cycle_length(alpha_star); // in τ′ units
        let predicted_cycle_us = cycle_units * params.alpha_timer_us;

        // --- packet measurement -------------------------------------------
        let (mut eng, _b) = single_switch_longlived(
            Protocol::Dcqcn,
            n,
            cfg.bandwidth_gbps * 1e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
        // Steady-state window: second half of the run. At equilibrium each
        // cut removes α*/2 of the rate (Eq 1 with α = α*), so detect drops
        // at half that depth — above windowing noise, below the cut size.
        let frac = (alpha_star / 2.0) * 0.5;
        let cuts = cut_times(&report.rate_traces[0], frac, cfg.duration_s / 2.0);
        let measured_cycle_us = if cuts.len() >= 2 {
            (cuts.last().unwrap() - cuts[0]) / (cuts.len() - 1) as f64 * 1e6
        } else {
            f64::NAN
        };

        AppendixBRow {
            n_flows: n,
            alpha_star,
            predicted_cycle_us,
            measured_cycle_us,
            cuts_measured: cuts.len(),
        }
    };
    let rows = if desim::par::batch_enabled() {
        desim::par::par_map_chunked(cfg.flow_counts.clone(), 2, |chunk| {
            chunk.into_iter().map(run_one).collect()
        })
    } else {
        desim::par::par_map(cfg.flow_counts.clone(), run_one)
    };
    AppendixBResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_and_measured_cycles_same_scale() {
        let res = run(&AppendixBConfig {
            flow_counts: vec![2, 4],
            bandwidth_gbps: 40.0,
            duration_s: 0.15,
        });
        for row in &res.rows {
            assert!(
                row.cuts_measured >= 3,
                "N={}: need cut events, got {}",
                row.n_flows,
                row.cuts_measured
            );
            // The discrete model idealizes (synchronized flows, no fast
            // recovery); agreement within a factor of 3 in either direction
            // validates the Eq 40 scale.
            let ratio = row.measured_cycle_us / row.predicted_cycle_us;
            assert!(
                (0.33..3.0).contains(&ratio),
                "N={}: predicted {:.0} µs vs measured {:.0} µs (ratio {:.2})",
                row.n_flows,
                row.predicted_cycle_us,
                row.measured_cycle_us,
                ratio
            );
        }
    }

    #[test]
    fn cycle_grows_with_fewer_flows() {
        // Eq 40: ΔT has the C/(2·N·R_AI)·α term — fewer flows ⇒ each flow
        // must climb further back ⇒ longer cycles.
        let res = run(&AppendixBConfig {
            flow_counts: vec![2, 8],
            bandwidth_gbps: 40.0,
            duration_s: 0.15,
        });
        assert!(
            res.rows[0].predicted_cycle_us > res.rows[1].predicted_cycle_us,
            "prediction must decrease with N"
        );
    }

    #[test]
    fn cut_detection_finds_drops() {
        let trace = vec![
            (0.0, 10.0),
            (1.0, 10.0),
            (2.0, 4.0), // cut
            (3.0, 5.0),
            (4.0, 5.2),
            (5.0, 2.0), // cut
        ];
        let cuts = cut_times(&trace, 0.10, 0.0);
        assert_eq!(cuts, vec![2.0, 5.0]);
        // Window filter.
        let cuts = cut_times(&trace, 0.10, 3.0);
        assert_eq!(cuts, vec![5.0]);
    }
}

crate::impl_to_json!(AppendixBConfig {
    flow_counts,
    bandwidth_gbps,
    duration_s
});
crate::impl_to_json!(AppendixBRow {
    n_flows,
    alpha_star,
    predicted_cycle_us,
    measured_cycle_us,
    cuts_measured
});
crate::impl_to_json!(AppendixBResult { rows });
