//! Figure 2: DCQCN fluid model vs packet-level simulation.
//!
//! "We simulate and model a simple topology, in which N senders, connected
//! to a switch, send to a single receiver […] DCQCN parameters are set to
//! the values proposed in \[31\]. Note that as per DCQCN specification, all
//! flows start at line rate. Figure 2 shows that the fluid model and the
//! simulator are in good agreement."

use crate::experiments::Series;
use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use models::dcqcn::{DcqcnFluid, DcqcnParams};
use netsim::EngineConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Flow counts to run (the paper shows N = 2 and N = 10-style panels).
    pub flow_counts: Vec<usize>,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Link speed in Gbps (the DCQCN hardware context is 40 GbE).
    pub bandwidth_gbps: f64,
    /// Per-link propagation delay in µs.
    pub prop_delay_us: f64,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            flow_counts: vec![2, 10],
            duration_s: 0.05,
            bandwidth_gbps: 40.0,
            prop_delay_us: 1.0,
        }
    }
}

/// Result for one flow count.
#[derive(Debug, Clone)]
pub struct Fig2Panel {
    /// Number of flows.
    pub n_flows: usize,
    /// Fluid-model flow-0 rate (Gbps) over time.
    pub fluid_rate_gbps: Series,
    /// Fluid-model queue (KB) over time.
    pub fluid_queue_kb: Series,
    /// Packet-sim flow-0 delivered rate (Gbps) over time.
    pub sim_rate_gbps: Series,
    /// Packet-sim bottleneck queue (KB) over time.
    pub sim_queue_kb: Series,
    /// Tail-window mean rates: (fluid, sim), Gbps.
    pub tail_rates_gbps: (f64, f64),
    /// Tail-window mean queues: (fluid, sim), KB.
    pub tail_queues_kb: (f64, f64),
}

/// Full result.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// One panel per flow count.
    pub panels: Vec<Fig2Panel>,
}

fn tail_mean(series: &[(f64, f64)], from: f64) -> f64 {
    let pts: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= from)
        .map(|&(_, v)| v)
        .collect();
    if pts.is_empty() {
        return f64::NAN;
    }
    pts.iter().sum::<f64>() / pts.len() as f64
}

/// Run the comparison.
pub fn run(cfg: &Fig2Config) -> Fig2Result {
    let mut panels = Vec::new();
    for &n in &cfg.flow_counts {
        // ---- fluid model ----
        let mut params = DcqcnParams::default_40g();
        params.capacity_gbps = cfg.bandwidth_gbps;
        // Control loop delay ≈ 2 hops of propagation each way (sender →
        // switch → receiver for data, receiver → sender for the CNP).
        params.feedback_delay_us = 4.0 * cfg.prop_delay_us;
        let mut fluid = DcqcnFluid::new(params.clone(), n);
        let trace = fluid.simulate(cfg.duration_s);
        let fluid_rate_gbps = fluid.rates_gbps(&trace, 0);
        let fluid_queue_kb = fluid.queue_kb(&trace);

        // ---- packet simulation ----
        let (mut eng, bottleneck) = single_switch_longlived(
            Protocol::Dcqcn,
            n,
            cfg.bandwidth_gbps * 1e9,
            SimDuration::from_micros(cfg.prop_delay_us.round() as u64),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
        let sim_rate_gbps: Series = report.rate_traces[0]
            .iter()
            .map(|&(t, bps)| (t, bps / 1e9))
            .collect();
        let sim_queue_kb: Series = report.queue_traces[&bottleneck]
            .points()
            .iter()
            .map(|&(t, bytes)| (t, bytes / 1000.0))
            .collect();

        let from = cfg.duration_s * 0.7;
        panels.push(Fig2Panel {
            n_flows: n,
            tail_rates_gbps: (
                tail_mean(&fluid_rate_gbps, from),
                tail_mean(&sim_rate_gbps, from),
            ),
            tail_queues_kb: (
                tail_mean(&fluid_queue_kb, from),
                tail_mean(&sim_queue_kb, from),
            ),
            fluid_rate_gbps,
            fluid_queue_kb,
            sim_rate_gbps,
            sim_queue_kb,
        });
    }
    Fig2Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_and_sim_agree_for_two_flows() {
        let cfg = Fig2Config {
            flow_counts: vec![2],
            duration_s: 0.04,
            ..Default::default()
        };
        let res = run(&cfg);
        let p = &res.panels[0];
        let (fluid_r, sim_r) = p.tail_rates_gbps;
        // Both should be near fair share (20 Gbps).
        assert!(
            (fluid_r - 20.0).abs() < 2.0,
            "fluid tail rate {fluid_r:.2} Gbps"
        );
        // The packet simulator's sawtooth (per-packet marking, discrete
        // CNPs, header overhead) costs some goodput relative to the fluid
        // equilibrium; "good agreement" here means within ~20 %.
        assert!((sim_r - 20.0).abs() < 4.0, "sim tail rate {sim_r:.2} Gbps");
        // Queues in the same ballpark (the paper's "good agreement").
        let (fluid_q, sim_q) = p.tail_queues_kb;
        assert!(
            fluid_q > 0.0 && sim_q > 0.0,
            "queues must be nonzero: {fluid_q:.1} vs {sim_q:.1}"
        );
        assert!(
            (fluid_q - sim_q).abs() / fluid_q.max(sim_q) < 0.6,
            "queue disagreement: fluid {fluid_q:.1} KB vs sim {sim_q:.1} KB"
        );
    }
}

crate::impl_to_json!(Fig2Config {
    flow_counts,
    duration_s,
    bandwidth_gbps,
    prop_delay_us
});
crate::impl_to_json!(Fig2Panel {
    n_flows,
    fluid_rate_gbps,
    fluid_queue_kb,
    sim_rate_gbps,
    sim_queue_kb,
    tail_rates_gbps,
    tail_queues_kb
});
crate::impl_to_json!(Fig2Result { panels });
