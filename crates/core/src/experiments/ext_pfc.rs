//! Extension: ECN-before-PFC (the deployment rule the paper's model
//! assumes: "We assume that ECN marking is triggered before PFC").
//!
//! With PFC alone (ECN disabled), the bottleneck backlog climbs to the
//! PAUSE threshold and pausing propagates upstream — the blunt per-link
//! mechanism with its head-of-line side effects. With DCQCN's ECN marking
//! configured *below* the PFC threshold, end-to-end congestion control
//! reacts first and (almost) no PAUSE is ever generated. This experiment
//! measures PAUSE activity and queue levels in both configurations.

use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use netsim::{EngineConfig, PfcConfig, RedConfig};

/// Configuration.
#[derive(Debug, Clone)]
pub struct ExtPfcConfig {
    /// Flows at the bottleneck.
    pub n_flows: usize,
    /// PFC pause threshold (bytes).
    pub pause_threshold_bytes: u64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for ExtPfcConfig {
    fn default() -> Self {
        ExtPfcConfig {
            n_flows: 4,
            pause_threshold_bytes: 400_000,
            duration_s: 0.1,
        }
    }
}

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct ExtPfcOutcome {
    /// Label.
    pub label: String,
    /// PAUSE transitions observed.
    pub pauses: u64,
    /// Total paused port-seconds.
    pub paused_s: f64,
    /// Max bottleneck queue (KB).
    pub max_queue_kb: f64,
    /// Aggregate goodput (Gbps).
    pub goodput_gbps: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct ExtPfcResult {
    /// ECN+PFC vs PFC-only.
    pub outcomes: Vec<ExtPfcOutcome>,
}

fn run_one(cfg: &ExtPfcConfig, ecn: bool) -> ExtPfcOutcome {
    let mut ecfg = EngineConfig::default();
    ecfg.pfc = Some(PfcConfig {
        pause_threshold_bytes: cfg.pause_threshold_bytes,
        resume_threshold_bytes: cfg.pause_threshold_bytes * 3 / 4,
    });
    if !ecn {
        // Disable marking entirely: thresholds above any reachable queue.
        ecfg.red = RedConfig {
            kmin_bytes: u64::MAX / 4,
            kmax_bytes: u64::MAX / 2,
            p_max: 0.0,
        };
    }
    let (mut eng, bottleneck) = single_switch_longlived(
        Protocol::Dcqcn,
        cfg.n_flows,
        10e9,
        SimDuration::from_micros(1),
        ecfg,
    );
    let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
    let max_queue_kb = report.queue_traces[&bottleneck]
        .points()
        .iter()
        .filter(|&&(t, _)| t >= 0.01) // skip the line-rate start transient
        .map(|&(_, b)| b / 1000.0)
        .fold(0.0f64, f64::max);
    let goodput_gbps =
        report.delivered_bytes.iter().sum::<u64>() as f64 * 8.0 / cfg.duration_s / 1e9;
    ExtPfcOutcome {
        label: if ecn { "ECN before PFC" } else { "PFC only" }.to_string(),
        pauses: report.pfc_pauses,
        paused_s: report.pfc_paused_s,
        max_queue_kb,
        goodput_gbps,
    }
}

/// Run both configurations.
pub fn run(cfg: &ExtPfcConfig) -> ExtPfcResult {
    ExtPfcResult {
        outcomes: vec![run_one(cfg, true), run_one(cfg, false)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_prevents_pfc_engagement() {
        let res = run(&ExtPfcConfig::default());
        let ecn = &res.outcomes[0];
        let pfc_only = &res.outcomes[1];
        // With ECN configured below the PFC threshold, congestion control
        // reacts first: steady-state PAUSE activity is (near) zero.
        assert!(
            ecn.paused_s <= pfc_only.paused_s,
            "ECN must not pause more: {} vs {}",
            ecn.paused_s,
            pfc_only.paused_s
        );
        // PFC-only keeps flows at line rate (no end-to-end signal), so the
        // queue rides the PAUSE threshold and pausing is continuous.
        assert!(
            pfc_only.pauses > 10,
            "PFC-only must pause repeatedly, saw {}",
            pfc_only.pauses
        );
        assert!(
            pfc_only.max_queue_kb > ecn.max_queue_kb,
            "PFC-only queue {:.0} KB vs ECN {:.0} KB",
            pfc_only.max_queue_kb,
            ecn.max_queue_kb
        );
        // Both remain lossless and keep the link busy.
        assert!(ecn.goodput_gbps > 7.0, "{:.2}", ecn.goodput_gbps);
        assert!(pfc_only.goodput_gbps > 7.0, "{:.2}", pfc_only.goodput_gbps);
    }
}

crate::impl_to_json!(ExtPfcConfig {
    n_flows,
    pause_threshold_bytes,
    duration_s
});
crate::impl_to_json!(ExtPfcOutcome {
    label,
    pauses,
    paused_s,
    max_queue_kb,
    goodput_gbps
});
crate::impl_to_json!(ExtPfcResult { outcomes });
