//! Figure 16: the bottleneck queue at load 0.8.
//!
//! "The queue length under TIMELY can grow to a very high value, and is
//! highly variable. In contrast the DCQCN queue has a fixed point between
//! the RED thresholds and even in the transient state the queue stays
//! within the bounds."

use crate::experiments::Series;
use crate::scenarios::{dumbbell_fct, Protocol};
use desim::{SimDuration, SimTime};
use netsim::EngineConfig;
use workload::{FlowSizeDist, ScenarioConfig};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig16Config {
    /// Load factor (0.8 in the paper).
    pub load: f64,
    /// Protocols.
    pub protocols: Vec<Protocol>,
    /// Arrival horizon (seconds).
    pub horizon_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig16Config {
    fn default() -> Self {
        Fig16Config {
            load: 0.8,
            protocols: vec![Protocol::Dcqcn, Protocol::Timely, Protocol::PatchedTimely],
            horizon_s: 0.4,
            seed: 1,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig16Result {
    /// Per protocol: bottleneck queue trace in KB.
    pub queues_kb: Vec<(String, Series)>,
    /// Per protocol: (mean KB, p99 KB, max KB) of the queue.
    pub summary: Vec<(String, f64, f64, f64)>,
}

/// Run.
pub fn run(cfg: &Fig16Config) -> Fig16Result {
    let dist = FlowSizeDist::web_search();
    let mut queues_kb = Vec::new();
    let mut summary = Vec::new();
    for &proto in &cfg.protocols {
        let scenario = ScenarioConfig {
            n_pairs: 10,
            load_factor: cfg.load,
            base_rate_bps: 8e9,
            horizon_s: cfg.horizon_s,
            seed: cfg.seed,
        };
        let mut ecfg = EngineConfig::default();
        ecfg.rate_trace_window = None;
        let (mut eng, bottleneck) = dumbbell_fct(
            proto,
            &scenario,
            &dist,
            10e9,
            SimDuration::from_micros(1),
            ecfg,
        );
        let report = eng.run(SimTime::from_secs_f64(cfg.horizon_s * 1.5));
        let series: Series = report.queue_traces[&bottleneck]
            .points()
            .iter()
            .map(|&(t, b)| (t, b / 1000.0))
            .collect();
        let mut vals: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let p99 = vals
            .get(((vals.len() as f64 * 0.99) as usize).min(vals.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        let max = vals.last().copied().unwrap_or(0.0);
        queues_kb.push((proto.label().to_string(), series));
        summary.push((proto.label().to_string(), mean, p99, max));
    }
    Fig16Result { queues_kb, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_based_queue_much_larger_and_more_variable() {
        // The paper's Figure 16: the ECN-controlled queue stays within the
        // RED band while the delay-based protocol's queue grows large and
        // variable. In our simulator the uncontrolled-queue behaviour is
        // carried by Patched TIMELY (β = 0.008, the paper's patched
        // parameters); original TIMELY instead under-utilizes (see fig14).
        let cfg = Fig16Config {
            protocols: vec![Protocol::Dcqcn, Protocol::PatchedTimely],
            horizon_s: 0.15,
            seed: 2,
            load: 0.8,
        };
        let res = run(&cfg);
        let (_, _dmean, _dp99, dmax) = res.summary[0];
        let (_, _tmean, tp99, tmax) = res.summary[1];
        assert!(
            tmax > 2.0 * dmax,
            "delay-based max queue {tmax:.0} KB vs DCQCN {dmax:.0} KB"
        );
        // DCQCN stays within the vicinity of the RED band (K_max = 200 KB);
        // allow transient overshoot but not MB-scale buildup.
        assert!(dmax < 450.0, "DCQCN max queue {dmax:.0} KB too large");
        assert!(tp99 > 300.0, "delay-based p99 {tp99:.0} KB should be large");
    }
}

crate::impl_to_json!(Fig16Config {
    load,
    protocols,
    horizon_s,
    seed
});
crate::impl_to_json!(Fig16Result { queues_kb, summary });
