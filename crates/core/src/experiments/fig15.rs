//! Figure 15: CDF of small-flow FCT at load 0.8 — the full distribution
//! behind Figure 14's quantiles, showing TIMELY's heavy tail.

use crate::experiments::fig14::run_cell;
use crate::experiments::Series;
use crate::scenarios::Protocol;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig15Config {
    /// The load factor (0.8 in the paper).
    pub load: f64,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Arrival horizon (seconds).
    pub horizon_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig15Config {
    fn default() -> Self {
        Fig15Config {
            load: 0.8,
            protocols: vec![Protocol::Dcqcn, Protocol::Timely, Protocol::PatchedTimely],
            horizon_s: 0.4,
            seed: 1,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// Per protocol: `(fct_ms, cumulative fraction)` CDF of small flows.
    pub cdfs: Vec<(String, Series)>,
}

/// Run.
pub fn run(cfg: &Fig15Config) -> Fig15Result {
    let mut cdfs = Vec::new();
    for &proto in &cfg.protocols {
        let (mut stats, _util) = run_cell(proto, cfg.load, cfg.horizon_s, cfg.seed);
        let _ = &mut stats;
        let cdf: Series = stats
            .small_cdf()
            .into_iter()
            .map(|(fct_s, p)| (fct_s * 1e3, p))
            .collect();
        cdfs.push((proto.label().to_string(), cdf));
    }
    Fig15Result { cdfs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_based_tail_heavier_than_dcqcn() {
        let cfg = Fig15Config {
            protocols: vec![Protocol::Dcqcn, Protocol::PatchedTimely],
            horizon_s: 0.15,
            seed: 2,
            load: 0.8,
        };
        let res = run(&cfg);
        let max_fct = |s: &Series| s.iter().map(|&(x, _)| x).fold(0.0, f64::max);
        let dcqcn_max = max_fct(&res.cdfs[0].1);
        let patched_max = max_fct(&res.cdfs[1].1);
        assert!(
            patched_max > dcqcn_max,
            "delay-based max FCT {patched_max:.2} ms vs DCQCN {dcqcn_max:.2} ms"
        );
        // CDFs are valid distributions.
        for (_, cdf) in &res.cdfs {
            assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }
}

crate::impl_to_json!(Fig15Config {
    load,
    protocols,
    horizon_s,
    seed
});
crate::impl_to_json!(Fig15Result { cdfs });
