//! Figure 6 + Theorem 2: the discrete AIMD model — sawtooth trace and the
//! exponential decay of the rate gap between flows.

use models::dcqcn::DcqcnParams;
use models::discrete::DiscreteAimd;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Initial rates as fractions of C (two unequal flows by default).
    pub initial_fractions: Vec<f64>,
    /// AIMD cycles to simulate.
    pub cycles: usize,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            initial_fractions: vec![0.9, 0.1],
            cycles: 60,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Sawtooth: `(time in τ' units, per-flow rates in Gbps)`.
    pub sawtooth: Vec<(f64, Vec<f64>)>,
    /// `(cycle, max rate gap in Gbps, mean α)` per cycle.
    pub convergence: Vec<(usize, f64, f64)>,
    /// The fixed point α* of Eq 42.
    pub alpha_star: f64,
    /// Theoretical per-cycle contraction bound `1 − α*/2`.
    pub contraction_bound: f64,
    /// Measured geometric decay rate of the rate gap (per cycle).
    pub measured_decay: f64,
}

/// Run the discrete model.
pub fn run(cfg: &Fig6Config) -> Fig6Result {
    let params = DcqcnParams::default_40g();
    let c = params.capacity_pps();
    let pkt = params.packet_bytes;
    let rates: Vec<f64> = cfg.initial_fractions.iter().map(|&f| f * c).collect();

    let mut saw_model = DiscreteAimd::new(params.clone(), &rates);
    let sawtooth: Vec<(f64, Vec<f64>)> = saw_model
        .sawtooth(8)
        .into_iter()
        .map(|(t, rs)| {
            (
                t,
                rs.into_iter()
                    .map(|r| models::units::pps_to_gbps(r, pkt))
                    .collect(),
            )
        })
        .collect();

    let mut model = DiscreteAimd::new(params, &rates);
    let alpha_star = model.alpha_star();
    let convergence: Vec<(usize, f64, f64)> = model
        .run(cfg.cycles)
        .into_iter()
        .map(|(k, gap, a)| (k, models::units::pps_to_gbps(gap, pkt), a))
        .collect();

    // Fit the geometric decay over the second half (α has converged there).
    let half = convergence.len() / 2;
    let (k0, g0, _) = convergence[half];
    let (k1, g1, _) = *convergence.last().unwrap();
    let measured_decay = if g0 > 0.0 && g1 > 0.0 && k1 > k0 {
        (g1 / g0).powf(1.0 / (k1 - k0) as f64)
    } else {
        0.0
    };

    Fig6Result {
        sawtooth,
        convergence,
        alpha_star,
        contraction_bound: 1.0 - alpha_star / 2.0,
        measured_decay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_geometric_and_within_bound() {
        let res = run(&Fig6Config::default());
        assert!(res.alpha_star > 0.0);
        // Theorem 2: gap decays at least as fast as (1 − α*/2) per cycle.
        assert!(
            res.measured_decay <= res.contraction_bound + 0.02,
            "measured {:.4} vs bound {:.4}",
            res.measured_decay,
            res.contraction_bound
        );
        assert!(res.measured_decay > 0.0 && res.measured_decay < 1.0);
    }

    #[test]
    fn gap_shrinks_monotonically() {
        let res = run(&Fig6Config::default());
        for w in res.convergence.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "gap must not grow");
        }
        let first = res.convergence.first().unwrap().1;
        let last = res.convergence.last().unwrap().1;
        // With α* ≈ 0.04 the contraction is ~0.95–0.98 per cycle; over 60
        // cycles the gap must shrink by an order of magnitude.
        assert!(last < first * 0.1, "gap must collapse: {first} → {last}");
    }

    #[test]
    fn sawtooth_rates_positive_and_bounded() {
        let res = run(&Fig6Config::default());
        for (_, rates) in &res.sawtooth {
            for &r in rates {
                assert!(r > 0.0 && r <= 41.0, "rate {r} Gbps out of range");
            }
        }
    }
}

crate::impl_to_json!(Fig6Config {
    initial_fractions,
    cycles
});
crate::impl_to_json!(Fig6Result {
    sawtooth,
    convergence,
    alpha_star,
    contraction_bound,
    measured_decay
});
