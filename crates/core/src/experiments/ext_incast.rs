//! Extension: datacenter-scale incast FCT on fat-tree topologies.
//!
//! The paper's FCT study (Figures 13–14) runs ten senders over a dumbbell;
//! its *claims*, though, are about datacenter transport at scale. This
//! experiment rebuilds the study at rack/pod scale: a k-ary fat-tree with
//! ECMP multipath, an N:1 incast burst aimed at one host, and the FCT
//! distribution of the responses as N sweeps past a thousand concurrent
//! flows. The sweep doubles as the engine's scaling probe — each cell
//! reports the events the run dispatched, the numerator of the events/sec
//! rows the bench suite records.
//!
//! Two determinism hooks back the CI gates:
//!
//! * every cell carries a 64-bit digest folded over the exact FCT bit
//!   patterns, so `SIM_THREADS=1` vs `4` runs can be compared byte for
//!   byte from stdout alone;
//! * [`run_zero_fault_identity`] re-runs a cell with `faults: None` vs an
//!   installed *empty* schedule and compares digests — the fault plane must
//!   be bit-invisible when it has nothing to inject.

use crate::scenarios::{fat_tree_incast, Protocol};
use desim::{SimDuration, SimTime};
use faults::FaultSchedule;
use netsim::{EngineConfig, SimReport};
use workload::IncastConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct ExtIncastConfig {
    /// Fat-tree arity (k pods, k³/4 hosts).
    pub k: usize,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Incast fan-in degrees to sweep.
    pub sender_counts: Vec<usize>,
    /// Response size per sender (bytes).
    pub bytes_per_sender: u64,
    /// Link bandwidth (bit/s), uniform across the fabric.
    pub bandwidth_bps: f64,
    /// Request-fanout skew window (seconds).
    pub stagger_s: f64,
    /// Seed for the burst generator and the engine's marking RNG.
    pub seed: u64,
}

impl Default for ExtIncastConfig {
    fn default() -> Self {
        ExtIncastConfig {
            k: 8,
            protocols: vec![Protocol::Dcqcn, Protocol::PatchedTimely],
            sender_counts: vec![64, 256, 1024],
            bytes_per_sender: 32_000,
            bandwidth_bps: 10e9,
            stagger_s: 10e-6,
            seed: 1,
        }
    }
}

/// One `(protocol, fan-in)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct IncastCell {
    /// Protocol label.
    pub protocol: String,
    /// Fan-in degree (flows aimed at the receiver).
    pub n_senders: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Median FCT (ms).
    pub median_fct_ms: f64,
    /// 99th-percentile FCT (ms).
    pub p99_fct_ms: f64,
    /// Receiver goodput over the burst makespan (Gbps).
    pub goodput_gbps: f64,
    /// Events the run's event loop dispatched.
    pub events_processed: u64,
    /// Wall-clock the engine run took (milliseconds). Machine-dependent by
    /// nature: persisted to `results/ext_incast.json` as a scaling probe
    /// next to `events_processed`, but excluded from stdout tables, digests
    /// and every byte-identity comparison.
    pub wall_ms: f64,
    /// Simulated horizon actually used (seconds).
    pub horizon_s: f64,
    /// Order-independent digest of the exact FCT bit patterns plus the
    /// run's counter block; equal digests ⇒ bit-identical runs.
    pub digest: String,
}

/// Result.
#[derive(Debug, Clone)]
pub struct ExtIncastResult {
    /// Sweep cells, protocol-major, fan-in ascending.
    pub cells: Vec<IncastCell>,
}

/// Fold a run's externally visible outcome into a 64-bit FNV-1a digest:
/// every completed flow's `(index, size, start, fct)` with the floats taken
/// bit-exactly, then the counter block (marks, CNPs, drops, events). Two
/// runs digest equally iff the engine made identical decisions.
pub fn report_digest(report: &SimReport) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in &report.fcts {
        eat(r.flow as u64);
        eat(r.size_bytes);
        eat(r.start_s.to_bits());
        eat(r.fct_s.to_bits());
    }
    eat(report.marked_packets);
    eat(report.cnps_sent);
    eat(report.data_packets);
    eat(report.fault_drops);
    eat(report.faults_injected);
    eat(report.events_processed);
    format!("{h:016x}")
}

/// Horizon heuristic: the ideal fan-in makespan (all responses serialized
/// through the last hop) times a generous congestion-control slack, plus a
/// fixed tail for stragglers.
fn horizon_s(cfg: &ExtIncastConfig, n_senders: usize) -> f64 {
    let ideal = n_senders as f64 * cfg.bytes_per_sender as f64 * 8.0 / cfg.bandwidth_bps;
    ideal * 8.0 + cfg.stagger_s + 5e-3
}

fn engine_config(cfg: &ExtIncastConfig) -> EngineConfig {
    let mut ecfg = EngineConfig::default();
    ecfg.seed = cfg.seed;
    ecfg.rate_trace_window = None; // a thousand flows; rate traces are noise
    ecfg
}

/// Run one `(protocol, fan-in)` cell.
pub fn run_cell(cfg: &ExtIncastConfig, protocol: Protocol, n_senders: usize) -> IncastCell {
    let incast = IncastConfig {
        n_senders,
        bytes_per_sender: cfg.bytes_per_sender,
        start_s: 0.0,
        stagger_s: cfg.stagger_s,
        seed: cfg.seed,
    };
    let horizon = horizon_s(cfg, n_senders);
    let (mut eng, _bottleneck) = fat_tree_incast(
        protocol,
        cfg.k,
        &incast,
        cfg.bandwidth_bps,
        SimDuration::from_micros(1),
        engine_config(cfg),
    );
    let sw = obs::span::Stopwatch::start();
    let report = eng.run(SimTime::from_secs_f64(horizon));
    let wall_ms = sw.elapsed_ns() as f64 / 1e6;
    cell_from_report(protocol, n_senders, horizon, wall_ms, &report)
}

fn cell_from_report(
    protocol: Protocol,
    n_senders: usize,
    horizon: f64,
    wall_ms: f64,
    report: &SimReport,
) -> IncastCell {
    let mut fcts: Vec<f64> = report.fcts.iter().map(|r| r.fct_s).collect();
    fcts.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if fcts.is_empty() {
            f64::NAN
        } else {
            fcts[((fcts.len() - 1) as f64 * p).round() as usize] * 1e3
        }
    };
    let makespan = report
        .fcts
        .iter()
        .map(|r| r.start_s + r.fct_s)
        .fold(0.0, f64::max);
    let delivered: u64 = report.delivered_bytes.iter().sum();
    IncastCell {
        protocol: protocol.label().to_string(),
        n_senders,
        completed: report.fcts.len(),
        median_fct_ms: pct(0.5),
        p99_fct_ms: pct(0.99),
        goodput_gbps: if makespan > 0.0 {
            delivered as f64 * 8.0 / makespan / 1e9
        } else {
            0.0
        },
        events_processed: report.events_processed,
        wall_ms,
        horizon_s: horizon,
        digest: report_digest(report),
    }
}

/// Run the full sweep. Cells run in parallel via the deterministic
/// `par_map` fan-out, so output order (and every digest) is independent of
/// `SIM_THREADS`.
pub fn run(cfg: &ExtIncastConfig) -> ExtIncastResult {
    let mut jobs = Vec::new();
    for &proto in &cfg.protocols {
        for &n in &cfg.sender_counts {
            jobs.push((proto, n));
        }
    }
    let cells = desim::par::par_map(jobs, |(proto, n)| run_cell(cfg, proto, n));
    ExtIncastResult { cells }
}

/// The zero-fault bit-identity probe: run one cell with `faults: None` and
/// once more with an installed but *empty* `FaultSchedule`, returning both
/// digests. They must be equal — an idle fault plane may not perturb the
/// simulation in any observable way.
pub fn run_zero_fault_identity(cfg: &ExtIncastConfig, n_senders: usize) -> (String, String) {
    let incast = IncastConfig {
        n_senders,
        bytes_per_sender: cfg.bytes_per_sender,
        start_s: 0.0,
        stagger_s: cfg.stagger_s,
        seed: cfg.seed,
    };
    let horizon = horizon_s(cfg, n_senders);
    let run_with = |faults: Option<FaultSchedule>| -> String {
        let mut ecfg = engine_config(cfg);
        ecfg.faults = faults;
        let (mut eng, _b) = fat_tree_incast(
            Protocol::Dcqcn,
            cfg.k,
            &incast,
            cfg.bandwidth_bps,
            SimDuration::from_micros(1),
            ecfg,
        );
        report_digest(&eng.run(SimTime::from_secs_f64(horizon)))
    };
    (run_with(None), run_with(Some(FaultSchedule::new(cfg.seed))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExtIncastConfig {
        ExtIncastConfig {
            k: 4,
            protocols: vec![Protocol::Dcqcn],
            sender_counts: vec![32],
            bytes_per_sender: 16_000,
            ..Default::default()
        }
    }

    #[test]
    fn all_flows_complete_and_digest_is_stable() {
        let cfg = small();
        let a = run_cell(&cfg, Protocol::Dcqcn, 32);
        assert_eq!(a.completed, 32, "every response must finish");
        assert!(a.median_fct_ms > 0.0 && a.p99_fct_ms >= a.median_fct_ms);
        assert!(a.events_processed > 1_000, "scale probe must count events");
        let b = run_cell(&cfg, Protocol::Dcqcn, 32);
        assert_eq!(a.digest, b.digest, "same cell must digest identically");
    }

    #[test]
    fn fan_in_contention_grows_with_n() {
        let cfg = small();
        let lo = run_cell(&cfg, Protocol::Dcqcn, 8);
        let hi = run_cell(&cfg, Protocol::Dcqcn, 48);
        assert!(
            hi.p99_fct_ms > lo.p99_fct_ms,
            "48:1 p99 {:.3} ms must exceed 8:1 {:.3} ms",
            hi.p99_fct_ms,
            lo.p99_fct_ms
        );
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical() {
        let (none, empty) = run_zero_fault_identity(&small(), 24);
        assert_eq!(none, empty, "idle fault plane must be invisible");
    }

    #[test]
    fn sweep_covers_all_cells_in_order() {
        let mut cfg = small();
        cfg.sender_counts = vec![8, 16];
        let res = run(&cfg);
        assert_eq!(res.cells.len(), 2);
        assert_eq!(
            (res.cells[0].n_senders, res.cells[1].n_senders),
            (8, 16),
            "cells keep job order regardless of SIM_THREADS"
        );
    }
}

crate::impl_to_json!(ExtIncastConfig {
    k,
    protocols,
    sender_counts,
    bytes_per_sender,
    bandwidth_bps,
    stagger_s,
    seed
});
crate::impl_to_json!(IncastCell {
    protocol,
    n_senders,
    completed,
    median_fct_ms,
    p99_fct_ms,
    goodput_gbps,
    events_processed,
    wall_ms,
    horizon_s,
    digest
});
crate::impl_to_json!(ExtIncastResult { cells });
