//! Extension: datacenter-scale incast FCT on fat-tree topologies.
//!
//! The paper's FCT study (Figures 13–14) runs ten senders over a dumbbell;
//! its *claims*, though, are about datacenter transport at scale. This
//! experiment rebuilds the study at rack/pod scale: a k-ary fat-tree with
//! ECMP multipath, an N:1 incast burst aimed at one host, and the FCT
//! distribution of the responses as N sweeps past a thousand concurrent
//! flows. The sweep doubles as the engine's scaling probe — each cell
//! reports the events the run dispatched, the numerator of the events/sec
//! rows the bench suite records.
//!
//! Two determinism hooks back the CI gates:
//!
//! * every cell carries a 64-bit digest folded over the exact FCT bit
//!   patterns, so `SIM_THREADS=1` vs `4` runs can be compared byte for
//!   byte from stdout alone;
//! * [`run_zero_fault_identity`] re-runs a cell with `faults: None` vs an
//!   installed *empty* schedule and compares digests — the fault plane must
//!   be bit-invisible when it has nothing to inject.

use crate::scenarios::{fat_tree_incast, Protocol};
use desim::{SimDuration, SimTime};
use faults::FaultSchedule;
use netsim::{EngineConfig, SimReport};
use workload::IncastConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct ExtIncastConfig {
    /// Fat-tree arity (k pods, k³/4 hosts).
    pub k: usize,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Incast fan-in degrees to sweep.
    pub sender_counts: Vec<usize>,
    /// Response size per sender (bytes).
    pub bytes_per_sender: u64,
    /// Link bandwidth (bit/s), uniform across the fabric.
    pub bandwidth_bps: f64,
    /// Request-fanout skew window (seconds).
    pub stagger_s: f64,
    /// Seed for the burst generator and the engine's marking RNG.
    pub seed: u64,
}

impl Default for ExtIncastConfig {
    fn default() -> Self {
        ExtIncastConfig {
            k: 8,
            protocols: vec![Protocol::Dcqcn, Protocol::PatchedTimely],
            sender_counts: vec![64, 256, 1024],
            bytes_per_sender: 32_000,
            bandwidth_bps: 10e9,
            stagger_s: 10e-6,
            seed: 1,
        }
    }
}

/// One `(protocol, fan-in)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct IncastCell {
    /// Protocol label.
    pub protocol: String,
    /// Fan-in degree (flows aimed at the receiver).
    pub n_senders: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Median FCT (ms).
    pub median_fct_ms: f64,
    /// 99th-percentile FCT (ms).
    pub p99_fct_ms: f64,
    /// Receiver goodput over the burst makespan (Gbps).
    pub goodput_gbps: f64,
    /// Events the run's event loop dispatched.
    pub events_processed: u64,
    /// Wall-clock the engine run took (milliseconds). Machine-dependent by
    /// nature: persisted to `results/ext_incast.json` as a scaling probe
    /// next to `events_processed`, but excluded from stdout tables, digests
    /// and every byte-identity comparison.
    pub wall_ms: f64,
    /// Simulated horizon actually used (seconds).
    pub horizon_s: f64,
    /// Order-independent digest of the exact FCT bit patterns plus the
    /// run's counter block; equal digests ⇒ bit-identical runs.
    pub digest: String,
}

/// Result.
#[derive(Debug, Clone)]
pub struct ExtIncastResult {
    /// Sweep cells, protocol-major, fan-in ascending.
    pub cells: Vec<IncastCell>,
    /// Cells whose jobs failed under supervision (panic, timeout, typed
    /// error), in job order. Empty for unsupervised runs.
    pub failed: Vec<FailedCell>,
}

/// One failed `(protocol, fan-in)` cell of a supervised sweep.
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// Protocol label.
    pub protocol: String,
    /// Fan-in degree.
    pub n_senders: usize,
    /// Machine-readable error class (`faults::SimError::kind`).
    pub kind: String,
    /// Human-readable error.
    pub error: String,
}

/// Fold a run's externally visible outcome into a 64-bit FNV-1a digest:
/// every completed flow's `(index, size, start, fct)` with the floats taken
/// bit-exactly, then the counter block (marks, CNPs, drops, events). Two
/// runs digest equally iff the engine made identical decisions.
pub fn report_digest(report: &SimReport) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in &report.fcts {
        eat(r.flow as u64);
        eat(r.size_bytes);
        eat(r.start_s.to_bits());
        eat(r.fct_s.to_bits());
    }
    eat(report.marked_packets);
    eat(report.cnps_sent);
    eat(report.data_packets);
    eat(report.fault_drops);
    eat(report.faults_injected);
    eat(report.events_processed);
    format!("{h:016x}")
}

/// Horizon heuristic: the ideal fan-in makespan (all responses serialized
/// through the last hop) times a generous congestion-control slack, plus a
/// fixed tail for stragglers.
fn horizon_s(cfg: &ExtIncastConfig, n_senders: usize) -> f64 {
    let ideal = n_senders as f64 * cfg.bytes_per_sender as f64 * 8.0 / cfg.bandwidth_bps;
    ideal * 8.0 + cfg.stagger_s + 5e-3
}

fn engine_config(cfg: &ExtIncastConfig) -> EngineConfig {
    let mut ecfg = EngineConfig::default();
    ecfg.seed = cfg.seed;
    ecfg.rate_trace_window = None; // a thousand flows; rate traces are noise
    ecfg
}

/// Run one `(protocol, fan-in)` cell.
pub fn run_cell(cfg: &ExtIncastConfig, protocol: Protocol, n_senders: usize) -> IncastCell {
    let incast = IncastConfig {
        n_senders,
        bytes_per_sender: cfg.bytes_per_sender,
        start_s: 0.0,
        stagger_s: cfg.stagger_s,
        seed: cfg.seed,
    };
    let horizon = horizon_s(cfg, n_senders);
    let (mut eng, _bottleneck) = fat_tree_incast(
        protocol,
        cfg.k,
        &incast,
        cfg.bandwidth_bps,
        SimDuration::from_micros(1),
        engine_config(cfg),
    );
    let sw = obs::span::Stopwatch::start();
    let report = eng.run(SimTime::from_secs_f64(horizon));
    let wall_ms = sw.elapsed_ns() as f64 / 1e6;
    cell_from_report(protocol, n_senders, horizon, wall_ms, &report)
}

fn cell_from_report(
    protocol: Protocol,
    n_senders: usize,
    horizon: f64,
    wall_ms: f64,
    report: &SimReport,
) -> IncastCell {
    let mut fcts: Vec<f64> = report.fcts.iter().map(|r| r.fct_s).collect();
    fcts.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if fcts.is_empty() {
            f64::NAN
        } else {
            fcts[((fcts.len() - 1) as f64 * p).round() as usize] * 1e3
        }
    };
    let makespan = report
        .fcts
        .iter()
        .map(|r| r.start_s + r.fct_s)
        .fold(0.0, f64::max);
    let delivered: u64 = report.delivered_bytes.iter().sum();
    IncastCell {
        protocol: protocol.label().to_string(),
        n_senders,
        completed: report.fcts.len(),
        median_fct_ms: pct(0.5),
        p99_fct_ms: pct(0.99),
        goodput_gbps: if makespan > 0.0 {
            delivered as f64 * 8.0 / makespan / 1e9
        } else {
            0.0
        },
        events_processed: report.events_processed,
        wall_ms,
        horizon_s: horizon,
        digest: report_digest(report),
    }
}

/// Run the full sweep. Cells run in parallel via the deterministic
/// `par_map` fan-out, so output order (and every digest) is independent of
/// `SIM_THREADS`.
pub fn run(cfg: &ExtIncastConfig) -> ExtIncastResult {
    let mut jobs = Vec::new();
    for &proto in &cfg.protocols {
        for &n in &cfg.sender_counts {
            jobs.push((proto, n));
        }
    }
    let cells = desim::par::par_map(jobs, |(proto, n)| run_cell(cfg, proto, n));
    ExtIncastResult {
        cells,
        failed: Vec::new(),
    }
}

/// Supervision and fault-injection options for [`run_supervised`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SuperviseOpts {
    /// Per-cell wall-clock deadline (seconds); `None` disables the watchdog.
    pub deadline_s: Option<f64>,
    /// Testing hook: panic inside the cell at this job index.
    pub inject_panic: Option<usize>,
    /// Testing hook: hang forever inside the cell at this job index.
    pub inject_hang: Option<usize>,
}

/// The content-addressed spec of one sweep cell — everything that affects
/// the cell's bytes, and nothing that doesn't (supervision knobs and
/// injection hooks deliberately excluded).
#[derive(Debug, Clone)]
struct CellSpec {
    protocol: String,
    n_senders: usize,
    k: usize,
    bytes_per_sender: u64,
    bandwidth_bps: f64,
    stagger_s: f64,
    seed: u64,
}

/// Store experiment id for per-cell records.
const CELL_EXPERIMENT: &str = "ext_incast/cell";

fn cell_spec_json(cfg: &ExtIncastConfig, protocol: Protocol, n_senders: usize) -> String {
    use crate::json::ToJson as _;
    CellSpec {
        protocol: protocol.label().to_string(),
        n_senders,
        k: cfg.k,
        bytes_per_sender: cfg.bytes_per_sender,
        bandwidth_bps: cfg.bandwidth_bps,
        stagger_s: cfg.stagger_s,
        seed: cfg.seed,
    }
    .to_json()
    .render_pretty()
}

/// Parse a stored cell record back. `None` means the record does not match
/// the current schema (treated as a miss and recomputed, never an error).
fn cell_from_stored_json(text: &str) -> Option<IncastCell> {
    let v = store::json::parse(text).ok()?;
    Some(IncastCell {
        protocol: v.get("protocol")?.as_str()?.to_string(),
        n_senders: usize::try_from(v.get("n_senders")?.as_u64()?).ok()?,
        completed: usize::try_from(v.get("completed")?.as_u64()?).ok()?,
        median_fct_ms: v.get("median_fct_ms")?.as_f64()?,
        p99_fct_ms: v.get("p99_fct_ms")?.as_f64()?,
        goodput_gbps: v.get("goodput_gbps")?.as_f64()?,
        events_processed: v.get("events_processed")?.as_u64()?,
        wall_ms: v.get("wall_ms")?.as_f64()?,
        horizon_s: v.get("horizon_s")?.as_f64()?,
        digest: v.get("digest")?.as_str()?.to_string(),
    })
}

/// Run the sweep under supervision, optionally backed by a content-addressed
/// result store.
///
/// Per cell: compute the spec key from `(experiment id, canonical config)`;
/// a valid stored record is served as a hit (bit-identical to a fresh
/// compute — the simulation is deterministic and floats round-trip through
/// the JSON layer exactly); misses run through
/// [`desim::supervise::par_map_supervised`], so a panicking or hung cell
/// lands in [`ExtIncastResult::failed`] while its batchmates complete and
/// are persisted. Failed cells leave a quarantine note (the structured
/// `SimError` JSON) next to the store rather than a result record, so a
/// rerun retries them.
pub fn run_supervised(
    cfg: &ExtIncastConfig,
    opts: &SuperviseOpts,
    store: Option<&store::Store>,
) -> ExtIncastResult {
    use faults::SimError;

    let mut jobs = Vec::new();
    for &proto in &cfg.protocols {
        for &n in &cfg.sender_counts {
            jobs.push((proto, n));
        }
    }

    // Phase 1: serve hits. A record that unframes but no longer matches the
    // cell schema (or names a different cell) is treated as a miss.
    let mut served: Vec<Option<IncastCell>> = vec![None; jobs.len()];
    let mut keys: Vec<Option<store::SpecKey>> = vec![None; jobs.len()];
    if let Some(st) = store {
        for (i, &(proto, n)) in jobs.iter().enumerate() {
            let spec = cell_spec_json(cfg, proto, n);
            let Ok(key) = store::spec_key(CELL_EXPERIMENT, &spec) else {
                continue;
            };
            keys[i] = Some(key);
            let cell = st
                .get(&key)
                .and_then(|bytes| String::from_utf8(bytes).ok())
                .and_then(|text| cell_from_stored_json(&text))
                .filter(|c| c.protocol == proto.label() && c.n_senders == n);
            served[i] = cell;
        }
    }

    // Phase 2: run the misses under supervision. Jobs carry their original
    // sweep index so injection hooks and error records name sweep cells,
    // not positions within the miss subset.
    let misses: Vec<(usize, Protocol, usize)> = jobs
        .iter()
        .enumerate()
        .filter(|(i, _)| served[*i].is_none())
        .map(|(i, &(proto, n))| (i, proto, n))
        .collect();
    let policy = desim::supervise::SupervisePolicy {
        deadline_s: opts.deadline_s,
        max_attempts: 1,
    };
    let run_cfg = cfg.clone();
    let run_opts = *opts;
    let outcomes = desim::supervise::par_map_supervised(
        misses.clone(),
        policy,
        // Simulation failures are deterministic: retrying an identical
        // job yields an identical failure, so nothing is retryable here.
        |_: &SimError| false,
        move |(sweep_idx, proto, n)| -> Result<IncastCell, SimError> {
            if run_opts.inject_panic == Some(sweep_idx) {
                panic!("injected panic in cell {sweep_idx}");
            }
            if run_opts.inject_hang == Some(sweep_idx) {
                // A genuine hang for the watchdog to catch (sleep keeps the
                // spin from burning a core while it waits to be abandoned).
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
            Ok(run_cell(&run_cfg, proto, n))
        },
    );

    // Phase 3: merge, persist, and split successes from failures in job
    // order.
    let mut miss_results: Vec<Option<Result<IncastCell, SimError>>> =
        outcomes.results.into_iter().map(Some).collect();
    let mut cells = Vec::new();
    let mut failed = Vec::new();
    for (slot, (sweep_idx, proto, n)) in misses.iter().enumerate() {
        let Some(outcome) = miss_results.get_mut(slot).and_then(Option::take) else {
            continue;
        };
        match outcome {
            Ok(cell) => {
                if let (Some(st), Some(key)) = (store, keys[*sweep_idx]) {
                    use crate::json::ToJson as _;
                    let _ = st.put(&key, cell.to_json().render_pretty().as_bytes());
                }
                served[*sweep_idx] = Some(cell);
            }
            Err(e) => {
                if let (Some(st), Some(key)) = (store, keys[*sweep_idx]) {
                    let _ = st.put_quarantine_note(&key, &e.to_json());
                }
                failed.push(FailedCell {
                    protocol: proto.label().to_string(),
                    n_senders: *n,
                    kind: e.kind().to_string(),
                    error: e.to_string(),
                });
            }
        }
    }
    for cell in served.into_iter().flatten() {
        cells.push(cell);
    }
    ExtIncastResult { cells, failed }
}

/// The zero-fault bit-identity probe: run one cell with `faults: None` and
/// once more with an installed but *empty* `FaultSchedule`, returning both
/// digests. They must be equal — an idle fault plane may not perturb the
/// simulation in any observable way.
pub fn run_zero_fault_identity(cfg: &ExtIncastConfig, n_senders: usize) -> (String, String) {
    let incast = IncastConfig {
        n_senders,
        bytes_per_sender: cfg.bytes_per_sender,
        start_s: 0.0,
        stagger_s: cfg.stagger_s,
        seed: cfg.seed,
    };
    let horizon = horizon_s(cfg, n_senders);
    let run_with = |faults: Option<FaultSchedule>| -> String {
        let mut ecfg = engine_config(cfg);
        ecfg.faults = faults;
        let (mut eng, _b) = fat_tree_incast(
            Protocol::Dcqcn,
            cfg.k,
            &incast,
            cfg.bandwidth_bps,
            SimDuration::from_micros(1),
            ecfg,
        );
        report_digest(&eng.run(SimTime::from_secs_f64(horizon)))
    };
    (run_with(None), run_with(Some(FaultSchedule::new(cfg.seed))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExtIncastConfig {
        ExtIncastConfig {
            k: 4,
            protocols: vec![Protocol::Dcqcn],
            sender_counts: vec![32],
            bytes_per_sender: 16_000,
            ..Default::default()
        }
    }

    #[test]
    fn all_flows_complete_and_digest_is_stable() {
        let cfg = small();
        let a = run_cell(&cfg, Protocol::Dcqcn, 32);
        assert_eq!(a.completed, 32, "every response must finish");
        assert!(a.median_fct_ms > 0.0 && a.p99_fct_ms >= a.median_fct_ms);
        assert!(a.events_processed > 1_000, "scale probe must count events");
        let b = run_cell(&cfg, Protocol::Dcqcn, 32);
        assert_eq!(a.digest, b.digest, "same cell must digest identically");
    }

    #[test]
    fn fan_in_contention_grows_with_n() {
        let cfg = small();
        let lo = run_cell(&cfg, Protocol::Dcqcn, 8);
        let hi = run_cell(&cfg, Protocol::Dcqcn, 48);
        assert!(
            hi.p99_fct_ms > lo.p99_fct_ms,
            "48:1 p99 {:.3} ms must exceed 8:1 {:.3} ms",
            hi.p99_fct_ms,
            lo.p99_fct_ms
        );
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical() {
        let (none, empty) = run_zero_fault_identity(&small(), 24);
        assert_eq!(none, empty, "idle fault plane must be invisible");
    }

    fn tmp_store(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ext_incast_store_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn supervised_without_store_matches_plain_run() {
        use crate::json::ToJson as _;
        let mut cfg = small();
        cfg.sender_counts = vec![8, 16];
        let plain = run(&cfg);
        let sup = run_supervised(&cfg, &SuperviseOpts::default(), None);
        assert!(sup.failed.is_empty());
        // wall_ms differs between runs by nature; compare per-cell digests
        // and the layout instead of whole-result bytes.
        assert_eq!(plain.cells.len(), sup.cells.len());
        for (a, b) in plain.cells.iter().zip(&sup.cells) {
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.n_senders, b.n_senders);
        }
        assert!(plain.to_json().render_pretty().contains("\"failed\": []"));
    }

    #[test]
    fn store_serves_cells_bit_identically_on_rerun() {
        use crate::json::ToJson as _;
        let root = tmp_store("hits");
        let mut cfg = small();
        cfg.sender_counts = vec![8, 16];
        let st = store::Store::open(&root).expect("open store");
        store::reset_counters();
        let first = run_supervised(&cfg, &SuperviseOpts::default(), Some(&st));
        assert_eq!(store::counters().hits, 0);
        assert_eq!(first.cells.len(), 2);
        let again = run_supervised(&cfg, &SuperviseOpts::default(), Some(&st));
        assert_eq!(store::counters().hits, 2, "rerun must be all hits");
        assert_eq!(
            first.to_json().render_pretty(),
            again.to_json().render_pretty(),
            "served cells must be byte-identical to computed ones"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_panic_isolates_to_its_cell() {
        let mut cfg = small();
        cfg.sender_counts = vec![8, 12, 16];
        let opts = SuperviseOpts {
            inject_panic: Some(1),
            ..Default::default()
        };
        let res = run_supervised(&cfg, &opts, None);
        assert_eq!(res.cells.len(), 2, "batchmates must complete");
        assert_eq!(res.failed.len(), 1);
        assert_eq!(res.failed[0].kind, "job_panicked");
        assert_eq!(res.failed[0].n_senders, 12);
        assert!(res.failed[0].error.contains("injected panic"));
        let survivors: Vec<usize> = res.cells.iter().map(|c| c.n_senders).collect();
        assert_eq!(
            survivors,
            vec![8, 16],
            "job order preserved around the hole"
        );
    }

    #[test]
    fn injected_hang_times_out_and_leaves_a_quarantine_note() {
        let root = tmp_store("hang");
        let mut cfg = small();
        cfg.sender_counts = vec![8, 16];
        let opts = SuperviseOpts {
            deadline_s: Some(0.25),
            inject_hang: Some(0),
            ..Default::default()
        };
        let st = store::Store::open(&root).expect("open store");
        let res = run_supervised(&cfg, &opts, Some(&st));
        assert_eq!(res.failed.len(), 1);
        assert_eq!(res.failed[0].kind, "timeout");
        assert_eq!(res.cells.len(), 1);
        assert_eq!(res.cells[0].n_senders, 16);
        let notes = std::fs::read_dir(root.join("quarantine"))
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(notes, 1, "timeout must leave a structured quarantine note");
        // The quarantined cell is retried on the next run; without the hang
        // it completes and fills the store.
        let res2 = run_supervised(&cfg, &SuperviseOpts::default(), Some(&st));
        assert!(res2.failed.is_empty());
        assert_eq!(res2.cells.len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stored_cell_json_round_trips_exactly() {
        use crate::json::ToJson as _;
        let cfg = small();
        let cell = run_cell(&cfg, Protocol::Dcqcn, 8);
        let text = cell.to_json().render_pretty();
        let back = cell_from_stored_json(&text).expect("schema round-trip");
        assert_eq!(back.to_json().render_pretty(), text);
        // Schema drift reads as a miss, not an error.
        assert!(cell_from_stored_json("{\"protocol\": \"dcqcn\"}").is_none());
        assert!(cell_from_stored_json("not json").is_none());
    }

    #[test]
    fn sweep_covers_all_cells_in_order() {
        let mut cfg = small();
        cfg.sender_counts = vec![8, 16];
        let res = run(&cfg);
        assert_eq!(res.cells.len(), 2);
        assert_eq!(
            (res.cells[0].n_senders, res.cells[1].n_senders),
            (8, 16),
            "cells keep job order regardless of SIM_THREADS"
        );
    }
}

crate::impl_to_json!(ExtIncastConfig {
    k,
    protocols,
    sender_counts,
    bytes_per_sender,
    bandwidth_bps,
    stagger_s,
    seed
});
crate::impl_to_json!(IncastCell {
    protocol,
    n_senders,
    completed,
    median_fct_ms,
    p99_fct_ms,
    goodput_gbps,
    events_processed,
    wall_ms,
    horizon_s,
    digest
});
crate::impl_to_json!(FailedCell {
    protocol,
    n_senders,
    kind,
    error
});
crate::impl_to_json!(CellSpec {
    protocol,
    n_senders,
    k,
    bytes_per_sender,
    bandwidth_bps,
    stagger_s,
    seed
});
crate::impl_to_json!(ExtIncastResult { cells, failed });
