//! Figure 12: Patched TIMELY in the time domain.
//!
//! (a) two flows with 7/3 Gbps starts converge to fair share, stable and
//! without oscillation (contrast Figure 9c); (b) moderate flow counts stay
//! stable; (c) beyond the Figure 11 limit the system oscillates.

use crate::experiments::Series;
use models::patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig12Config {
    /// Duration (seconds) for panel (a).
    pub duration_a_s: f64,
    /// Duration for the stability panels.
    pub duration_bc_s: f64,
    /// Stable flow count for panel (b).
    pub n_stable: usize,
    /// Unstable flow count for panel (c).
    pub n_unstable: usize,
}

impl Default for Fig12Config {
    fn default() -> Self {
        Fig12Config {
            duration_a_s: 0.4,
            duration_bc_s: 0.5,
            n_stable: 16,
            n_unstable: 64,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Panel (a): rates of the two flows (Gbps).
    pub panel_a_rates: Vec<Series>,
    /// Panel (a): final share of flow 0.
    pub panel_a_share: f64,
    /// Panel (b): queue (KB) at `n_stable` flows.
    pub panel_b_queue_kb: Series,
    /// Panel (b): normalized oscillation.
    pub panel_b_oscillation: f64,
    /// Panel (c): queue (KB) at `n_unstable` flows.
    pub panel_c_queue_kb: Series,
    /// Panel (c): normalized oscillation.
    pub panel_c_oscillation: f64,
}

/// Run all panels.
pub fn run(cfg: &Fig12Config) -> Fig12Result {
    let params = PatchedTimelyParams::default_10g();
    let c = params.base.capacity_pps();

    // (a) unequal start.
    let mut ma = PatchedTimelyFluid::new(params.clone(), 2);
    let tra = ma.simulate_with_rates(&[0.7 * c, 0.3 * c], cfg.duration_a_s);
    let from_a = cfg.duration_a_s * 0.8;
    let r0 = tra.mean_from(ma.rate_index(0), from_a);
    let r1 = tra.mean_from(ma.rate_index(1), from_a);
    let panel_a_rates = vec![ma.rates_gbps(&tra, 0), ma.rates_gbps(&tra, 1)];

    // (b)/(c) stability contrast: the two integrations are independent, so
    // run them as parallel jobs with ordered results.
    let dur = cfg.duration_bc_s;
    let mut osc = desim::par::par_map(vec![cfg.n_stable, cfg.n_unstable], |n| {
        let mut m = PatchedTimelyFluid::new(params.clone(), n);
        let tr = m.simulate(dur);
        let q_star = params.q_star_pkts(n);
        let osc = tr.peak_to_peak_from(0, dur * 0.6) / q_star.max(1.0);
        (m.queue_kb(&tr), osc)
    });
    let (panel_c_queue_kb, panel_c_oscillation) = osc.pop().unwrap_or_default();
    let (panel_b_queue_kb, panel_b_oscillation) = osc.pop().unwrap_or_default();

    Fig12Result {
        panel_a_rates,
        panel_a_share: r0 / (r0 + r1),
        panel_b_queue_kb,
        panel_b_oscillation,
        panel_c_queue_kb,
        panel_c_oscillation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_fair_and_stability_contrast() {
        let res = run(&Fig12Config {
            duration_a_s: 0.3,
            duration_bc_s: 0.4,
            ..Default::default()
        });
        // (a) fair convergence (contrast Fig 9c where 0.7 start persists).
        assert!(
            (res.panel_a_share - 0.5).abs() < 0.05,
            "share {:.3}",
            res.panel_a_share
        );
        // (b) calm, (c) oscillating.
        assert!(
            res.panel_b_oscillation < 0.4,
            "N=16 osc {:.3}",
            res.panel_b_oscillation
        );
        assert!(
            res.panel_c_oscillation > 2.0 * res.panel_b_oscillation,
            "N=64 must oscillate more: {:.3} vs {:.3}",
            res.panel_c_oscillation,
            res.panel_b_oscillation
        );
    }
}

crate::impl_to_json!(Fig12Config {
    duration_a_s,
    duration_bc_s,
    n_stable,
    n_unstable
});
crate::impl_to_json!(Fig12Result {
    panel_a_rates,
    panel_a_share,
    panel_b_queue_kb,
    panel_b_oscillation,
    panel_c_queue_kb,
    panel_c_oscillation
});
