//! Figure 8: TIMELY fluid model vs packet-level simulation.
//!
//! "The starting rate for each flow is set to be 1/N of the link bandwidth
//! […] we use per-packet pacing. We see the fluid model and the simulator
//! are in good agreement." Parameters are footnote 4's recommended values
//! on 10 Gbps.

use crate::experiments::Series;
use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use models::timely::{TimelyFluid, TimelyParams};
use netsim::EngineConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Flow counts.
    pub flow_counts: Vec<usize>,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            flow_counts: vec![2, 10],
            duration_s: 0.1,
        }
    }
}

/// One panel.
#[derive(Debug, Clone)]
pub struct Fig8Panel {
    /// Number of flows.
    pub n_flows: usize,
    /// Fluid queue (KB) over time.
    pub fluid_queue_kb: Series,
    /// Packet-sim queue (KB) over time.
    pub sim_queue_kb: Series,
    /// Fluid flow-0 rate (Gbps).
    pub fluid_rate_gbps: Series,
    /// Sim flow-0 delivered rate (Gbps).
    pub sim_rate_gbps: Series,
    /// Tail mean queues (fluid, sim) in KB.
    pub tail_queues_kb: (f64, f64),
    /// Tail aggregate throughputs (fluid, sim) in Gbps.
    pub tail_agg_gbps: (f64, f64),
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// One panel per flow count.
    pub panels: Vec<Fig8Panel>,
}

fn tail_mean(series: &[(f64, f64)], from: f64) -> f64 {
    let pts: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= from)
        .map(|&(_, v)| v)
        .collect();
    if pts.is_empty() {
        f64::NAN
    } else {
        pts.iter().sum::<f64>() / pts.len() as f64
    }
}

/// Run the comparison.
pub fn run(cfg: &Fig8Config) -> Fig8Result {
    let mut panels = Vec::new();
    for &n in &cfg.flow_counts {
        // Fluid.
        let params = TimelyParams::default_10g();
        let mut fluid = TimelyFluid::new(params.clone(), n);
        let trace = fluid.simulate(cfg.duration_s);
        let fluid_queue_kb = fluid.queue_kb(&trace);
        let fluid_rate_gbps = fluid.rates_gbps(&trace, 0);
        let fluid_agg: f64 = (0..n)
            .map(|i| {
                models::units::pps_to_gbps(
                    trace.mean_from(fluid.rate_index(i), cfg.duration_s * 0.7),
                    params.packet_bytes,
                )
            })
            .sum();

        // Packet sim, per-packet pacing as in the paper's validation.
        let (mut eng, bottleneck) = single_switch_longlived(
            Protocol::TimelyPerPacket,
            n,
            10e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
        let sim_queue_kb: Series = report.queue_traces[&bottleneck]
            .points()
            .iter()
            .map(|&(t, b)| (t, b / 1000.0))
            .collect();
        let sim_rate_gbps: Series = report.rate_traces[0]
            .iter()
            .map(|&(t, bps)| (t, bps / 1e9))
            .collect();
        let from = cfg.duration_s * 0.7;
        let sim_agg =
            report.delivered_bytes.iter().sum::<u64>() as f64 * 8.0 / cfg.duration_s / 1e9;

        panels.push(Fig8Panel {
            n_flows: n,
            tail_queues_kb: (
                tail_mean(&fluid_queue_kb, from),
                tail_mean(&sim_queue_kb, from),
            ),
            tail_agg_gbps: (fluid_agg, sim_agg),
            fluid_queue_kb,
            sim_queue_kb,
            fluid_rate_gbps,
            sim_rate_gbps,
        });
    }
    Fig8Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_and_sim_agree_qualitatively() {
        let res = run(&Fig8Config {
            flow_counts: vec![2],
            duration_s: 0.08,
        });
        let p = &res.panels[0];
        // Both keep the link near capacity.
        assert!(
            p.tail_agg_gbps.0 > 8.0,
            "fluid aggregate {:.2}",
            p.tail_agg_gbps.0
        );
        assert!(
            p.tail_agg_gbps.1 > 7.0,
            "sim aggregate {:.2}",
            p.tail_agg_gbps.1
        );
        // Both hold a nonzero standing queue (TIMELY's T_low keeps one).
        assert!(
            p.tail_queues_kb.0 > 5.0,
            "fluid queue {:.1}",
            p.tail_queues_kb.0
        );
        assert!(
            p.tail_queues_kb.1 > 5.0,
            "sim queue {:.1}",
            p.tail_queues_kb.1
        );
    }
}

crate::impl_to_json!(Fig8Config {
    flow_counts,
    duration_s
});
crate::impl_to_json!(Fig8Panel {
    n_flows,
    fluid_queue_kb,
    sim_queue_kb,
    fluid_rate_gbps,
    sim_rate_gbps,
    tail_queues_kb,
    tail_agg_gbps
});
crate::impl_to_json!(Fig8Result { panels });
