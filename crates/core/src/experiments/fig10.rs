//! Figure 10: impact of per-burst pacing on TIMELY (packet-level).
//!
//! (a) with 16 KB chunks, the burst "noise" de-correlates the two flows
//! and TIMELY appears to converge; (b) with 64 KB chunks, the initial
//! near-simultaneous bursts ("incast") produce a huge RTT sample, both
//! flows slash their rates (Algorithm 1 line 8), and the slow δ = 10 Mbps
//! additive recovery takes a long time to climb back.

use crate::experiments::Series;
use desim::{SimDuration, SimTime};
use netsim::{Engine, EngineConfig, FlowSpec, Pacing, Topology};
use protocols::{TimelyCc, TimelyCcParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Chunk sizes to contrast (bytes).
    pub seg_sizes: Vec<u32>,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            seg_sizes: vec![16_000, 64_000],
            duration_s: 0.3,
        }
    }
}

/// One chunk-size panel.
#[derive(Debug, Clone)]
pub struct Fig10Panel {
    /// Segment size in bytes.
    pub seg_bytes: u32,
    /// Per-flow delivered rates (Gbps).
    pub rates_gbps: Vec<Series>,
    /// Bottleneck queue (KB).
    pub queue_kb: Series,
    /// Aggregate tail throughput (Gbps).
    pub tail_agg_gbps: f64,
    /// Aggregate throughput over the first 50 ms (Gbps) — exposes the
    /// incast collapse of 64 KB chunks.
    pub early_agg_gbps: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// One panel per segment size.
    pub panels: Vec<Fig10Panel>,
}

/// Run the burst-pacing contrast.
pub fn run(cfg: &Fig10Config) -> Fig10Result {
    let mut panels = Vec::new();
    for &seg in &cfg.seg_sizes {
        let (topo, senders, receiver) =
            Topology::single_switch(2, 10e9, SimDuration::from_micros(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        for &s in &senders {
            let mut p = TimelyCcParams::default();
            p.seg_bytes = seg;
            p.start_rate_divisor = 2.0;
            eng.add_flow(FlowSpec {
                src: s,
                dst: receiver,
                size_bytes: None,
                start: SimTime::ZERO,
                pacing: Pacing::PerChunk { seg_bytes: seg },
                cc: Box::new(TimelyCc::new(p)),
                ack_chunk_bytes: seg,
            });
        }
        let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
        let rates_gbps: Vec<Series> = report
            .rate_traces
            .iter()
            .map(|tr| tr.iter().map(|&(t, bps)| (t, bps / 1e9)).collect())
            .collect();
        let queue_kb: Series = report
            .queue_traces
            .values()
            .max_by_key(|tr| tr.len())
            .map(|tr| tr.points().iter().map(|&(t, b)| (t, b / 1000.0)).collect())
            .unwrap_or_default();

        let window_mean = |from: f64, to: f64| -> f64 {
            let mut total = 0.0;
            for tr in &rates_gbps {
                let pts: Vec<f64> = tr
                    .iter()
                    .filter(|&&(t, _)| t >= from && t < to)
                    .map(|&(_, v)| v)
                    .collect();
                if !pts.is_empty() {
                    total += pts.iter().sum::<f64>() / pts.len() as f64;
                }
            }
            total
        };
        panels.push(Fig10Panel {
            seg_bytes: seg,
            tail_agg_gbps: window_mean(cfg.duration_s * 0.7, cfg.duration_s),
            early_agg_gbps: window_mean(0.0, 0.05),
            rates_gbps,
            queue_kb,
        });
    }
    Fig10Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_pacing_converges_and_64k_ramps_slowly() {
        let res = run(&Fig10Config {
            duration_s: 0.25,
            ..Default::default()
        });
        let p16 = &res.panels[0];
        let p64 = &res.panels[1];
        // 16 KB chunks reach decent utilization.
        assert!(
            p16.tail_agg_gbps > 6.0,
            "16KB tail {:.2} Gbps",
            p16.tail_agg_gbps
        );
        // The 64 KB early window is depressed relative to 16 KB (incast
        // collapse + slow additive recovery).
        assert!(
            p64.early_agg_gbps < p16.early_agg_gbps,
            "64KB early {:.2} vs 16KB early {:.2}",
            p64.early_agg_gbps,
            p16.early_agg_gbps
        );
    }
}

crate::impl_to_json!(Fig10Config {
    seg_sizes,
    duration_s
});
crate::impl_to_json!(Fig10Panel {
    seg_bytes,
    rates_gbps,
    queue_kb,
    tail_agg_gbps,
    early_agg_gbps
});
crate::impl_to_json!(Fig10Result { panels });
