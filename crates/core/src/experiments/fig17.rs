//! Figure 17: DCQCN stability with ECN marking on ingress vs egress, two
//! flows and an 85 µs feedback delay.
//!
//! "To further confirm that ECN marking on egress is important for
//! stability, we run DCQCN with ECN marking on ingress for comparison.
//! Figure 17 shows that marking on ingress leads to queue length
//! fluctuation." Ingress marks sit in the queue behind earlier packets, so
//! the congestion signal inherits the queueing delay — exactly the
//! RTT-signal pathology of §5.2.

use crate::experiments::Series;
use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use netsim::{EngineConfig, MarkingMode};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig17Config {
    /// Flows at the bottleneck (2 in the paper).
    pub n_flows: usize,
    /// One-hop propagation delay (µs) — 21 µs ≈ an 85 µs loop.
    pub hop_delay_us: u64,
    /// Link bandwidth (Gbps). At 10 Gbps the queueing delay that ingress
    /// marking adds to the control loop (q/C) is large relative to the
    /// propagation delay, which is what makes the effect visible.
    pub bandwidth_gbps: f64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig17Config {
    fn default() -> Self {
        Fig17Config {
            n_flows: 2,
            hop_delay_us: 21,
            bandwidth_gbps: 10.0,
            duration_s: 0.1,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig17Result {
    /// Queue (KB) with egress marking.
    pub egress_queue_kb: Series,
    /// Queue (KB) with ingress marking.
    pub ingress_queue_kb: Series,
    /// Tail std-dev of the queue (KB): (egress, ingress).
    pub queue_stddev_kb: (f64, f64),
}

fn run_mode(cfg: &Fig17Config, mode: MarkingMode) -> Series {
    let mut ecfg = EngineConfig::default();
    ecfg.marking = mode;
    let (mut eng, bottleneck) = single_switch_longlived(
        Protocol::Dcqcn,
        cfg.n_flows,
        cfg.bandwidth_gbps * 1e9,
        SimDuration::from_micros(cfg.hop_delay_us),
        ecfg,
    );
    let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
    report.queue_traces[&bottleneck]
        .points()
        .iter()
        .map(|&(t, b)| (t, b / 1000.0))
        .collect()
}

fn tail_stddev(series: &Series, from: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= from)
        .map(|&(_, v)| v)
        .collect();
    if vals.len() < 2 {
        return 0.0;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt()
}

/// Run both marking modes.
pub fn run(cfg: &Fig17Config) -> Fig17Result {
    let egress = run_mode(cfg, MarkingMode::Egress);
    let ingress = run_mode(cfg, MarkingMode::Ingress);
    let from = cfg.duration_s * 0.5;
    let sd = (tail_stddev(&egress, from), tail_stddev(&ingress, from));
    Fig17Result {
        egress_queue_kb: egress,
        ingress_queue_kb: ingress,
        queue_stddev_kb: sd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_marking_fluctuates_more() {
        let res = run(&Fig17Config {
            duration_s: 0.08,
            ..Default::default()
        });
        let (egress_sd, ingress_sd) = res.queue_stddev_kb;
        assert!(
            ingress_sd > egress_sd,
            "ingress marking must fluctuate more: egress σ={egress_sd:.1} KB, ingress σ={ingress_sd:.1} KB"
        );
    }
}

crate::impl_to_json!(Fig17Config {
    n_flows,
    hop_delay_us,
    bandwidth_gbps,
    duration_s
});
crate::impl_to_json!(Fig17Result {
    egress_queue_kb,
    ingress_queue_kb,
    queue_stddev_kb
});
