//! Extension: deterministic fault injection — DCQCN vs patched TIMELY
//! under degradation, plus the fluid-core divergence watchdog.
//!
//! The paper contrasts *what signal* each scheme trusts: DCQCN trusts ECN
//! feedback (CNPs), TIMELY trusts RTT measurements. The fault plane makes
//! that contrast operational — each [`FaultProfile`] attacks one signal
//! path and the degradation matrix shows which protocol's throughput
//! survives which fault:
//!
//! * `cnp-loss` thins DCQCN's feedback while leaving TIMELY (which sends
//!   no CNPs) untouched;
//! * `rtt-jitter` / `delay-spike` corrupt the RTT samples TIMELY trusts
//!   while DCQCN's ECN path is oblivious;
//! * `data-loss` and `pause-storm` hit both equally.
//!
//! Two further sections exercise the robustness plumbing end to end: a
//! Figure-10-style collapse (TIMELY with 64 KB chunks, with and without a
//! delay spike injected into the startup window) and a divergence-watchdog
//! sweep over a delayed-feedback DDE in which the unstable points come
//! back as structured [`SimError`]s — recorded, not panicking — while the
//! stable points complete normally.

use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{par, SimDuration, SimTime};
use faults::SimError;
use fluid::dde::{try_integrate_dde, DdeOptions, DdeSystem};
use fluid::History;
use netsim::{Engine, EngineConfig, FlowSpec, Pacing, Topology};
use protocols::{TimelyCc, TimelyCcParams};
use workload::{fault_schedule, FaultProfile};

/// Configuration.
#[derive(Debug, Clone)]
pub struct ExtFaultsConfig {
    /// Flows at the bottleneck in the degradation matrix.
    pub n_flows: usize,
    /// Link bandwidth (bit/s).
    pub bandwidth_bps: f64,
    /// Degradation-matrix run length (seconds).
    pub matrix_duration_s: f64,
    /// Collapse-panel run length (seconds).
    pub collapse_duration_s: f64,
    /// Fault-schedule seed (the probabilistic faults' RNG sub-streams are
    /// derived from this, never from the engine's marking RNG).
    pub seed: u64,
    /// Delayed-feedback gains (1/s) swept by the watchdog section; the
    /// large positive ones diverge.
    pub watchdog_gains: Vec<f64>,
    /// Watchdog integration horizon (seconds).
    pub watchdog_t1_s: f64,
}

impl Default for ExtFaultsConfig {
    fn default() -> Self {
        ExtFaultsConfig {
            n_flows: 4,
            bandwidth_bps: 10e9,
            matrix_duration_s: 0.05,
            collapse_duration_s: 0.25,
            seed: 7,
            watchdog_gains: vec![-4.0, -1.0, 0.5, 400.0, 4000.0],
            watchdog_t1_s: 1.5,
        }
    }
}

/// One `(protocol, fault profile)` cell of the degradation matrix.
#[derive(Debug, Clone)]
pub struct FaultMatrixCell {
    /// Protocol label.
    pub protocol: String,
    /// Fault-profile label.
    pub profile: String,
    /// Aggregate goodput (Gbps) over the run.
    pub goodput_gbps: f64,
    /// CNPs the receiver generated.
    pub cnps_sent: u64,
    /// Packets the fault plane dropped.
    pub fault_drops: u64,
    /// Forced pauses the fault plane injected.
    pub fault_pauses: u64,
    /// Fault-plane operations executed (0 in the baseline column).
    pub faults_injected: u64,
}

/// One collapse panel: TIMELY with 64 KB chunks, clean or delay-spiked.
#[derive(Debug, Clone)]
pub struct CollapsePanel {
    /// Panel label.
    pub label: String,
    /// Aggregate throughput over the first 50 ms (Gbps) — the window the
    /// injected spike corrupts.
    pub early_agg_gbps: f64,
    /// Aggregate throughput over the final 30 % of the run (Gbps).
    pub tail_agg_gbps: f64,
    /// Fault-plane operations executed.
    pub faults_injected: u64,
}

/// One point of the divergence-watchdog sweep.
#[derive(Debug, Clone)]
pub struct WatchdogPoint {
    /// Delayed-feedback gain (1/s).
    pub gain_per_s: f64,
    /// Whether the integration completed.
    pub ok: bool,
    /// Final `max|x|` for completed points; the structured [`SimError`]
    /// rendering for diverged ones.
    pub detail: String,
}

/// Result.
#[derive(Debug, Clone)]
pub struct ExtFaultsResult {
    /// Degradation matrix, protocol-major, profiles in [`FaultProfile::all`]
    /// order.
    pub cells: Vec<FaultMatrixCell>,
    /// Matrix cells that failed outright (rendered errors). A non-empty
    /// list never aborts the experiment — graceful degradation is the
    /// point — but should be empty in healthy configurations.
    pub failed_cells: Vec<String>,
    /// Collapse panels (clean, then delay-spiked).
    pub collapse: Vec<CollapsePanel>,
    /// Watchdog sweep, one point per configured gain.
    pub watchdog: Vec<WatchdogPoint>,
}

/// Protocols contrasted by the matrix.
fn matrix_protocols() -> [Protocol; 2] {
    [Protocol::Dcqcn, Protocol::PatchedTimely]
}

/// In [`netsim::Topology::single_switch`]`(n)` the receiver is host `n`:
/// link `2n+1` (switch → receiver) carries every flow's data — the
/// bottleneck — and link `2n` (receiver → switch) is the first hop of the
/// CNP feedback path.
fn matrix_links(n_flows: usize) -> (usize, usize) {
    (2 * n_flows + 1, 2 * n_flows)
}

/// Run one matrix cell. Errors are rendered into the `failed_cells` list by
/// the caller rather than aborting the sweep.
fn run_cell(
    cfg: &ExtFaultsConfig,
    protocol: Protocol,
    profile: FaultProfile,
) -> Result<FaultMatrixCell, SimError> {
    let (data_link, ctrl_link) = matrix_links(cfg.n_flows);
    let mut ecfg = EngineConfig::default();
    ecfg.faults = Some(fault_schedule(
        profile,
        cfg.seed,
        data_link,
        ctrl_link,
        cfg.matrix_duration_s,
    ));
    let (mut eng, _bottleneck) = single_switch_longlived(
        protocol,
        cfg.n_flows,
        cfg.bandwidth_bps,
        SimDuration::from_micros(4),
        ecfg,
    );
    let report = eng.try_run(SimTime::from_secs_f64(cfg.matrix_duration_s))?;
    let goodput_gbps =
        report.delivered_bytes.iter().sum::<u64>() as f64 * 8.0 / cfg.matrix_duration_s / 1e9;
    Ok(FaultMatrixCell {
        protocol: protocol.label().to_string(),
        profile: profile.label().to_string(),
        goodput_gbps,
        cnps_sent: report.cnps_sent,
        fault_drops: report.fault_drops,
        fault_pauses: report.fault_pauses,
        faults_injected: report.faults_injected,
    })
}

/// Run the full degradation matrix in parallel (cells are independent; the
/// output order is protocol-major regardless of `SIM_THREADS`). Failed
/// cells are returned as rendered errors alongside the completed ones.
pub fn run_matrix(cfg: &ExtFaultsConfig) -> (Vec<FaultMatrixCell>, Vec<String>) {
    let mut jobs = Vec::new();
    for protocol in matrix_protocols() {
        for profile in FaultProfile::all() {
            jobs.push((protocol, profile));
        }
    }
    let results = par::par_map_fallible(jobs, |(protocol, profile)| {
        run_cell(cfg, protocol, profile)
            .map_err(|e| format!("{}/{}: {e}", protocol.label(), profile.label()))
    });
    let (cells, failed) = par::partition_results(results);
    (cells, failed.into_iter().map(|(_, e)| e).collect())
}

/// One collapse panel: two TIMELY flows pacing 64 KB chunks (the Figure 10
/// incast configuration), optionally with a delay spike injected into the
/// startup window so every early RTT sample is inflated.
fn run_collapse_panel(cfg: &ExtFaultsConfig, spiked: bool) -> CollapsePanel {
    const SEG_BYTES: u32 = 64_000;
    let (topo, senders, receiver) =
        Topology::single_switch(2, cfg.bandwidth_bps, SimDuration::from_micros(1));
    let mut ecfg = EngineConfig::default();
    if spiked {
        // 200 µs of extra one-way delay on the bottleneck for the first
        // 20 ms: TIMELY reads the inflated RTTs as severe congestion and
        // both flows slash their rates (Algorithm 1 line 8), deepening the
        // Figure 10(b) collapse; recovery is the slow additive climb.
        let (data_link, _ctrl) = matrix_links(2);
        ecfg.faults =
            Some(faults::FaultSchedule::new(cfg.seed).delay_spike(0.0, data_link, 200e-6, 0.02));
    }
    let mut eng = Engine::new(topo, ecfg);
    for &s in &senders {
        let mut p = TimelyCcParams::default();
        p.seg_bytes = SEG_BYTES;
        p.start_rate_divisor = 2.0;
        eng.add_flow(FlowSpec {
            src: s,
            dst: receiver,
            size_bytes: None,
            start: SimTime::ZERO,
            pacing: Pacing::PerChunk {
                seg_bytes: SEG_BYTES,
            },
            cc: Box::new(TimelyCc::new(p)),
            ack_chunk_bytes: SEG_BYTES,
        });
    }
    let report = eng.run(SimTime::from_secs_f64(cfg.collapse_duration_s));
    let window_mean = |from: f64, to: f64| -> f64 {
        let mut total = 0.0;
        for tr in &report.rate_traces {
            let pts: Vec<f64> = tr
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .map(|&(_, bps)| bps / 1e9)
                .collect();
            if !pts.is_empty() {
                total += pts.iter().sum::<f64>() / pts.len() as f64;
            }
        }
        total
    };
    CollapsePanel {
        label: if spiked {
            "64KB chunks + 200us spike"
        } else {
            "64KB chunks clean"
        }
        .to_string(),
        early_agg_gbps: window_mean(0.0, 0.05),
        tail_agg_gbps: window_mean(cfg.collapse_duration_s * 0.7, cfg.collapse_duration_s),
        faults_injected: report.faults_injected,
    }
}

/// Run both collapse panels (clean, then spiked).
pub fn run_collapse(cfg: &ExtFaultsConfig) -> Vec<CollapsePanel> {
    vec![
        run_collapse_panel(cfg, false),
        run_collapse_panel(cfg, true),
    ]
}

/// Delay the watchdog-sweep feedback by 100 ms.
const WATCHDOG_TAU_S: f64 = 0.1;

/// `x'(t) = g · x(t − τ)`: the textbook delayed linear feedback. Small
/// negative gains are stable (`|g|·τ < π/2`); large positive ones grow
/// exponentially and trip the integrator's divergence watchdog.
struct DelayedFeedback {
    gain_per_s: f64,
}

impl DdeSystem for DelayedFeedback {
    fn dim(&self) -> usize {
        1
    }
    fn rhs(&mut self, t: f64, _x: &[f64], hist: &History, dxdt: &mut [f64]) {
        dxdt[0] = self.gain_per_s * hist.eval(t - WATCHDOG_TAU_S, 0);
    }
    fn min_delay(&self) -> f64 {
        WATCHDOG_TAU_S
    }
}

/// Sweep the delayed-feedback gain across stable and divergent values.
/// Every point runs to a verdict — a divergent integration comes back as a
/// structured [`SimError`] recorded in its [`WatchdogPoint`], and the
/// remaining points complete regardless (the acceptance contract of the
/// fault plane's fluid side).
pub fn run_watchdog_sweep(gains: &[f64], t1_s: f64) -> Vec<WatchdogPoint> {
    let opts = DdeOptions {
        step: 1e-3,
        record_every: 50,
        history_horizon_s: 2.0 * WATCHDOG_TAU_S,
    };
    let results = par::par_map_fallible(gains.to_vec(), |gain_per_s| {
        let mut sys = DelayedFeedback { gain_per_s };
        try_integrate_dde(&mut sys, &[1.0], 0.0, t1_s, &opts).map(|tr| {
            tr.last_state()
                .map(|x| x.iter().fold(0.0f64, |m, v| m.max(v.abs())))
                .unwrap_or(0.0)
        })
    });
    gains
        .iter()
        .zip(results)
        .map(|(&gain_per_s, r)| match r {
            Ok(norm) => WatchdogPoint {
                gain_per_s,
                ok: true,
                detail: format!("final max|x| = {norm:.3e}"),
            },
            Err(e) => WatchdogPoint {
                gain_per_s,
                ok: false,
                detail: e.to_string(),
            },
        })
        .collect()
}

/// Run all three sections.
pub fn run(cfg: &ExtFaultsConfig) -> ExtFaultsResult {
    let (cells, failed_cells) = run_matrix(cfg);
    ExtFaultsResult {
        cells,
        failed_cells,
        collapse: run_collapse(cfg),
        watchdog: run_watchdog_sweep(&cfg.watchdog_gains, cfg.watchdog_t1_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExtFaultsConfig {
        ExtFaultsConfig {
            matrix_duration_s: 0.02,
            ..Default::default()
        }
    }

    fn cell<'a>(cells: &'a [FaultMatrixCell], proto: &str, profile: &str) -> &'a FaultMatrixCell {
        cells
            .iter()
            .find(|c| c.protocol == proto && c.profile == profile)
            .unwrap_or_else(|| panic!("missing cell {proto}/{profile}"))
    }

    #[test]
    fn degradation_matrix_covers_all_cells_without_failures() {
        let cfg = quick();
        let (cells, failed) = run_matrix(&cfg);
        for c in &cells {
            eprintln!(
                "{:<14} {:<12} goodput={:6.2} cnps={:5} drops={:4} pauses={:3} injected={:3}",
                c.protocol,
                c.profile,
                c.goodput_gbps,
                c.cnps_sent,
                c.fault_drops,
                c.fault_pauses,
                c.faults_injected
            );
        }
        assert!(failed.is_empty(), "no cell may fail: {failed:?}");
        assert_eq!(cells.len(), 2 * FaultProfile::all().len());
        for c in &cells {
            assert!(
                c.goodput_gbps > 0.5,
                "{}/{} goodput {:.2} Gbps",
                c.protocol,
                c.profile,
                c.goodput_gbps
            );
        }
        // Baseline column: the fault plane never engaged.
        for proto in ["DCQCN", "PatchedTIMELY"] {
            let b = cell(&cells, proto, "baseline");
            assert_eq!(b.faults_injected, 0, "{proto} baseline injected faults");
            assert_eq!(b.fault_drops, 0);
        }
        // Fault columns really bit.
        for proto in ["DCQCN", "PatchedTIMELY"] {
            assert!(cell(&cells, proto, "data-loss").fault_drops > 0);
            assert!(cell(&cells, proto, "cnp-loss").fault_drops > 0);
            assert!(cell(&cells, proto, "pause-storm").fault_pauses > 0);
        }
        // The signal-path contrast. TIMELY ignores CNPs (the receiver
        // still emits them on marked arrivals), so losing half of them
        // leaves its goodput untouched...
        let t_base = cell(&cells, "PatchedTIMELY", "baseline").goodput_gbps;
        let t_cnp = cell(&cells, "PatchedTIMELY", "cnp-loss").goodput_gbps;
        assert!(
            (t_cnp - t_base).abs() / t_base < 0.02,
            "delay-based scheme must shrug off CNP loss: {t_cnp:.2} vs {t_base:.2}"
        );
        // ...while a delay fault corrupts the one signal it trusts: a
        // constant 150 µs detour reads as persistent congestion.
        let t_spike = cell(&cells, "PatchedTIMELY", "delay-spike").goodput_gbps;
        assert!(
            t_spike < t_base * 0.85,
            "delay spike must depress TIMELY: {t_spike:.2} vs {t_base:.2}"
        );
        // Forced pause storms gate the wire itself — both protocols lose.
        for proto in ["DCQCN", "PatchedTIMELY"] {
            let base = cell(&cells, proto, "baseline").goodput_gbps;
            let storm = cell(&cells, proto, "pause-storm").goodput_gbps;
            assert!(
                storm < base * 0.9,
                "{proto} pause-storm {storm:.2} vs baseline {base:.2}"
            );
        }
    }

    #[test]
    fn delay_spike_depresses_timely_startup() {
        let cfg = ExtFaultsConfig {
            collapse_duration_s: 0.2,
            ..Default::default()
        };
        let panels = run_collapse(&cfg);
        let (clean, spiked) = (&panels[0], &panels[1]);
        assert_eq!(clean.faults_injected, 0);
        assert!(spiked.faults_injected > 0, "spike window must engage");
        // Inflated startup RTTs read as severe congestion: the early
        // window collapses below the already-bursty clean 64 KB run.
        assert!(
            spiked.early_agg_gbps < clean.early_agg_gbps,
            "spiked early {:.2} vs clean early {:.2}",
            spiked.early_agg_gbps,
            clean.early_agg_gbps
        );
    }

    #[test]
    fn watchdog_sweep_records_divergence_and_finishes_remaining_points() {
        let points = run_watchdog_sweep(&[-1.0, 4000.0, 0.5], 1.5);
        assert_eq!(points.len(), 3, "every point gets a verdict");
        assert!(points[0].ok, "stable gain: {}", points[0].detail);
        assert!(
            points[2].ok,
            "slow growth stays finite: {}",
            points[2].detail
        );
        assert!(!points[1].ok, "gain 4000/s must diverge");
        assert!(
            points[1].detail.contains("diverg"),
            "structured divergence error, got: {}",
            points[1].detail
        );
    }
}

crate::impl_to_json!(ExtFaultsConfig {
    n_flows,
    bandwidth_bps,
    matrix_duration_s,
    collapse_duration_s,
    seed,
    watchdog_gains,
    watchdog_t1_s
});
crate::impl_to_json!(FaultMatrixCell {
    protocol,
    profile,
    goodput_gbps,
    cnps_sent,
    fault_drops,
    fault_pauses,
    faults_injected
});
crate::impl_to_json!(CollapsePanel {
    label,
    early_agg_gbps,
    tail_agg_gbps,
    faults_injected
});
crate::impl_to_json!(WatchdogPoint {
    gain_per_s,
    ok,
    detail
});
crate::impl_to_json!(ExtFaultsResult {
    cells,
    failed_cells,
    collapse,
    watchdog
});
