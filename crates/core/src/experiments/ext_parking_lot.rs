//! Extension: the multi-bottleneck "parking lot" scenario (the paper's
//! future work: "These include multiple bottleneck scenario…").
//!
//! One long DCQCN flow crosses `n_hops` bottlenecks; one cross flow loads
//! each hop. Classic congestion-control theory: AIMD-style protocols give
//! the multi-hop flow *less* than the single-bottleneck fair share (it is
//! beaten at every hop), but it must not starve, and every link should
//! stay fully utilized with a controlled queue.

use crate::experiments::Series;
use desim::{SimDuration, SimTime};
use netsim::{Engine, EngineConfig, FlowSpec, Pacing, Topology};
use protocols::DcqcnCc;

/// Configuration.
#[derive(Debug, Clone)]
pub struct ParkingLotConfig {
    /// Number of bottleneck hops.
    pub n_hops: usize,
    /// Link bandwidth (Gbps).
    pub bandwidth_gbps: f64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for ParkingLotConfig {
    fn default() -> Self {
        ParkingLotConfig {
            n_hops: 3,
            bandwidth_gbps: 10.0,
            duration_s: 0.15,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct ParkingLotResult {
    /// Long-flow throughput (Gbps) over time.
    pub long_flow_gbps: Series,
    /// Long-flow tail throughput (Gbps).
    pub long_tail_gbps: f64,
    /// Per-hop cross-flow tail throughputs (Gbps).
    pub cross_tail_gbps: Vec<f64>,
    /// Per-hop link utilization over the tail.
    pub hop_utilization: Vec<f64>,
}

/// Run the parking lot with DCQCN everywhere.
pub fn run(cfg: &ParkingLotConfig) -> ParkingLotResult {
    let bw = cfg.bandwidth_gbps * 1e9;
    let (topo, long_src, long_dst, cross_pairs) =
        Topology::parking_lot(cfg.n_hops, bw, SimDuration::from_micros(1));
    let mut eng = Engine::new(topo, EngineConfig::default());
    let mk_flow = |src, dst| FlowSpec {
        src,
        dst,
        size_bytes: None,
        start: SimTime::ZERO,
        pacing: Pacing::PerPacket,
        cc: Box::new(DcqcnCc::default_cc()),
        ack_chunk_bytes: 64_000,
    };
    let long_id = eng.add_flow(mk_flow(long_src, long_dst));
    let cross_ids: Vec<_> = cross_pairs
        .iter()
        .map(|&(s, d)| eng.add_flow(mk_flow(s, d)))
        .collect();
    let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));

    let from = cfg.duration_s * 0.6;
    let tail = |f: usize| -> f64 {
        let pts: Vec<f64> = report.rate_traces[f]
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, bps)| bps)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    let long_tail = tail(long_id.0);
    let cross_tails: Vec<f64> = cross_ids.iter().map(|id| tail(id.0) / 1e9).collect();
    let hop_utilization: Vec<f64> = cross_tails
        .iter()
        .map(|&c| (c * 1e9 + long_tail) / bw)
        .collect();

    ParkingLotResult {
        long_flow_gbps: report.rate_traces[long_id.0]
            .iter()
            .map(|&(t, bps)| (t, bps / 1e9))
            .collect(),
        long_tail_gbps: long_tail / 1e9,
        cross_tail_gbps: cross_tails,
        hop_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_flow_disadvantaged_but_not_starved() {
        let res = run(&ParkingLotConfig::default());
        let fair = 5.0; // single-hop fair share on 10 Gbps with 2 flows
        assert!(
            res.long_tail_gbps < fair,
            "long flow {:.2} Gbps should be below single-hop fair share",
            res.long_tail_gbps
        );
        assert!(
            res.long_tail_gbps > 0.5,
            "long flow must not starve: {:.2} Gbps",
            res.long_tail_gbps
        );
        // Cross flows pick up the slack; each hop well utilized.
        for (h, &u) in res.hop_utilization.iter().enumerate() {
            assert!(u > 0.8, "hop {h} utilization {u:.3}");
        }
        // Goodput accounting: cross flows get the larger share at each hop.
        for (h, &c) in res.cross_tail_gbps.iter().enumerate() {
            assert!(
                c > res.long_tail_gbps,
                "hop {h}: cross {:.2} vs long {:.2}",
                c,
                res.long_tail_gbps
            );
        }
    }
}

crate::impl_to_json!(ParkingLotConfig {
    n_hops,
    bandwidth_gbps,
    duration_s
});
crate::impl_to_json!(ParkingLotResult {
    long_flow_gbps,
    long_tail_gbps,
    cross_tail_gbps,
    hop_utilization
});
