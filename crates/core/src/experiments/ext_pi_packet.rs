//! Extension: PI-marking AQM in the **packet-level** simulator.
//!
//! The paper demonstrates the PI controller in the fluid model (Figure 18)
//! and lists a hardware/switch implementation as future work ("we are doing
//! a full exploration of PI like controllers … including a hardware
//! implementation"). This experiment runs DCQCN against a PI AQM in the
//! packet simulator: the bottleneck queue should pin at `q_ref` regardless
//! of the number of flows, with fair rates — the property RED cannot give
//! (Eq 14: `q*` grows with N).

use crate::experiments::Series;
use crate::scenarios::{single_switch_longlived, Protocol};
use desim::{SimDuration, SimTime};
use netsim::config::PiAqmConfig;
use netsim::EngineConfig;

/// Configuration.
#[derive(Debug, Clone)]
pub struct ExtPiPacketConfig {
    /// Flow counts.
    pub flow_counts: Vec<usize>,
    /// Queue reference in KB.
    pub q_ref_kb: f64,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for ExtPiPacketConfig {
    fn default() -> Self {
        ExtPiPacketConfig {
            flow_counts: vec![2, 10, 32],
            q_ref_kb: 100.0,
            duration_s: 0.15,
        }
    }
}

/// One flow-count panel.
#[derive(Debug, Clone)]
pub struct ExtPiPacketPanel {
    /// Flow count.
    pub n_flows: usize,
    /// Bottleneck queue (KB) over time.
    pub queue_kb: Series,
    /// Tail mean queue with RED (KB).
    pub red_tail_queue_kb: f64,
    /// Tail mean queue with PI (KB).
    pub pi_tail_queue_kb: f64,
    /// Worst per-flow deviation from fair share under PI.
    pub pi_worst_rate_error: f64,
}

/// Result.
#[derive(Debug, Clone)]
pub struct ExtPiPacketResult {
    /// Per-N panels.
    pub panels: Vec<ExtPiPacketPanel>,
    /// The queue reference (KB).
    pub q_ref_kb: f64,
}

fn tail_queue(report: &netsim::SimReport, link: netsim::LinkId, from: f64) -> f64 {
    let pts: Vec<f64> = report.queue_traces[&link]
        .points()
        .iter()
        .filter(|&&(t, _)| t >= from)
        .map(|&(_, b)| b / 1000.0)
        .collect();
    pts.iter().sum::<f64>() / pts.len().max(1) as f64
}

/// Run the RED-vs-PI comparison.
pub fn run(cfg: &ExtPiPacketConfig) -> ExtPiPacketResult {
    let mut panels = Vec::new();
    for &n in &cfg.flow_counts {
        let run_one = |pi: bool| {
            let mut ecfg = EngineConfig::default();
            if pi {
                ecfg.pi_aqm = Some(PiAqmConfig::default_for((cfg.q_ref_kb * 1000.0) as u64));
            }
            let (mut eng, bottleneck) = single_switch_longlived(
                Protocol::Dcqcn,
                n,
                10e9,
                SimDuration::from_micros(1),
                ecfg,
            );
            let report = eng.run(SimTime::from_secs_f64(cfg.duration_s));
            (report, bottleneck)
        };
        let (red_report, red_link) = run_one(false);
        let (pi_report, pi_link) = run_one(true);
        let from = cfg.duration_s * 0.6;

        let fair = 10e9 / n as f64;
        let worst = (0..n)
            .map(|f| {
                let pts: Vec<f64> = pi_report.rate_traces[f]
                    .iter()
                    .filter(|&&(t, _)| t >= from)
                    .map(|&(_, bps)| bps)
                    .collect();
                let mean = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
                ((mean - fair) / fair).abs()
            })
            .fold(0.0, f64::max);

        panels.push(ExtPiPacketPanel {
            n_flows: n,
            queue_kb: pi_report.queue_traces[&pi_link]
                .points()
                .iter()
                .map(|&(t, b)| (t, b / 1000.0))
                .collect(),
            red_tail_queue_kb: tail_queue(&red_report, red_link, from),
            pi_tail_queue_kb: tail_queue(&pi_report, pi_link, from),
            pi_worst_rate_error: worst,
        });
    }
    ExtPiPacketResult {
        panels,
        q_ref_kb: cfg.q_ref_kb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_queue_independent_of_n_red_queue_is_not() {
        // The integral action needs a few tens of milliseconds to settle.
        let res = run(&ExtPiPacketConfig {
            flow_counts: vec![2, 16],
            q_ref_kb: 100.0,
            duration_s: 0.25,
        });
        let p2 = &res.panels[0];
        let p16 = &res.panels[1];
        // PI pins both near 100 KB.
        for p in [p2, p16] {
            assert!(
                (p.pi_tail_queue_kb - 100.0).abs() / 100.0 < 0.35,
                "N={}: PI queue {:.1} KB should be near 100",
                p.n_flows,
                p.pi_tail_queue_kb
            );
        }
        // PI's spread across N is smaller than RED's (Eq 14 growth).
        let pi_spread = (p16.pi_tail_queue_kb - p2.pi_tail_queue_kb).abs();
        let red_spread = (p16.red_tail_queue_kb - p2.red_tail_queue_kb).abs();
        assert!(
            pi_spread < red_spread,
            "PI spread {pi_spread:.1} KB vs RED spread {red_spread:.1} KB"
        );
        // Fairness holds under PI.
        assert!(
            p16.pi_worst_rate_error < 0.35,
            "worst rate error {:.3}",
            p16.pi_worst_rate_error
        );
    }
}

crate::impl_to_json!(ExtPiPacketConfig {
    flow_counts,
    q_ref_kb,
    duration_s
});
crate::impl_to_json!(ExtPiPacketPanel {
    n_flows,
    queue_kb,
    red_tail_queue_kb,
    pi_tail_queue_kb,
    pi_worst_rate_error
});
crate::impl_to_json!(ExtPiPacketResult { panels, q_ref_kb });
