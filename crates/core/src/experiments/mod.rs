//! Experiment runners, one module per paper artifact. See the crate docs
//! for the index.

pub mod appendix_b;
pub mod eq14;
pub mod ext_faults;
pub mod ext_incast;
pub mod ext_parking_lot;
pub mod ext_pfc;
pub mod ext_pi_packet;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod fig20;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;

/// A `(t_or_x, value)` series — the universal currency of figure output.
pub type Series = Vec<(f64, f64)>;
