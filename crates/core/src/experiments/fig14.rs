//! Figure 14: median and 90th-percentile FCT of small flows vs load, for
//! DCQCN, TIMELY and Patched TIMELY on the Figure 13 dumbbell.
//!
//! "The X axis shows relative load: load factor of 1 corresponds to an
//! average of 8 Gbps of traffic on the bottleneck link. […] at higher
//! loads, FCT for both TIMELY and patched TIMELY is high, and highly
//! variable." Small flows are those under 100 KB (pFabric convention).

use crate::scenarios::{dumbbell_fct, Protocol};
use desim::{SimDuration, SimTime};
use netsim::EngineConfig;
use workload::{FctStats, FlowSizeDist, ScenarioConfig};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig14Config {
    /// Load factors to sweep.
    pub loads: Vec<f64>,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Arrival horizon per run (seconds); the run itself extends 50 %
    /// longer so late flows can drain.
    pub horizon_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Fig14Config {
    fn default() -> Self {
        Fig14Config {
            loads: vec![0.2, 0.4, 0.6, 0.8],
            protocols: vec![Protocol::Dcqcn, Protocol::Timely, Protocol::PatchedTimely],
            horizon_s: 0.4,
            seed: 1,
        }
    }
}

/// One protocol's curve.
#[derive(Debug, Clone)]
pub struct Fig14Curve {
    /// Protocol label.
    pub protocol: String,
    /// `(load, median small-flow FCT ms)`.
    pub median_ms: Vec<(f64, f64)>,
    /// `(load, p90 small-flow FCT ms)`.
    pub p90_ms: Vec<(f64, f64)>,
    /// `(load, completed small flows)`.
    pub small_counts: Vec<(f64, usize)>,
    /// `(load, bottleneck utilization)` over the horizon.
    pub utilization: Vec<(f64, f64)>,
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// One curve per protocol.
    pub curves: Vec<Fig14Curve>,
}

/// Run one (protocol, load) cell and return its stats.
pub fn run_cell(protocol: Protocol, load: f64, horizon_s: f64, seed: u64) -> (FctStats, f64) {
    let scenario = ScenarioConfig {
        n_pairs: 10,
        load_factor: load,
        base_rate_bps: 8e9,
        horizon_s,
        seed,
    };
    let dist = FlowSizeDist::web_search();
    let mut cfg = EngineConfig::default();
    cfg.rate_trace_window = None; // thousands of flows; skip rate traces
    let (mut eng, _bottleneck) = dumbbell_fct(
        protocol,
        &scenario,
        &dist,
        10e9,
        SimDuration::from_micros(1),
        cfg,
    );
    let report = eng.run(SimTime::from_secs_f64(horizon_s * 1.5));
    let mut stats = FctStats::default();
    for r in &report.fcts {
        stats.push(r.size_bytes, r.fct_s);
    }
    let delivered: u64 = report.delivered_bytes.iter().sum();
    let util = delivered as f64 * 8.0 / (horizon_s * 1.5) / 10e9;
    (stats, util)
}

/// Run the full sweep.
pub fn run(cfg: &Fig14Config) -> Fig14Result {
    let mut curves = Vec::new();
    for &proto in &cfg.protocols {
        let mut median_ms = Vec::new();
        let mut p90_ms = Vec::new();
        let mut small_counts = Vec::new();
        let mut utilization = Vec::new();
        for &load in &cfg.loads {
            let (stats, util) = run_cell(proto, load, cfg.horizon_s, cfg.seed);
            median_ms.push((load, stats.small_median().unwrap_or(f64::NAN) * 1e3));
            p90_ms.push((load, stats.small_p90().unwrap_or(f64::NAN) * 1e3));
            small_counts.push((load, stats.small_count()));
            utilization.push((load, util));
        }
        curves.push(Fig14Curve {
            protocol: proto.label().to_string(),
            median_ms,
            p90_ms,
            small_counts,
            utilization,
        });
    }
    Fig14Result { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcqcn_beats_timely_family_at_high_load() {
        // The paper's Figure 14 claim: DCQCN outperforms the delay-based
        // protocols at high load. In our simulator the penalty splits by
        // variant: Patched TIMELY (β = 0.008) pays in small-flow latency
        // (uncontrolled queue transients), original TIMELY pays in
        // long-flow throughput (slow δ = 10 Mbps recovery starves the
        // utilization) — see EXPERIMENTS.md for the mechanism discussion.
        // The utilization gap needs enough horizon for long flows to
        // accumulate; 0.3 s shows it clearly (see the fig14 bench for the
        // full-horizon sweep).
        let cfg = Fig14Config {
            loads: vec![0.8],
            protocols: vec![Protocol::Dcqcn, Protocol::Timely, Protocol::PatchedTimely],
            horizon_s: 0.3,
            seed: 2,
        };
        let res = run(&cfg);
        let dcqcn_p90 = res.curves[0].p90_ms[0].1;
        let timely_p90 = res.curves[1].p90_ms[0].1;
        let patched_p90 = res.curves[2].p90_ms[0].1;
        let dcqcn_util = res.curves[0].utilization[0].1;
        let timely_util = res.curves[1].utilization[0].1;
        assert!(
            patched_p90 > 2.0 * dcqcn_p90,
            "patched TIMELY p90 {patched_p90:.3} ms must exceed DCQCN {dcqcn_p90:.3} ms"
        );
        assert!(
            timely_p90 > dcqcn_p90 || timely_util < dcqcn_util * 0.97,
            "TIMELY must pay somewhere: p90 {timely_p90:.3} vs {dcqcn_p90:.3} ms, \
             util {timely_util:.3} vs {dcqcn_util:.3}"
        );
        for c in &res.curves {
            assert!(
                c.small_counts[0].1 > 20,
                "{} too few completions",
                c.protocol
            );
        }
    }

    #[test]
    fn fct_grows_with_load() {
        let cfg = Fig14Config {
            loads: vec![0.2, 0.8],
            protocols: vec![Protocol::Dcqcn],
            horizon_s: 0.12,
            seed: 3,
        };
        let res = run(&cfg);
        let lo = res.curves[0].p90_ms[0].1;
        let hi = res.curves[0].p90_ms[1].1;
        assert!(
            hi > lo,
            "p90 at load 0.8 ({hi:.3}) must exceed 0.2 ({lo:.3})"
        );
    }
}

crate::impl_to_json!(Fig14Config {
    loads,
    protocols,
    horizon_s,
    seed
});
crate::impl_to_json!(Fig14Curve {
    protocol,
    median_ms,
    p90_ms,
    small_counts,
    utilization
});
crate::impl_to_json!(Fig14Result { curves });
