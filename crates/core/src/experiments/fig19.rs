//! Figure 19: a PI controller at the end hosts with Patched TIMELY.
//!
//! "Although we can control the queue to a specified value (300 KB), we
//! cannot achieve fairness. Thus, while patched TIMELY was able to achieve
//! fairness without guaranteeing delay, with PI it is able to guarantee
//! delay without achieving fairness" — the demonstration of Theorem 6.

use crate::experiments::Series;
use models::patched_timely::PatchedTimelyParams;
use models::pi::{PatchedTimelyPiFluid, PiGains};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig19Config {
    /// Queue reference in KB (300 in the paper).
    pub q_ref_kb: f64,
    /// Initial rates of the two flows as fractions of C.
    pub initial_fractions: Vec<f64>,
    /// Duration (seconds).
    pub duration_s: f64,
}

impl Default for Fig19Config {
    fn default() -> Self {
        Fig19Config {
            q_ref_kb: 300.0,
            initial_fractions: vec![0.9, 0.1],
            duration_s: 0.6,
        }
    }
}

/// Result.
#[derive(Debug, Clone)]
pub struct Fig19Result {
    /// Queue (KB) over time.
    pub queue_kb: Series,
    /// Per-flow rates (Gbps) over time.
    pub rates_gbps: Vec<Series>,
    /// Tail queue mean (KB).
    pub tail_queue_kb: f64,
    /// Tail rate shares per flow.
    pub tail_shares: Vec<f64>,
    /// Tail utilization (Σrates / C).
    pub tail_utilization: f64,
}

/// Run.
pub fn run(cfg: &Fig19Config) -> Fig19Result {
    let params = PatchedTimelyParams::default_10g();
    let gains: PiGains = PatchedTimelyPiFluid::default_gains(&params, cfg.q_ref_kb);
    let c = params.base.capacity_pps();
    let n = cfg.initial_fractions.len();
    let mut m = PatchedTimelyPiFluid::new(params.clone(), gains, n);
    let rates0: Vec<f64> = cfg.initial_fractions.iter().map(|&f| f * c).collect();
    let tr = m.simulate_with_rates(&rates0, cfg.duration_s);
    let from = cfg.duration_s * 0.8;

    let tail_rates: Vec<f64> = (0..n)
        .map(|i| tr.mean_from(m.rate_index(i), from))
        .collect();
    let total: f64 = tail_rates.iter().sum();
    let queue_kb: Series = tr
        .series(0)
        .into_iter()
        .map(|(t, pkts)| (t, models::units::pkts_to_kb(pkts, params.base.packet_bytes)))
        .collect();
    let tail_q = queue_kb
        .iter()
        .filter(|&&(t, _)| t >= from)
        .map(|&(_, v)| v)
        .sum::<f64>()
        / queue_kb.iter().filter(|&&(t, _)| t >= from).count().max(1) as f64;

    Fig19Result {
        rates_gbps: (0..n)
            .map(|i| {
                tr.series(m.rate_index(i))
                    .into_iter()
                    .map(|(t, pps)| (t, models::units::pps_to_gbps(pps, params.base.packet_bytes)))
                    .collect()
            })
            .collect(),
        queue_kb,
        tail_queue_kb: tail_q,
        tail_shares: tail_rates.iter().map(|&r| r / total).collect(),
        tail_utilization: total / c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pinned_but_unfair() {
        let res = run(&Fig19Config {
            duration_s: 0.5,
            ..Default::default()
        });
        // Queue at 300 KB.
        assert!(
            (res.tail_queue_kb - 300.0).abs() / 300.0 < 0.2,
            "queue {:.1} KB vs 300 KB",
            res.tail_queue_kb
        );
        // Link fully used.
        assert!(
            res.tail_utilization > 0.85,
            "utilization {:.3}",
            res.tail_utilization
        );
        // But the split stays skewed — Theorem 6.
        assert!(
            res.tail_shares[0] > 0.6,
            "unfairness must persist: shares {:?}",
            res.tail_shares
        );
    }
}

crate::impl_to_json!(Fig19Config {
    q_ref_kb,
    initial_fractions,
    duration_s
});
crate::impl_to_json!(Fig19Result {
    queue_kb,
    rates_gbps,
    tail_queue_kb,
    tail_shares,
    tail_utilization
});
