//! Figure 3: DCQCN phase margins.
//!
//! (a) phase margin vs number of flows for several control-loop delays τ*;
//! (b) the stabilizing effect of smaller `R_AI`; (c) of larger `K_max`.
//! The headline: the margin is **non-monotonic** in the number of flows —
//! at high delay it dips (often below zero near N ≈ 10) and recovers for
//! large N, "very different from TCP's behavior".

use control::JacobianCache;
use models::dcqcn::{DcqcnFluid, DcqcnLinParts, DcqcnParams};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Flow counts to sweep.
    pub flow_counts: Vec<usize>,
    /// Delays (µs) for panel (a).
    pub delays_us: Vec<f64>,
    /// `R_AI` values (Mbps) for panel (b), at `panel_bc_delay_us`.
    pub r_ai_mbps: Vec<f64>,
    /// `K_max` values (KB) for panel (c), at `panel_bc_delay_us`.
    pub kmax_kb: Vec<f64>,
    /// Delay used for panels (b) and (c).
    pub panel_bc_delay_us: f64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            flow_counts: vec![2, 4, 6, 8, 10, 14, 18, 24, 32, 48, 64, 100],
            delays_us: vec![4.0, 20.0, 50.0, 85.0, 100.0],
            r_ai_mbps: vec![10.0, 40.0, 100.0],
            kmax_kb: vec![200.0, 1000.0, 5000.0],
            panel_bc_delay_us: 85.0,
        }
    }
}

/// One margin curve: label plus `(N, phase margin °)` points.
#[derive(Debug, Clone)]
pub struct MarginCurve {
    /// Curve label (e.g. "τ*=85µs").
    pub label: String,
    /// `(n_flows, phase_margin_deg)` points.
    pub points: Vec<(usize, f64)>,
}

/// Full result: panels (a), (b), (c).
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Panel (a): one curve per delay.
    pub by_delay: Vec<MarginCurve>,
    /// Panel (b): one curve per `R_AI`.
    pub by_r_ai: Vec<MarginCurve>,
    /// Panel (c): one curve per `K_max`.
    pub by_kmax: Vec<MarginCurve>,
}

fn margin(params: &DcqcnParams, n: usize) -> f64 {
    DcqcnFluid::new(params.clone(), n)
        .margin_report()
        .phase_margin_deg
        .unwrap_or(180.0)
}

/// Run all three sweeps.
///
/// Every `(curve, N)` grid point is an independent margin computation, so
/// the whole figure is one flat [`desim::par::par_map`] job list; curves are
/// reassembled from the ordered results, making the output byte-identical
/// to the serial sweep regardless of `SIM_THREADS`.
///
/// When [`desim::par::batch_enabled`] (the default; `SIM_BATCH=0` opts out),
/// grid points are grouped by flow count across curves and each group shares
/// one [`JacobianCache`]: panels (a) and (c) vary only the delay and RED
/// profile, which the DCQCN linearization never reads, so all their curves
/// reuse one set of Jacobian blocks per `N`. The cache uses exact
/// (`tol = 0`) keys, so both paths produce bitwise-identical margins.
pub fn run(cfg: &Fig3Config) -> Fig3Result {
    let base = DcqcnParams::default_40g();

    let mut labels: Vec<String> = Vec::new();
    let mut jobs: Vec<(DcqcnParams, usize)> = Vec::new();
    let mut push_curve = |p: DcqcnParams, label: String| {
        labels.push(label);
        jobs.extend(cfg.flow_counts.iter().map(|&n| (p.clone(), n)));
    };
    for &d in &cfg.delays_us {
        let mut p = base.clone();
        p.feedback_delay_us = d;
        push_curve(p, format!("tau*={d}us"));
    }
    for &r in &cfg.r_ai_mbps {
        let mut p = base.clone();
        p.feedback_delay_us = cfg.panel_bc_delay_us;
        p.r_ai_mbps = r;
        push_curve(p, format!("R_AI={r}Mbps"));
    }
    for &k in &cfg.kmax_kb {
        let mut p = base.clone();
        p.feedback_delay_us = cfg.panel_bc_delay_us;
        p.kmax_kb = k;
        push_curve(p, format!("Kmax={k}KB"));
    }

    let margins = if desim::par::batch_enabled() {
        // Regroup the curve-major job list by position-within-curve (= flow
        // count): group k holds job c·|N| + k of every curve c. Each group
        // runs under one Jacobian cache, and results scatter back to their
        // original flat indices, preserving the output order exactly.
        let n_pos = cfg.flow_counts.len();
        let n_curves = labels.len();
        let mut slots: Vec<Option<(DcqcnParams, usize)>> = jobs.into_iter().map(Some).collect();
        let groups: Vec<Vec<(usize, DcqcnParams, usize)>> = (0..n_pos)
            .map(|k| {
                (0..n_curves)
                    .map(|c| {
                        let idx = c * n_pos + k;
                        // simlint: allow(panic, no-unwrap-sim) — idx enumerates each slot exactly once
                        let (p, n) = slots[idx].take().expect("job regrouped twice");
                        (idx, p, n)
                    })
                    .collect()
            })
            .collect();
        let group_margins =
            desim::par::par_map(groups, |group: Vec<(usize, DcqcnParams, usize)>| {
                let mut cache: JacobianCache<DcqcnLinParts> = JacobianCache::new(0.0, 1024);
                group
                    .into_iter()
                    .map(|(idx, p, n)| {
                        let pm = DcqcnFluid::new(p, n)
                            .margin_report_cached(&mut cache)
                            .phase_margin_deg
                            .unwrap_or(180.0);
                        (idx, pm)
                    })
                    .collect::<Vec<(usize, f64)>>()
            });
        let mut margins = vec![0.0; n_pos * n_curves];
        for (idx, pm) in group_margins.into_iter().flatten() {
            margins[idx] = pm;
        }
        margins
    } else {
        desim::par::par_map(jobs, |(p, n)| margin(&p, n))
    };

    let mut curves: Vec<MarginCurve> = labels
        .into_iter()
        .zip(margins.chunks(cfg.flow_counts.len()))
        .map(|(label, ms)| MarginCurve {
            label,
            points: cfg
                .flow_counts
                .iter()
                .copied()
                .zip(ms.iter().copied())
                .collect(),
        })
        .collect();

    let by_kmax = curves.split_off(cfg.delays_us.len() + cfg.r_ai_mbps.len());
    let by_r_ai = curves.split_off(cfg.delays_us.len());
    Fig3Result {
        by_delay: curves,
        by_r_ai,
        by_kmax,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Fig3Config {
        Fig3Config {
            flow_counts: vec![2, 10, 64],
            delays_us: vec![4.0, 85.0],
            r_ai_mbps: vec![10.0, 40.0],
            kmax_kb: vec![200.0, 1000.0],
            panel_bc_delay_us: 85.0,
        }
    }

    #[test]
    fn small_delay_stable_everywhere() {
        let res = run(&quick_cfg());
        let small = &res.by_delay[0]; // 4 µs
        for &(n, pm) in &small.points {
            assert!(pm > 0.0, "N={n} at 4 µs should be stable, pm={pm:.1}");
        }
    }

    #[test]
    fn nonmonotone_dip_at_high_delay() {
        let res = run(&quick_cfg());
        let high = &res.by_delay[1]; // 85 µs
        let pm: Vec<f64> = high.points.iter().map(|&(_, p)| p).collect();
        assert!(
            pm[1] < pm[0] && pm[1] < pm[2],
            "dip at N=10 expected: {pm:?}"
        );
    }

    #[test]
    fn smaller_rai_has_larger_margin_at_dip() {
        // Figure 3(b)'s claim targets the unstable dip region (N ≈ 10 at
        // 85 µs); at very large N the R_AI effect interacts with p* and is
        // not uniformly monotone.
        let res = run(&quick_cfg());
        let small_rai = &res.by_r_ai[0]; // 10 Mbps
        let default_rai = &res.by_r_ai[1]; // 40 Mbps
        let dip = 1; // N = 10 in quick_cfg
        assert!(
            small_rai.points[dip].1 > default_rai.points[dip].1,
            "R_AI=10 must stabilize the dip: {:.1} vs {:.1}",
            small_rai.points[dip].1,
            default_rai.points[dip].1
        );
        // And it must lift the dip out of instability.
        assert!(
            small_rai.points[dip].1 > 0.0,
            "dip should become stable with R_AI=10: {:.1}",
            small_rai.points[dip].1
        );
    }

    #[test]
    fn batched_and_scalar_paths_are_bitwise_identical() {
        let cfg = quick_cfg();
        let a = desim::par::with_batch(true, || run(&cfg));
        let b = desim::par::with_batch(false, || run(&cfg));
        let flatten = |r: &Fig3Result| -> Vec<(String, Vec<(usize, u64)>)> {
            r.by_delay
                .iter()
                .chain(&r.by_r_ai)
                .chain(&r.by_kmax)
                .map(|c| {
                    (
                        c.label.clone(),
                        c.points.iter().map(|&(n, pm)| (n, pm.to_bits())).collect(),
                    )
                })
                .collect()
        };
        assert_eq!(flatten(&a), flatten(&b), "cached path must match exactly");
    }

    #[test]
    fn larger_kmax_has_larger_margin_at_dip() {
        let res = run(&quick_cfg());
        let k200 = &res.by_kmax[0];
        let k1000 = &res.by_kmax[1];
        // At the dip (N = 10), the larger K_max must help.
        assert!(
            k1000.points[1].1 > k200.points[1].1,
            "{:.1} vs {:.1}",
            k1000.points[1].1,
            k200.points[1].1
        );
    }
}

crate::impl_to_json!(Fig3Config {
    flow_counts,
    delays_us,
    r_ai_mbps,
    kmax_kb,
    panel_bc_delay_us
});
crate::impl_to_json!(MarginCurve { label, points });
crate::impl_to_json!(Fig3Result {
    by_delay,
    by_r_ai,
    by_kmax
});
