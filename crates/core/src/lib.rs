//! # ecn-delay-core — the experiment layer
//!
//! One module per artifact of the paper's evaluation. Every runner is a
//! pure function from a config to a serializable result struct; the `bench`
//! crate's binaries print the paper's series and dump JSON, and the test
//! suite asserts the qualitative claims on reduced configurations.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::fig2`] | DCQCN fluid model vs packet simulation |
//! | [`experiments::fig3`] | DCQCN phase margins (delay, R_AI, K_max sweeps) |
//! | [`experiments::fig4`] | DCQCN fluid stability grid (τ* × N) |
//! | [`experiments::fig5`] | DCQCN packet-level instability at 85 µs |
//! | [`experiments::fig6`] | discrete AIMD sawtooth + Theorem 2 decay |
//! | [`experiments::fig8`] | TIMELY fluid vs packet simulation |
//! | [`experiments::fig9`] | TIMELY multi-equilibria (starting conditions) |
//! | [`experiments::fig10`] | TIMELY burst pacing (16 KB vs 64 KB chunks) |
//! | [`experiments::fig11`] | Patched TIMELY phase margin vs N |
//! | [`experiments::fig12`] | Patched TIMELY convergence and stability |
//! | [`experiments::fig14`] | FCT medians/p90 vs load (dumbbell) |
//! | [`experiments::fig15`] | FCT CDF at load 0.8 |
//! | [`experiments::fig16`] | bottleneck queue at load 0.8 |
//! | [`experiments::fig17`] | ingress- vs egress-marking stability |
//! | [`experiments::fig18`] | DCQCN + PI (fair and pinned queue) |
//! | [`experiments::fig19`] | Patched TIMELY + PI (pinned, unfair) |
//! | [`experiments::fig20`] | feedback-jitter resilience |
//! | [`experiments::eq14`] | p* closed form vs numeric root |

#![deny(missing_docs)]

pub mod experiments;
pub mod json;
pub mod output;
pub mod scenarios;

pub use json::{Json, ToJson};
pub use output::{write_json, write_series_csv};
