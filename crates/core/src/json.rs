//! Minimal, dependency-free JSON emission for experiment results.
//!
//! The workspace builds offline with no external crates, so instead of
//! `serde`/`serde_json` the experiment layer serializes through the
//! [`ToJson`] trait and the [`Json`] value tree defined here. Output is
//! pretty-printed with two-space indentation and is byte-stable across
//! runs and platforms: floats use Rust's shortest round-trip `Display`,
//! integers are emitted losslessly, and object keys keep the declaration
//! order given to [`impl_to_json!`].
//!
//! Implement [`ToJson`] for a result struct with one line:
//!
//! ```
//! use ecn_delay_core::impl_to_json;
//!
//! struct Row { n_flows: usize, rate_gbps: f64 }
//! impl_to_json!(Row { n_flows, rate_gbps });
//! ```

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also emitted for non-finite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted losslessly.
    Int(i128),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved in the output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render with two-space indentation (the layout `serde_json`'s pretty
    /// printer used, so downstream plotting scripts keep working).
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trip formatting; force a ".0" so a
                    // float-typed field never prints as a bare integer.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can serialize themselves into a [`Json`] tree.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

macro_rules! impl_int {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        })*
    };
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
        ])
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Implement [`ToJson`] for a struct by listing its fields, preserving the
/// listed order in the emitted object.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field))),*
                ])
            }
        }
    };
}

/// Implement [`ToJson`] for a fieldless enum (or any `Debug` type whose
/// `Debug` form is its stable wire name), serializing as a string.
#[macro_export]
macro_rules! impl_to_json_debug {
    ($($ty:ty),* $(,)?) => {
        $(impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Str(format!("{self:?}"))
            }
        })*
    };
}

// Serializable views of foreign (workspace-crate) types used in results.

impl ToJson for desim::stats::TimeSeries {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("resolution_secs".to_string(), self.resolution().to_json()),
            ("points".to_string(), self.points().to_json()),
        ])
    }
}

impl ToJson for desim::SimTime {
    fn to_json(&self) -> Json {
        Json::Num(self.as_secs_f64())
    }
}

impl ToJson for desim::SimDuration {
    fn to_json(&self) -> Json {
        Json::Num(self.as_secs_f64())
    }
}

impl ToJson for netsim::FctRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("flow".to_string(), self.flow.to_json()),
            ("size_bytes".to_string(), self.size_bytes.to_json()),
            ("start_s".to_string(), self.start_s.to_json()),
            ("fct_s".to_string(), self.fct_s.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render_pretty(), "null");
        assert_eq!(true.to_json().render_pretty(), "true");
        assert_eq!(42u64.to_json().render_pretty(), "42");
        assert_eq!((-7i32).to_json().render_pretty(), "-7");
        assert_eq!(1.5f64.to_json().render_pretty(), "1.5");
        assert_eq!(2.0f64.to_json().render_pretty(), "2.0");
        assert_eq!(f64::NAN.to_json().render_pretty(), "null");
        assert_eq!(f64::INFINITY.to_json().render_pretty(), "null");
    }

    #[test]
    fn floats_round_trip() {
        for &x in &[0.1, 1e-9, std::f64::consts::PI, 1e300, -2.5e-17] {
            let s = x.to_json().render_pretty();
            let back: f64 = s.parse().expect("parseable float");
            assert_eq!(back, x, "render of {x} was {s}");
        }
    }

    #[test]
    fn strings_escape() {
        assert_eq!("a\"b\\c\nd".to_json().render_pretty(), r#""a\"b\\c\nd""#);
        assert_eq!("\u{1}".to_json().render_pretty(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_pretty_print() {
        let v = Json::Obj(vec![
            ("xs".to_string(), vec![1u32, 2].to_json()),
            ("empty".to_string(), Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.render_pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn struct_macro_preserves_field_order() {
        struct Demo {
            b: u32,
            a: f64,
        }
        impl_to_json!(Demo { b, a });
        let d = Demo { b: 1, a: 0.5 };
        assert_eq!(
            d.to_json().render_pretty(),
            "{\n  \"b\": 1,\n  \"a\": 0.5\n}"
        );
    }

    #[test]
    fn tuples_and_options() {
        let t = (1u32, 2.5f64, "x".to_string());
        assert_eq!(t.to_json().render_pretty(), "[\n  1,\n  2.5,\n  \"x\"\n]");
        let none: Option<u32> = None;
        assert_eq!(none.to_json().render_pretty(), "null");
        assert_eq!(Some(3u8).to_json().render_pretty(), "3");
    }
}
