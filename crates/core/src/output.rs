//! Result output helpers: JSON dumps and CSV series.

use crate::json::ToJson;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Serialize `value` as pretty JSON into `path`, creating parent
/// directories as needed.
pub fn write_json<T: ToJson + ?Sized>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, value.to_json().render_pretty())
}

/// Write one or more named `(x, y)` series as CSV: header `x,name1,name2…`,
/// one row per x of the first series (series are expected to share x's; a
/// missing y is left empty).
pub fn write_series_csv(
    path: &Path,
    x_label: &str,
    series: &[(&str, &[(f64, f64)])],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    write!(f, "{x_label}")?;
    for (name, _) in series {
        write!(f, ",{name}")?;
    }
    writeln!(f)?;
    let n = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..n {
        let x = series
            .iter()
            .find_map(|(_, s)| s.get(i).map(|&(x, _)| x))
            .unwrap_or(f64::NAN);
        write!(f, "{x}")?;
        for (_, s) in series {
            match s.get(i) {
                Some(&(_, y)) => write!(f, ",{y}")?,
                None => write!(f, ",")?,
            }
        }
        writeln!(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout() {
        let dir = std::env::temp_dir().join("ecn_delay_test_out");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn csv_layout() {
        let dir = std::env::temp_dir().join("ecn_delay_test_out");
        let path = dir.join("s.csv");
        let a = [(0.0, 1.0), (1.0, 2.0)];
        let b = [(0.0, 5.0)];
        write_series_csv(&path, "t", &[("a", &a), ("b", &b)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "t,a,b");
        assert_eq!(lines[1], "0,1,5");
        assert_eq!(lines[2], "1,2,");
    }
}
