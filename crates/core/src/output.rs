//! Result output helpers: JSON dumps and CSV series.
//!
//! Both writers go through `store::atomic::write_atomic`, so a `kill -9`
//! mid-run can never leave a torn figure artifact under its final name —
//! the file is either the previous whole version or the new whole version.

use crate::json::ToJson;
use std::fmt::Write as _;
use std::path::Path;

/// Serialize `value` as pretty JSON into `path`, creating parent
/// directories as needed. The write is atomic (temp + fsync + rename).
pub fn write_json<T: ToJson + ?Sized>(path: &Path, value: &T) -> std::io::Result<()> {
    store::atomic::write_atomic(path, value.to_json().render_pretty().as_bytes())
}

/// Write one or more named `(x, y)` series as CSV: header `x,name1,name2…`,
/// one row per x of the first series (series are expected to share x's; a
/// missing y is left empty).
pub fn write_series_csv(
    path: &Path,
    x_label: &str,
    series: &[(&str, &[(f64, f64)])],
) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for (name, _) in series {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    let n = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..n {
        let x = series
            .iter()
            .find_map(|(_, s)| s.get(i).map(|&(x, _)| x))
            .unwrap_or(f64::NAN);
        let _ = write!(out, "{x}");
        for (_, s) in series {
            match s.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    store::atomic::write_atomic(path, out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout() {
        let dir = std::env::temp_dir().join("ecn_delay_test_out");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn csv_layout() {
        let dir = std::env::temp_dir().join("ecn_delay_test_out");
        let path = dir.join("s.csv");
        let a = [(0.0, 1.0), (1.0, 2.0)];
        let b = [(0.0, 5.0)];
        write_series_csv(&path, "t", &[("a", &a), ("b", &b)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "t,a,b");
        assert_eq!(lines[1], "0,1,5");
        assert_eq!(lines[2], "1,2,");
    }
}
