//! Scratch profiling harness for the timing wheel (not shipped; examples are
//! outside the simlint scope and the no-wall-clock rule).

use desim::{EventQueue, SimRng, SimTime};
use std::time::Instant;

fn ref_bench() {
    use desim::event_ref::ReferenceEventQueue;
    let reps = 300u32;
    let mut acc = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let mut q = ReferenceEventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
    }
    let fifo = t0.elapsed().as_nanos() / reps as u128;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let mut rng = SimRng::new(7);
        let mut q = ReferenceEventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i);
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
    }
    let rand = t0.elapsed().as_nanos() / reps as u128;
    println!("ref:  fifo total {fifo:>8} ns   rand total {rand:>8} ns  (acc {acc})");
}

fn warm_bench() {
    // Reuse one queue across reps: isolates allocation/page-fault churn from
    // algorithmic cost (the arena stays at its high-water mark).
    let reps = 300u32;
    let mut acc = 0u64;
    let mut q = EventQueue::new();
    let t0 = Instant::now();
    for rep in 0..reps as u64 {
        let base = rep * 10_000;
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(base + i), i);
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
    }
    let fifo = t0.elapsed().as_nanos() / reps as u128;
    let mut q = EventQueue::new();
    let t0 = Instant::now();
    for rep in 0..reps as u64 {
        let base = rep * 1_000_000;
        let mut rng = SimRng::new(7);
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(base + rng.next_below(1_000_000)), i);
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
    }
    let rand = t0.elapsed().as_nanos() / reps as u128;
    println!("warm: fifo total {fifo:>8} ns   rand total {rand:>8} ns  (acc {acc})");
}

fn l0_only_bench() {
    // 4096 events all inside the level-0 window: pure push/pop cost with no
    // cascading, isolating the pop path from cascade cost.
    let reps = 300u32;
    let mut acc = 0u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut q = EventQueue::new();
        for i in 0..4_096u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
    }
    let total = t0.elapsed().as_nanos() / reps as u128;
    println!(
        "l0:   4096-event total {total:>8} ns  ({:.1} ns/event, acc {acc})",
        total as f64 / 4096.0
    );
}

fn main() {
    ref_bench();
    l0_only_bench();
    warm_bench();
    let reps = 300;
    // Phase timing: fifo
    let mut t_new = 0u128;
    let mut t_sched = 0u128;
    let mut t_drain = 0u128;
    let mut acc = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut q = EventQueue::new();
        let t1 = Instant::now();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        let t2 = Instant::now();
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        let t3 = Instant::now();
        t_new += (t1 - t0).as_nanos();
        t_sched += (t2 - t1).as_nanos();
        t_drain += (t3 - t2).as_nanos();
    }
    println!(
        "fifo: new {:>8} ns  sched {:>8} ns  drain {:>8} ns  (per iter, acc {acc})",
        t_new / reps as u128,
        t_sched / reps as u128,
        t_drain / reps as u128
    );

    let mut t_new = 0u128;
    let mut t_sched = 0u128;
    let mut t_drain = 0u128;
    for _ in 0..reps {
        let mut rng = SimRng::new(7);
        let t0 = Instant::now();
        let mut q = EventQueue::new();
        let t1 = Instant::now();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i);
        }
        let t2 = Instant::now();
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        let t3 = Instant::now();
        t_new += (t1 - t0).as_nanos();
        t_sched += (t2 - t1).as_nanos();
        t_drain += (t3 - t2).as_nanos();
    }
    println!(
        "rand: new {:>8} ns  sched {:>8} ns  drain {:>8} ns  (per iter, acc {acc})",
        t_new / reps as u128,
        t_sched / reps as u128,
        t_drain / reps as u128
    );
}
// appended: reference-queue comparison in the same process
