//! Differential property test: timing wheel vs. the retained reference
//! heap queue.
//!
//! Both queues are driven through identical randomized schedules of
//! push/pop/cancel/rearm operations — including same-timestamp ties,
//! short-horizon timer churn, and far-future jumps that cross several wheel
//! levels — and must produce byte-for-byte identical pop sequences
//! `(time, tag)` and identical `len()` at every step. Payload tags identify
//! events across the two queues so cancels and rearms can be mirrored.

use desim::event_ref::ReferenceEventQueue;
use desim::{EventQueue, SimRng, SimTime};

/// One pending event tracked on both queues under a common tag.
struct Pending {
    tag: u64,
    wheel_id: desim::EventId,
    ref_id: desim::event_ref::RefEventId,
}

struct Harness {
    wheel: EventQueue<u64>,
    oracle: ReferenceEventQueue<u64>,
    pending: Vec<Pending>,
    now_ns: u64,
    next_tag: u64,
    pops: u64,
}

impl Harness {
    fn new() -> Self {
        Harness {
            wheel: EventQueue::new(),
            oracle: ReferenceEventQueue::new(),
            pending: Vec::new(),
            now_ns: 0,
            next_tag: 0,
            pops: 0,
        }
    }

    fn push(&mut self, at_ns: u64) {
        let tag = self.next_tag;
        self.next_tag += 1;
        let t = SimTime::from_nanos(at_ns);
        let wheel_id = self.wheel.schedule(t, tag);
        let ref_id = self.oracle.schedule(t, tag);
        self.pending.push(Pending {
            tag,
            wheel_id,
            ref_id,
        });
    }

    fn pop(&mut self) {
        let got = self.wheel.pop();
        let want = self.oracle.pop();
        match (got, want) {
            (Some((tw, pw)), Some((tr, pr))) => {
                assert_eq!(tw, tr, "pop #{}: time diverged", self.pops);
                assert_eq!(pw, pr, "pop #{}: payload diverged at {tw}", self.pops);
                self.now_ns = tw.as_nanos();
                let pos = self
                    .pending
                    .iter()
                    .position(|p| p.tag == pw)
                    .expect("popped tag must be tracked");
                self.pending.swap_remove(pos);
            }
            (None, None) => {}
            (got, want) => panic!("pop #{}: wheel {got:?} vs oracle {want:?}", self.pops),
        }
        self.pops += 1;
    }

    fn cancel_at(&mut self, pos: usize) {
        let p = self.pending.swap_remove(pos);
        assert!(self.wheel.cancel(p.wheel_id), "wheel lost tag {}", p.tag);
        assert!(self.oracle.cancel(p.ref_id), "oracle lost tag {}", p.tag);
    }

    /// The engine's timer pattern: cancel a pending event and reschedule
    /// its successor at a new time.
    fn rearm_at(&mut self, pos: usize, at_ns: u64) {
        self.cancel_at(pos);
        self.push(at_ns);
    }

    fn check_len(&self) {
        assert_eq!(self.wheel.len(), self.oracle.len(), "len diverged");
        assert_eq!(self.wheel.len(), self.pending.len(), "tracker diverged");
    }

    fn drain(&mut self) {
        while !self.pending.is_empty() {
            self.pop();
        }
        assert!(self.wheel.pop().is_none());
        assert!(self.oracle.pop().is_none());
    }
}

/// Pick an offset that exercises every wheel level: mostly near-future
/// (level 0–1 territory), often zero (same-instant ties), occasionally a
/// far-future jump crossing four or more byte boundaries.
fn random_offset(rng: &mut SimRng) -> u64 {
    match rng.next_below(100) {
        0..=24 => 0,                              // tie with "now"
        25..=59 => rng.next_below(1_000),         // sub-microsecond
        60..=84 => rng.next_below(1_000_000),     // sub-millisecond
        85..=94 => rng.next_below(1_000_000_000), // sub-second
        95..=98 => rng.next_below(1 << 40),       // ~18-minute horizon
        _ => (1 << 56) + rng.next_below(1 << 40), // top-byte rollover
    }
}

#[test]
fn random_schedules_pop_identically() {
    for seed in 0..8u64 {
        let mut rng = SimRng::new(0xD1FF_0000 + seed);
        let mut h = Harness::new();
        for _ in 0..5_000 {
            let op = rng.next_below(100);
            if op < 45 || h.pending.is_empty() {
                let at_ns = h.now_ns.saturating_add(random_offset(&mut rng));
                h.push(at_ns);
            } else if op < 70 {
                h.pop();
            } else if op < 85 {
                let pos = rng.next_below(h.pending.len() as u64) as usize;
                h.cancel_at(pos);
            } else {
                let pos = rng.next_below(h.pending.len() as u64) as usize;
                let at_ns = h.now_ns.saturating_add(random_offset(&mut rng));
                h.rearm_at(pos, at_ns);
            }
            h.check_len();
        }
        h.drain();
        assert!(h.pops > 1_000, "seed {seed}: schedule too pop-starved");
    }
}

#[test]
fn tie_heavy_schedule_pops_in_insertion_order() {
    // Many events on few distinct timestamps: the FIFO tie-break carries
    // all the ordering information.
    let mut rng = SimRng::new(0x7135);
    let mut h = Harness::new();
    for _ in 0..3_000 {
        let op = rng.next_below(10);
        if op < 6 || h.pending.is_empty() {
            let at_ns = h.now_ns + rng.next_below(4) * 100;
            h.push(at_ns);
        } else if op < 8 {
            h.pop();
        } else {
            let pos = rng.next_below(h.pending.len() as u64) as usize;
            h.cancel_at(pos);
        }
        h.check_len();
    }
    h.drain();
}

#[test]
fn rearm_churn_matches_oracle() {
    // Timer-style workload: a small population of events rearmed far more
    // often than they fire, as DCQCN/TIMELY rate timers do.
    let mut rng = SimRng::new(0xABCD);
    let mut h = Harness::new();
    for i in 0..16u64 {
        h.push(i * 50);
    }
    for _ in 0..10_000 {
        let op = rng.next_below(10);
        if op < 7 && !h.pending.is_empty() {
            let pos = rng.next_below(h.pending.len() as u64) as usize;
            let at_ns = h.now_ns + 1 + rng.next_below(5_000);
            h.rearm_at(pos, at_ns);
        } else if !h.pending.is_empty() {
            h.pop();
        } else {
            h.push(h.now_ns + rng.next_below(5_000));
        }
        h.check_len();
    }
    h.drain();
}

#[test]
fn far_future_rollover_matches_oracle() {
    // Jumps that force cascades through the upper wheel levels, including
    // times near u64::MAX.
    let mut h = Harness::new();
    let times = [
        0u64,
        255,
        256,
        65_535,
        1 << 24,
        (1 << 32) + 7,
        1 << 48,
        (1 << 56) | 42,
        u64::MAX - 1,
        u64::MAX,
    ];
    // Insert in a scrambled order with duplicates for tie coverage.
    for &ns in times.iter().rev() {
        h.push(ns);
        h.push(ns);
    }
    h.check_len();
    h.drain();
}
