//! Integer-nanosecond simulation time.
//!
//! All packet-level simulation state is ordered by [`SimTime`], a `u64`
//! nanosecond counter starting at zero. Using integers (rather than `f64`
//! seconds) makes event ordering exact: two packets scheduled from the same
//! arithmetic always land in the same order on every platform, which is a
//! prerequisite for the reproducibility claims of the experiment harness.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point seconds (for plotting / fluid-model interop).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Time as floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration as floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor (saturating).
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The wire time needed to serialize `bytes` at `bits_per_sec`, rounded
    /// up to the next nanosecond so links never transmit faster than rated.
    ///
    /// This is the single conversion point between "bandwidth" and "time" in
    /// the simulator; keeping it here avoids scattered, slightly different
    /// roundings.
    pub fn serialization(bytes: u64, bits_per_sec: f64) -> SimDuration {
        assert!(bits_per_sec > 0.0, "bandwidth must be positive");
        let ns = (bytes as f64 * 8.0 * 1e9 / bits_per_sec).ceil() as u64;
        SimDuration(ns)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow")) // simlint: allow(panic, no-unwrap-sim) — overflow is a programming error
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration")) // simlint: allow(panic, no-unwrap-sim) — underflow is a programming error
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow")) // simlint: allow(panic, no-unwrap-sim) — underflow is a programming error
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow")) // simlint: allow(panic, no-unwrap-sim) — overflow is a programming error
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration")) // simlint: allow(panic, no-unwrap-sim) — underflow is a programming error
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_nanos(2_000_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5e-6), SimTime::from_nanos(1_500));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1000 bytes at 10 Gbps = 800 ns exactly.
        assert_eq!(
            SimDuration::serialization(1000, 10e9),
            SimDuration::from_nanos(800)
        );
        // 1 byte at 3 Gbps = 2.666..ns, must round up to 3.
        assert_eq!(
            SimDuration::serialization(1, 3e9),
            SimDuration::from_nanos(3)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(7)), "7ns");
        assert_eq!(format!("{}", SimDuration::from_micros(55)), "55.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn seconds_conversion() {
        let t = SimTime::from_secs_f64(0.25);
        assert!((t.as_secs_f64() - 0.25).abs() < 1e-12);
        assert!((t.as_micros_f64() - 250_000.0).abs() < 1e-6);
    }
}
