//! Reference event queue: the pre-wheel binary-heap implementation.
//!
//! This is the original `EventQueue` — a binary min-heap keyed on
//! `(time, seq)` with a `BTreeSet` tombstone set for cancellation — retained
//! verbatim as the **oracle** for the timing wheel's differential property
//! test (`tests/wheel_differential.rs`) and for the `event_queue/wheel_*`
//! before/after bench rows. It is deliberately simple and obviously correct
//! for the orderings the simulator relies on; it is *not* used by any
//! simulation path.
//!
//! Known oracle limitation, inherited from the original: `cancel` on an id
//! that has already fired still inserts a tombstone and decrements `len`.
//! The differential test therefore only cancels ids it knows are pending —
//! which is also the only pattern the engine ever used. The wheel detects
//! fired ids exactly (arena generations) and is strictly better here.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

/// Opaque handle to an event scheduled on the reference queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefEventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Ordering considers only (time, seq); the payload never participates, so
// `E` needs no trait bounds.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

/// The heap + tombstone-set queue, API-compatible with
/// [`crate::EventQueue`] (modulo the id type).
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    len: usize,
    last_popped: SimTime,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            len: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `payload` at absolute time `time`, returning a cancellable id.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> RefEventId {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        self.len += 1;
        RefEventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if a tombstone
    /// was inserted (see the module docs for the fired-id caveat).
    pub fn cancel(&mut self, id: RefEventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) {
            self.len = self.len.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse(entry) = self.heap.pop()?;
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.len -= 1;
            crate::invariants::monotonic_time(
                "ReferenceEventQueue::pop",
                self.last_popped,
                entry.time,
            );
            self.last_popped = entry.time;
            return Some((entry.time, entry.payload));
        }
    }

    /// Drop cancelled entries sitting at the top of the heap so `peek_time`
    /// reports a live event.
    fn skim_cancelled(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn orders_by_time_with_fifo_ties() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(10), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_pending_and_peek() {
        let mut q = ReferenceEventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
    }
}
