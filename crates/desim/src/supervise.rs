//! Supervised fork-join execution: panic isolation, deadlines, retries.
//!
//! [`crate::par::par_map_fallible`] gives sweeps graceful degradation for
//! *typed* failures — a divergent point comes back as `Err` in its slot —
//! but two failure modes still take down the whole run: a panicking job
//! aborts the process, and a hung job stalls the pool forever. This module
//! is the hardened executor for sweeps that must survive both:
//!
//! * **Panic isolation** — each job runs under `catch_unwind`; a panic
//!   becomes `E::job_panicked(index, payload message)` in that job's slot
//!   while its batchmates keep running.
//! * **Deadlines** — with [`SupervisePolicy::deadline_s`] set, a watchdog
//!   thread fills an overdue slot with `E::job_timeout(index, deadline)`
//!   and spawns a replacement worker. Std threads cannot be killed, so the
//!   hung thread is *abandoned*: it keeps its OS thread until process exit
//!   and its late result (if any) is discarded. The deadline carried in
//!   the error is the *configured* value, never a wall-clock measurement —
//!   supervision may read the clock to act, but nothing clock-derived
//!   enters a result payload (the `determinism-taint` contract).
//! * **Bounded deterministic retries** — an `Err` the caller marks
//!   retryable is re-run immediately on the same worker, up to
//!   [`SupervisePolicy::max_attempts`] total attempts; the retry sequence
//!   depends only on the job, never on scheduling.
//! * **Quarantine** — jobs that exhaust every attempt (or panic, or time
//!   out) are listed in [`SuperviseReport::quarantined`] so sweep drivers
//!   can record the poisoned specs durably.
//!
//! Ordered result slots are preserved: job *i*'s outcome lands in slot *i*
//! regardless of worker count, so successful-slot bytes are identical
//! across `SIM_THREADS` exactly as with [`crate::par::par_map`]. Errors in
//! `desim` stay type-generic ([`SupervisedError`]) because the workspace
//! error type lives *above* this crate (`faults::SimError` implements the
//! trait); the executor only needs to construct the two supervision
//! verdicts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Errors an executor can construct for supervision verdicts. Implemented
/// by `faults::SimError` (variants `JobPanicked` / `Timeout`).
pub trait SupervisedError: Sized {
    /// The job at `job_index` panicked; `payload` is the panic message.
    fn job_panicked(job_index: usize, payload: String) -> Self;
    /// The job at `job_index` exceeded the per-job deadline and was
    /// abandoned. `deadline_s` is the configured deadline, not a
    /// measurement.
    fn job_timeout(job_index: usize, deadline_s: f64) -> Self;
}

/// Supervision knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisePolicy {
    /// Per-job wall-clock deadline in seconds; `None` disables the
    /// watchdog (jobs may then hang the pool, exactly like `par_map`).
    pub deadline_s: Option<f64>,
    /// Total attempts per job (1 = no retries). Only errors the caller's
    /// `retryable` predicate accepts are retried; panics and timeouts
    /// never are.
    pub max_attempts: u32,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            deadline_s: None,
            max_attempts: 1,
        }
    }
}

/// Outcome of a supervised sweep.
#[derive(Debug)]
pub struct SuperviseReport<O, E> {
    /// Per-job outcomes in input order, every slot filled.
    pub results: Vec<Result<O, E>>,
    /// Input indices that exhausted supervision (panicked, timed out, or
    /// failed every permitted attempt), ascending.
    pub quarantined: Vec<usize>,
}

enum Slot<O, E> {
    Pending,
    Done(Result<O, E>),
}

struct Shared<I, O, E> {
    jobs: Vec<Mutex<Option<I>>>,
    slots: Vec<Mutex<Slot<O, E>>>,
    /// `Some(start)` while an attempt for the slot is on a worker.
    started: Vec<Mutex<Option<Instant>>>,
    next: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
    quarantined: Mutex<Vec<usize>>,
    stop_watchdog: AtomicBool,
    policy: SupervisePolicy,
    trace_parent: u64,
}

/// Render a panic payload as the human-readable message `panic!` carried.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Map a fallible `worker` over `jobs` under supervision (see module docs).
/// Results come back in input order with every slot filled; successful
/// slots are byte-identical across `SIM_THREADS` settings.
///
/// `retryable` classifies worker errors: `true` means "transient, worth
/// re-running" (retried up to `policy.max_attempts` total attempts).
/// Deterministic simulation errors should return `false` — a deterministic
/// job fails identically every time.
pub fn par_map_supervised<I, O, E, F, R>(
    jobs: Vec<I>,
    policy: SupervisePolicy,
    retryable: R,
    worker: F,
) -> SuperviseReport<O, E>
where
    I: Clone + Send + 'static,
    O: Send + 'static,
    E: SupervisedError + Send + 'static,
    F: Fn(I) -> Result<O, E> + Send + Sync + 'static,
    R: Fn(&E) -> bool + Send + Sync + 'static,
{
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return SuperviseReport {
            results: Vec::new(),
            quarantined: Vec::new(),
        };
    }
    let shared = Arc::new(Shared {
        jobs: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
        slots: (0..n_jobs).map(|_| Mutex::new(Slot::Pending)).collect(),
        started: (0..n_jobs).map(|_| Mutex::new(None)).collect(),
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        done_cv: Condvar::new(),
        quarantined: Mutex::new(Vec::new()),
        stop_watchdog: AtomicBool::new(false),
        policy,
        trace_parent: obs::trace::current_context(),
    });
    let worker = Arc::new(worker);
    let retryable = Arc::new(retryable);

    // Detached workers (not scoped): a hung job must not be able to block
    // the join, so the pool owner waits on a completion count instead.
    let threads = crate::par::worker_count().min(n_jobs).max(1);
    for _ in 0..threads {
        spawn_worker(shared.clone(), worker.clone(), retryable.clone());
    }
    if policy.deadline_s.is_some() {
        spawn_watchdog(shared.clone(), worker.clone(), retryable.clone());
    }

    // Wait until every slot is filled (by a worker or the watchdog).
    {
        let mut done = lock_ignore_poison(&shared.done);
        while *done < n_jobs {
            done = shared
                .done_cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    shared.stop_watchdog.store(true, Ordering::Relaxed);

    let mut results = Vec::with_capacity(n_jobs);
    for slot in &shared.slots {
        let mut guard = lock_ignore_poison(slot);
        match std::mem::replace(&mut *guard, Slot::Pending) {
            Slot::Done(r) => results.push(r),
            // Unreachable: the done count equals n_jobs only after every
            // slot transitioned to Done.
            Slot::Pending => results.push(Err(E::job_panicked(
                results.len(),
                "internal: unfilled supervised slot".to_string(),
            ))),
        }
    }
    let mut quarantined = lock_ignore_poison(&shared.quarantined).clone();
    quarantined.sort_unstable();
    quarantined.dedup();
    SuperviseReport {
        results,
        quarantined,
    }
}

/// Commit `result` into `slot idx` unless the watchdog already filled it
/// (late result of an abandoned attempt: discarded). Returns true if the
/// commit landed.
fn commit<I, O, E>(shared: &Shared<I, O, E>, idx: usize, result: Result<O, E>) -> bool {
    {
        let mut slot = lock_ignore_poison(&shared.slots[idx]);
        match *slot {
            Slot::Pending => *slot = Slot::Done(result),
            Slot::Done(_) => return false,
        }
    }
    let mut done = lock_ignore_poison(&shared.done);
    *done += 1;
    shared.done_cv.notify_all();
    true
}

fn spawn_worker<I, O, E, F, R>(shared: Arc<Shared<I, O, E>>, worker: Arc<F>, retryable: Arc<R>)
where
    I: Clone + Send + 'static,
    O: Send + 'static,
    E: SupervisedError + Send + 'static,
    F: Fn(I) -> Result<O, E> + Send + Sync + 'static,
    R: Fn(&E) -> bool + Send + Sync + 'static,
{
    std::thread::spawn(move || {
        let n_jobs = shared.jobs.len();
        loop {
            let idx = shared.next.fetch_add(1, Ordering::Relaxed);
            if idx >= n_jobs {
                break;
            }
            let Some(input) = lock_ignore_poison(&shared.jobs[idx]).take() else {
                continue; // claimed by a pre-timeout attempt; nothing to do
            };
            run_job(&shared, idx, input, worker.as_ref(), retryable.as_ref());
        }
    });
}

/// Run one job to a final verdict (attempt loop + panic isolation) and
/// commit it.
fn run_job<I, O, E, F, R>(shared: &Shared<I, O, E>, idx: usize, input: I, worker: &F, retryable: &R)
where
    I: Clone,
    E: SupervisedError,
    F: Fn(I) -> Result<O, E>,
    R: Fn(&E) -> bool,
{
    let max_attempts = shared.policy.max_attempts.max(1);
    let mut attempt = 0u32;
    let (final_result, exhausted) = loop {
        attempt += 1;
        // simlint: allow(determinism-taint) — supervision bookkeeping, not sim state: the start mark only arms the watchdog, and no clock reading ever enters a result (timeouts carry the configured deadline)
        *lock_ignore_poison(&shared.started[idx]) = Some(Instant::now());
        // The job runs under the same per-index obs context discipline as
        // `par_map`, with `catch_unwind` *inside* the context scope so a
        // panic unwinds through the restore guards.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            obs::trace::with_context(
                obs::trace::child_context(shared.trace_parent, idx as u64),
                || obs::flight::with_clean_cause(|| worker(input.clone())),
            )
        }));
        *lock_ignore_poison(&shared.started[idx]) = None;
        match caught {
            Ok(Ok(v)) => break (Ok(v), false),
            Ok(Err(e)) => {
                if attempt < max_attempts && retryable(&e) {
                    obs::flight::record(0.0, "job_retry", idx as f64, None);
                    continue;
                }
                // Exhausted = the policy permitted retries and this error
                // class used them all up, or the job is poison (panic and
                // timeout verdicts are always quarantined elsewhere).
                break (Err(e), attempt >= max_attempts && max_attempts > 1);
            }
            Err(payload) => {
                obs::flight::record(0.0, "job_panicked", idx as f64, None);
                break (Err(E::job_panicked(idx, panic_message(payload))), true);
            }
        }
    };
    let failed = final_result.is_err();
    if commit(shared, idx, final_result) && failed && exhausted {
        obs::flight::record(0.0, "job_quarantined", idx as f64, None);
        lock_ignore_poison(&shared.quarantined).push(idx);
    }
}

fn spawn_watchdog<I, O, E, F, R>(shared: Arc<Shared<I, O, E>>, worker: Arc<F>, retryable: Arc<R>)
where
    I: Clone + Send + 'static,
    O: Send + 'static,
    E: SupervisedError + Send + 'static,
    F: Fn(I) -> Result<O, E> + Send + Sync + 'static,
    R: Fn(&E) -> bool + Send + Sync + 'static,
{
    // Unwrap-free clamp: policy.deadline_s is Some by the caller's check.
    let deadline_s = shared.policy.deadline_s.unwrap_or(f64::INFINITY);
    let poll = Duration::from_secs_f64((deadline_s / 8.0).clamp(0.005, 0.2));
    std::thread::spawn(move || loop {
        if shared.stop_watchdog.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(poll);
        for idx in 0..shared.slots.len() {
            let overdue = {
                let started = lock_ignore_poison(&shared.started[idx]);
                started.is_some_and(|t0| t0.elapsed().as_secs_f64() > deadline_s)
            };
            if !overdue {
                continue;
            }
            // Abandon the attempt: clear the start mark so this slot never
            // re-fires, then fill the slot with the timeout verdict. The
            // hung worker thread is leaked by design (std threads cannot
            // be killed); its claim loop is replaced so the rest of the
            // queue still drains.
            *lock_ignore_poison(&shared.started[idx]) = None;
            let verdict = E::job_timeout(idx, deadline_s);
            if commit(shared.as_ref(), idx, Err(verdict)) {
                obs::flight::record(0.0, "job_timeout", idx as f64, None);
                obs::flight::record(0.0, "job_quarantined", idx as f64, None);
                lock_ignore_poison(&shared.quarantined).push(idx);
                spawn_worker(shared.clone(), worker.clone(), retryable.clone());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::with_threads;

    /// Minimal trait impl for tests; the workspace impl is
    /// `faults::SimError`.
    #[derive(Debug, Clone, PartialEq)]
    enum TestErr {
        Typed(String),
        Panicked(usize, String),
        Timeout(usize, f64),
    }

    impl SupervisedError for TestErr {
        fn job_panicked(job_index: usize, payload: String) -> Self {
            TestErr::Panicked(job_index, payload)
        }
        fn job_timeout(job_index: usize, deadline_s: f64) -> Self {
            TestErr::Timeout(job_index, deadline_s)
        }
    }

    fn no_retry(_: &TestErr) -> bool {
        false
    }

    #[test]
    fn ordered_slots_and_identity_across_thread_counts() {
        let run = |threads: usize| {
            with_threads(threads, || {
                par_map_supervised(
                    (0..24u64).collect(),
                    SupervisePolicy::default(),
                    no_retry,
                    |i| {
                        if i % 7 == 3 {
                            Err(TestErr::Typed(format!("point {i}")))
                        } else {
                            Ok(i * i)
                        }
                    },
                )
            })
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.results, par.results);
        assert_eq!(serial.results.len(), 24);
        assert_eq!(serial.results[4], Ok(16));
        assert_eq!(serial.results[3], Err(TestErr::Typed("point 3".into())));
        assert!(serial.quarantined.is_empty(), "no retries ⇒ no quarantine");
    }

    #[test]
    fn panic_lands_in_its_slot_while_batchmates_complete() {
        let report = with_threads(4, || {
            par_map_supervised(
                (0..8u64).collect(),
                SupervisePolicy::default(),
                no_retry,
                |i| {
                    if i == 5 {
                        panic!("poisoned spec {i}");
                    }
                    Ok::<_, TestErr>(i + 1)
                },
            )
        });
        assert_eq!(report.results.len(), 8);
        for (idx, r) in report.results.iter().enumerate() {
            if idx == 5 {
                assert_eq!(r, &Err(TestErr::Panicked(5, "poisoned spec 5".to_string())));
            } else {
                assert_eq!(r, &Ok(idx as u64 + 1));
            }
        }
        assert_eq!(report.quarantined, vec![5]);
    }

    #[test]
    fn hung_job_times_out_without_stalling_the_sweep() {
        let report = with_threads(2, || {
            par_map_supervised(
                (0..6u64).collect(),
                SupervisePolicy {
                    deadline_s: Some(0.2),
                    max_attempts: 1,
                },
                no_retry,
                |i| {
                    if i == 2 {
                        // A genuine hang, not a slow job.
                        loop {
                            std::thread::sleep(Duration::from_millis(50));
                        }
                    }
                    Ok::<_, TestErr>(i)
                },
            )
        });
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.results[2], Err(TestErr::Timeout(2, 0.2)));
        for (idx, r) in report.results.iter().enumerate() {
            if idx != 2 {
                assert_eq!(r, &Ok(idx as u64), "batchmates must complete");
            }
        }
        assert_eq!(report.quarantined, vec![2]);
    }

    #[test]
    fn retries_are_bounded_and_only_for_retryable_errors() {
        use std::sync::atomic::AtomicU32;
        let attempts: Arc<Vec<AtomicU32>> = Arc::new((0..3).map(|_| AtomicU32::new(0)).collect());
        let seen = attempts.clone();
        let report = with_threads(2, || {
            par_map_supervised(
                vec![0usize, 1, 2],
                SupervisePolicy {
                    deadline_s: None,
                    max_attempts: 3,
                },
                |e: &TestErr| matches!(e, TestErr::Typed(m) if m.contains("transient")),
                move |i| {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                    match i {
                        0 => Ok(0u64),
                        1 => Err(TestErr::Typed("transient glitch".into())),
                        _ => Err(TestErr::Typed("deterministic failure".into())),
                    }
                },
            )
        });
        assert_eq!(attempts[0].load(Ordering::Relaxed), 1);
        assert_eq!(attempts[1].load(Ordering::Relaxed), 3, "retried to budget");
        assert_eq!(attempts[2].load(Ordering::Relaxed), 1, "not retryable");
        assert!(matches!(report.results[1], Err(TestErr::Typed(_))));
        assert_eq!(report.quarantined, vec![1], "exhausted retries quarantine");
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let report = par_map_supervised(
            Vec::<u64>::new(),
            SupervisePolicy::default(),
            no_retry,
            Ok::<_, TestErr>,
        );
        assert!(report.results.is_empty());
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn trace_contexts_follow_input_index_not_thread() {
        let run = |threads: usize| -> String {
            obs::trace::reset();
            obs::trace::enable();
            let _ = with_threads(threads, || {
                par_map_supervised(
                    (0..12u64).collect(),
                    SupervisePolicy::default(),
                    no_retry,
                    |i| {
                        obs::trace::record(i as f64, obs::Event::CnpSent { flow: i });
                        Ok::<_, TestErr>(i)
                    },
                )
            });
            obs::trace::disable();
            let out = obs::trace::export_jsonl();
            obs::trace::reset();
            out
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.lines().count(), 12);
        assert_eq!(serial, par);
    }
}
