//! Debug-assertion invariant layer.
//!
//! The static simlint pass (crates/xtask) keeps nondeterminism and silent
//! unit errors out of the source; this module is its runtime complement — a
//! set of `debug_assert!`-based checks that pin the dynamic invariants the
//! simulators rely on:
//!
//! * event time never flows backwards ([`monotonic_time`]),
//! * queues stay non-negative and bounded ([`bounded_queue`]),
//! * rates stay finite and non-negative ([`finite_rate`]),
//! * fluid state vectors stay finite ([`finite_state`]),
//! * DCQCN's `α` stays in `[0, 1]` ([`unit_interval`]).
//!
//! All checks compile to nothing in release builds, so they cost nothing in
//! experiment runs while making `cargo test` (which builds with
//! `debug-assertions` on) a continuous audit of the simulator state.

use crate::time::SimTime;

/// Event/timestamp monotonicity: `next` must not precede `prev`.
#[inline]
pub fn monotonic_time(context: &str, prev: SimTime, next: SimTime) {
    debug_assert!(
        next >= prev,
        "{context}: time ran backwards ({next:?} < {prev:?})"
    );
}

/// A queue occupancy must be non-negative, finite, and below `cap` (use
/// `f64::INFINITY` for an unbounded queue).
#[inline]
pub fn bounded_queue(context: &str, occupancy: f64, cap: f64) {
    debug_assert!(
        occupancy >= 0.0 && occupancy.is_finite(),
        "{context}: queue occupancy {occupancy} is negative or non-finite"
    );
    debug_assert!(
        occupancy <= cap,
        "{context}: queue occupancy {occupancy} exceeds bound {cap}"
    );
}

/// A rate (bps, pps, …) must be finite and non-negative.
#[inline]
// simlint: allow(unit-suffix) — deliberately unit-agnostic: finiteness holds in any unit
pub fn finite_rate(context: &str, rate: f64) {
    debug_assert!(
        rate.is_finite() && rate >= 0.0,
        "{context}: rate {rate} is negative or non-finite"
    );
}

/// Every component of a state vector must be finite (no NaN/±inf): a DDE
/// integration that diverges should fail loudly, not produce a quietly
/// garbage trace.
#[inline]
pub fn finite_state(context: &str, t: f64, x: &[f64]) {
    debug_assert!(
        x.iter().all(|v| v.is_finite()),
        "{context}: non-finite state at t={t}: {x:?}"
    );
}

/// A value specified to live in `[0, 1]` (probabilities, DCQCN's `α`).
#[inline]
pub fn unit_interval(context: &str, v: f64) {
    debug_assert!(
        (0.0..=1.0).contains(&v),
        "{context}: value {v} outside [0, 1]"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_are_silent() {
        monotonic_time("t", SimTime::from_nanos(1), SimTime::from_nanos(1));
        monotonic_time("t", SimTime::from_nanos(1), SimTime::from_nanos(2));
        bounded_queue("q", 0.0, f64::INFINITY);
        bounded_queue("q", 10.0, 10.0);
        finite_rate("r", 0.0);
        finite_rate("r", 40e9);
        finite_state("x", 0.0, &[1.0, -2.0, 0.0]);
        unit_interval("a", 0.0);
        unit_interval("a", 1.0);
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn backwards_time_panics_in_debug() {
        monotonic_time("t", SimTime::from_nanos(2), SimTime::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn alpha_above_one_panics_in_debug() {
        unit_interval("alpha", 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-finite state")]
    fn nan_state_panics_in_debug() {
        finite_state("x", 0.5, &[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "exceeds bound")]
    fn overflowing_queue_panics_in_debug() {
        bounded_queue("q", 11.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn infinite_rate_panics_in_debug() {
        finite_rate("r", f64::INFINITY);
    }
}
