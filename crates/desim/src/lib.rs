//! # desim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the packet-level simulator used to
//! reproduce the CoNEXT'16 paper *"ECN or Delay: Lessons Learnt from Analysis
//! of DCQCN and TIMELY"*. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulation time with
//!   convenient constructors (`SimDuration::micros(50)`) and exact arithmetic,
//!   so event ordering is never subject to floating-point noise;
//! * [`EventQueue`] — a hierarchical timing wheel (8 levels × 256 slots,
//!   per-level occupancy bitmaps, arena-backed entries) with a monotonically
//!   increasing tie-break sequence number, guaranteeing **deterministic**
//!   FIFO ordering among simultaneous events at O(1) amortized push/pop and
//!   O(1) cancel; the pre-wheel binary-heap queue survives as
//!   [`event_ref::ReferenceEventQueue`], the oracle for the differential
//!   property test;
//! * [`rng::SimRng`] — a small, seedable xoshiro256** generator so every
//!   experiment is exactly reproducible from its seed;
//! * [`stats`] — online statistics (time-weighted averages, percentile
//!   estimation over exact samples, histograms) used for queue occupancy and
//!   flow-completion-time reporting;
//! * [`par`] — deterministic ordered fork-join (`par_map` over scoped
//!   threads) for embarrassingly-parallel sweeps; the only sanctioned use of
//!   `std::thread` in the simulation crates (`SIM_THREADS` pins the worker
//!   count, results always come back in input order).
//!
//! The kernel deliberately contains **no networking concepts**: links,
//! switches and protocols live in the `netsim` and `protocols` crates. This
//! mirrors the separation in mature event-driven stacks (cf. smoltcp's
//! "simplicity and robustness" design goals): the kernel is small enough to
//! be exhaustively tested, and everything above it is pure library code.

#![deny(missing_docs)]

pub mod event;
pub mod event_ref;
pub mod invariants;
pub mod par;
pub mod rng;
pub mod stats;
pub mod supervise;
pub mod time;

pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
