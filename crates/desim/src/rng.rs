//! Seedable pseudo-random number generation for reproducible experiments.
//!
//! We implement xoshiro256\*\* (Blackman & Vigna) directly rather than pull
//! the full `rand` crate into the kernel: the simulator only needs uniform
//! u64/f64, ranges, and exponential variates, and owning the generator
//! guarantees the byte-for-byte stream never changes under dependency
//! upgrades — experiment outputs are part of the repository's contract.

/// A xoshiro256\*\* generator. Deterministic given its seed.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed, expanded with splitmix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        // An all-zero state would be absorbing; splitmix cannot produce four
        // zeros from any seed, but belt-and-braces:
        if s == [0, 0, 0, 0] {
            s[0] = 1; // any nonzero lane escapes the absorbing state
        }
        SimRng { s }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)` using Lemire's unbiased method.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "uniform range inverted");
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponential variate with the given mean (inverse of the rate). Used
    /// for Poisson flow interarrival times in the FCT experiments.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - U in (0,1] avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fork an independent stream (for per-component RNGs) by hashing the
    /// current state with a stream label. Deterministic.
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let x = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn next_below_unbiased_coverage() {
        let mut r = SimRng::new(11);
        let mut seen = [0u32; 10];
        for _ in 0..100_000 {
            seen[r.next_below(10) as usize] += 1;
        }
        for &c in &seen {
            // Each bucket expects 10_000; allow generous slack.
            assert!((8_000..12_000).contains(&c), "biased bucket: {c}");
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(13);
        let mean = 250.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() / mean < 0.02, "mean estimate {est}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }
}
