//! Deterministic fork-join parallelism for embarrassingly-parallel sweeps.
//!
//! Every headline result of the paper is a sweep — phase margins over
//! `delay × N`, DDE integrations over flow counts, FCT scans over load — and
//! every sweep point is independent. [`par_map`] runs such a job list over a
//! scoped-thread pool and returns the results **in input order**, so the
//! output of a sweep is byte-identical regardless of the worker count or OS
//! scheduling. This is the *only* place in the simulation workspace allowed
//! to touch `std::thread` (enforced by the `thread-spawn` simlint rule):
//! replicas stay reproducible because
//!
//! * job *i*'s result always lands in slot *i* — thread interleaving decides
//!   only wall-clock, never output order;
//! * workers share nothing but the job list — per-job state (RNG seeds,
//!   model instances) is constructed inside the job from its input;
//! * the worker count is data-independent: `SIM_THREADS` (or
//!   [`with_threads`]) pins it, otherwise `available_parallelism()` is used.
//!
//! Determinism CI checks run with `SIM_THREADS=1` forced and compare against
//! a multi-threaded run.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Scoped worker-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with the worker count pinned to `n` on this thread (nested
/// [`par_map`] calls included). Used by determinism tests to compare
/// `SIM_THREADS=1` against multi-threaded execution without mutating
/// process-global environment from concurrently-running tests.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let out = f();
    THREAD_OVERRIDE.with(|c| c.set(prev));
    out
}

thread_local! {
    /// Scoped batch-path override installed by [`with_batch`].
    static BATCH_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Run `f` with the batched-integration path forced on or off on this
/// thread. Identity tests use this to compare the batch path against the
/// scalar path without mutating process-global environment.
pub fn with_batch<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    let prev = BATCH_OVERRIDE.with(|c| c.replace(Some(enabled)));
    let out = f();
    BATCH_OVERRIDE.with(|c| c.set(prev));
    out
}

/// Whether sweep drivers should use the batched lockstep DDE path: a
/// [`with_batch`] override if one is active, else `SIM_BATCH` from the
/// environment (`0` disables), else on. The batch path is proven
/// bit-identical to the scalar path, so this knob exists for A/B checks and
/// emergency rollback, not correctness.
pub fn batch_enabled() -> bool {
    if let Some(b) = BATCH_OVERRIDE.with(Cell::get) {
        return b;
    }
    if let Ok(v) = std::env::var("SIM_BATCH") {
        return v.trim() != "0";
    }
    true
}

/// The worker count [`par_map`] will use: a [`with_threads`] override if one
/// is active, else `SIM_THREADS` from the environment, else
/// `available_parallelism()`. Always at least 1.
pub fn worker_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Ok(v) = std::env::var("SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `worker` over `jobs` on a scoped fork-join pool; results are returned
/// in input order. With one worker (or one job) no threads are spawned and
/// the jobs run inline on the caller, so `SIM_THREADS=1` is *exactly* the
/// serial program.
///
/// ```
/// let squares = desim::par::par_map((0u64..8).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<I, O, F>(jobs: Vec<I>, worker: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n_jobs = jobs.len();
    let threads = worker_count().min(n_jobs);
    // Each job records trace events under a context derived from its *input
    // index* (never from the worker thread), so an enabled `obs` trace is
    // byte-identical across worker counts — including this inline path.
    let trace_parent = obs::trace::current_context();
    if threads <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| {
                obs::trace::with_context(
                    obs::trace::child_context(trace_parent, idx as u64),
                    // Causal flight chains must not leak across jobs either.
                    || obs::flight::with_clean_cause(|| worker(job)),
                )
            })
            .collect();
    }

    // Shared single-consumer job slots + ordered result slots. Each slot's
    // mutex is taken exactly once per side, so contention is limited to the
    // shared `next` counter; result placement by input index is what makes
    // the output independent of scheduling.
    let job_slots: Vec<Mutex<Option<I>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<O>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    // simlint: allow(thread-spawn) — desim::par IS the sanctioned executor.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            // simlint: allow(thread-spawn) — desim::par IS the sanctioned executor.
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n_jobs {
                    break;
                }
                let job = job_slots[idx]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                // simlint: allow(panic, no-unwrap-sim) — slot idx is claimed exactly once via the counter
                let job = job.expect("job slot claimed twice");
                let out = obs::trace::with_context(
                    obs::trace::child_context(trace_parent, idx as u64),
                    // Worker threads are reused across jobs; start each job
                    // with a clean causal chain so flight back-pointers stay
                    // per-context (and thread-count independent).
                    || obs::flight::with_clean_cause(|| worker(job)),
                );
                *result_slots[idx]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        }
    });

    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // simlint: allow(panic, no-unwrap-sim) — scope() propagates worker panics; every slot is filled
                .expect("scope joined with an unfilled result slot")
        })
        .collect()
}

/// Chunked [`par_map`]: split `jobs` into consecutive chunks of (at most)
/// `chunk` items, map `worker` over whole chunks in parallel, and flatten
/// the per-chunk outputs back into input order. `worker` must return exactly
/// one output per input (checked).
///
/// This is the dispatch shape for batched lockstep integration: each chunk
/// becomes one batch of lanes integrated simultaneously, while chunks still
/// spread over the [`par_map`] pool. Because chunk boundaries depend only on
/// `jobs.len()` and `chunk`, the output is byte-identical across worker
/// counts, exactly like [`par_map`].
pub fn par_map_chunked<I, O, F>(jobs: Vec<I>, chunk: usize, worker: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(Vec<I>) -> Vec<O> + Sync,
{
    assert!(chunk >= 1, "chunk size must be at least 1");
    let n_jobs = jobs.len();
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n_jobs.div_ceil(chunk));
    let mut it = jobs.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
    let outs = par_map(chunks, &worker);
    let mut flat = Vec::with_capacity(n_jobs);
    for (out, expect) in outs.into_iter().zip(sizes) {
        assert_eq!(
            out.len(),
            expect,
            "chunk worker must return one output per input"
        );
        flat.extend(out);
    }
    flat
}

/// [`par_map`] for fallible workers: every job runs to completion — a failed
/// point never cancels the rest of the sweep — and the per-job `Result`s come
/// back in input order for the caller to partition (see
/// [`partition_results`]). This is the graceful-degradation contract for
/// sweep drivers: a divergent fluid point is recorded as `Err` while the
/// remaining points still produce figures.
pub fn par_map_fallible<I, O, E, F>(jobs: Vec<I>, worker: F) -> Vec<Result<O, E>>
where
    I: Send,
    O: Send,
    E: Send,
    F: Fn(I) -> Result<O, E> + Sync,
{
    par_map(jobs, worker)
}

/// Split fallible sweep results into ordered successes and `(input index,
/// error)` failures.
pub fn partition_results<O, E>(results: Vec<Result<O, E>>) -> (Vec<O>, Vec<(usize, E)>) {
    let mut ok = Vec::with_capacity(results.len());
    let mut failed = Vec::new();
    for (idx, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => ok.push(v),
            Err(e) => failed.push((idx, e)),
        }
    }
    (ok, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        // Jobs finish out of order (reverse workloads); results must not.
        let jobs: Vec<u64> = (0..64).collect();
        let out = with_threads(8, || {
            par_map(jobs, |i| {
                // Busy-work inversely proportional to index.
                let mut acc = i;
                for _ in 0..(64 - i) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            })
        });
        for (idx, &(i, _)) in out.iter().enumerate() {
            assert_eq!(idx as u64, i);
        }
    }

    #[test]
    fn thread_counts_agree() {
        let jobs: Vec<u64> = (0..33).collect();
        let serial = with_threads(1, || par_map(jobs.clone(), |i| i * i + 1));
        let par4 = with_threads(4, || par_map(jobs.clone(), |i| i * i + 1));
        let par16 = with_threads(16, || par_map(jobs, |i| i * i + 1));
        assert_eq!(serial, par4);
        assert_eq!(serial, par16);
    }

    #[test]
    fn empty_and_single_job() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(empty, |i: u64| i).is_empty());
        assert_eq!(with_threads(8, || par_map(vec![7u64], |i| i + 1)), vec![8]);
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(worker_count(), 3);
            with_threads(5, || assert_eq!(worker_count(), 5));
            assert_eq!(worker_count(), 3);
        });
    }

    #[test]
    fn override_floor_is_one() {
        with_threads(0, || assert_eq!(worker_count(), 1));
    }

    #[test]
    fn trace_contexts_follow_input_index_not_thread() {
        // One trace event per job: the export must be byte-identical between
        // the inline serial path and an 8-worker pool, because contexts are
        // derived from input indices, never from threads.
        let run = |threads: usize| -> String {
            obs::trace::reset();
            obs::trace::enable();
            let _ = with_threads(threads, || {
                par_map((0..16u64).collect(), |i| {
                    obs::trace::record(i as f64, obs::Event::CnpSent { flow: i });
                    i
                })
            });
            obs::trace::disable();
            let out = obs::trace::export_jsonl();
            obs::trace::reset();
            out
        };
        let serial = run(1);
        let par = run(8);
        assert_eq!(serial.lines().count(), 16);
        assert_eq!(serial, par);
    }

    #[test]
    fn non_send_sync_free_worker_with_captures() {
        let offset = 100u64;
        let out = with_threads(4, || par_map((0..10).collect(), |i: u64| i + offset));
        assert_eq!(out[9], 109);
    }

    #[test]
    fn chunked_map_preserves_order_across_thread_counts() {
        let jobs: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = jobs.iter().map(|i| i * 3 + 1).collect();
        for threads in [1usize, 4] {
            for chunk in [1usize, 5, 16, 64] {
                let out = with_threads(threads, || {
                    par_map_chunked(jobs.clone(), chunk, |c: Vec<u64>| {
                        c.into_iter().map(|i| i * 3 + 1).collect()
                    })
                });
                assert_eq!(out, expect, "threads={threads} chunk={chunk}");
            }
        }
        // Empty input stays empty.
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_chunked(empty, 8, |c: Vec<u64>| c).is_empty());
    }

    #[test]
    #[should_panic(expected = "one output per input")]
    fn chunked_map_rejects_wrong_arity() {
        let _ = par_map_chunked(vec![1u64, 2, 3], 2, |_c: Vec<u64>| vec![0u64]);
    }

    #[test]
    fn batch_override_scopes_and_restores() {
        // Note: no SIM_BATCH manipulation here (env is process-global);
        // the override path is what tests exercise.
        with_batch(false, || {
            assert!(!batch_enabled());
            with_batch(true, || assert!(batch_enabled()));
            assert!(!batch_enabled());
        });
    }

    #[test]
    fn fallible_sweep_survives_failed_points() {
        let jobs: Vec<u64> = (0..32).collect();
        let results = with_threads(4, || {
            par_map_fallible(jobs, |i| {
                if i % 7 == 3 {
                    Err(format!("point {i} diverged"))
                } else {
                    Ok(i * 2)
                }
            })
        });
        assert_eq!(results.len(), 32, "every job produced a result");
        let (ok, failed) = partition_results(results);
        assert_eq!(failed.len(), 5); // 3, 10, 17, 24, 31
        assert_eq!(ok.len(), 27);
        assert_eq!(failed[0], (3, "point 3 diverged".to_string()));
        // Order is preserved for both halves regardless of scheduling.
        assert!(failed.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(ok[0], 0);
        assert_eq!(ok[26], 60); // last success is i = 30
    }
}
