//! Online statistics used by the experiment harness.
//!
//! Three collectors cover every measurement in the paper's evaluation:
//!
//! * [`TimeWeighted`] — time-weighted mean/max of a piecewise-constant signal
//!   (queue occupancy between events);
//! * [`Samples`] — exact sample set with percentile queries (flow completion
//!   times; the paper reports medians, 90th percentiles and CDFs);
//! * [`TimeSeries`] — decimated `(t, value)` trace for figures.

use crate::time::SimTime;

/// Time-weighted statistics of a piecewise-constant signal.
///
/// Call [`TimeWeighted::update`] *before* changing the signal so the old
/// value is credited for the elapsed interval.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    total_time_s: f64,
    max: f64,
    min: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New, empty collector.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time_s: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            started: false,
        }
    }

    /// Record that the signal has held `value` since the previous update (or
    /// since the first call) and is observed again at time `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        if self.started {
            let dt = now.saturating_since(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
            self.total_time_s += dt;
        }
        self.started = true;
        self.last_time = now;
        self.last_value = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Time-weighted mean over the observed interval. A started collector
    /// whose observations span zero duration (a single update, or several at
    /// the same instant — e.g. a telemetry window that caught exactly one
    /// event) degrades to the last observed value instead of `None`: the
    /// signal *did* hold that value, there is just no interval to weight by.
    /// Only a never-updated collector has no mean.
    pub fn mean(&self) -> Option<f64> {
        if self.total_time_s > 0.0 {
            Some(self.weighted_sum / self.total_time_s)
        } else if self.started {
            Some(self.last_value)
        } else {
            None
        }
    }

    /// Maximum observed value.
    pub fn max(&self) -> Option<f64> {
        self.started.then_some(self.max)
    }

    /// Minimum observed value.
    pub fn min(&self) -> Option<f64> {
        self.started.then_some(self.min)
    }
}

/// Exact sample collector with percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// New, empty collector.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        (!self.values.is_empty())
            .then(|| self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (q in `[0,1]`) by linear interpolation between order
    /// statistics, matching `numpy.percentile`'s default. `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]); // n == 1 checked above
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Median (0.5-quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Empirical CDF as `(value, cumulative_fraction)` points, one per
    /// sample, suitable for plotting Figure 15-style curves.
    pub fn cdf(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.values.len();
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Immutable view of the raw samples (unsorted order not guaranteed).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A decimated `(t_seconds, value)` trace for figure output.
///
/// Recording every event would produce unwieldy traces; `TimeSeries` keeps at
/// most one point per `resolution` of simulated time (always keeping the most
/// recent value within each bucket, plus the first point).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    resolution_secs: f64,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// New trace with the given bucket width in seconds (0 keeps everything).
    pub fn new(resolution_secs: f64) -> Self {
        assert!(resolution_secs >= 0.0);
        TimeSeries {
            resolution_secs,
            points: Vec::new(),
        }
    }

    /// Record `value` at time `now`.
    pub fn record(&mut self, now: SimTime, value: f64) {
        let t = now.as_secs_f64();
        if let Some(last) = self.points.last_mut() {
            if self.resolution_secs > 0.0 && t - last.0 < self.resolution_secs {
                // Same bucket: keep the latest value.
                last.1 = value;
                return;
            }
        }
        self.points.push((t, value));
    }

    /// The recorded `(t, value)` points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The bucket width in seconds this trace was built with.
    pub fn resolution(&self) -> f64 {
        self.resolution_secs
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.update(t(0), 10.0); // 10 for [0, 2us)
        tw.update(t(2), 20.0); // 20 for [2us, 6us)
        tw.update(t(6), 0.0);
        // mean = (10*2 + 20*4) / 6 = 100/6
        assert!((tw.mean().unwrap() - 100.0 / 6.0).abs() < 1e-9);
        assert_eq!(tw.max().unwrap(), 20.0);
        assert_eq!(tw.min().unwrap(), 0.0);
    }

    #[test]
    fn time_weighted_single_point_degrades_to_last_value() {
        // Regression (zero-duration window): a lone observation used to
        // yield mean() == None, which telemetry rendered as a gap even
        // though the signal's value was known. It now reports that value.
        let mut tw = TimeWeighted::new();
        tw.update(t(5), 1.0);
        assert_eq!(tw.mean(), Some(1.0));
        assert_eq!(tw.max(), Some(1.0));
    }

    #[test]
    fn time_weighted_zero_duration_window_uses_last_value() {
        // Several updates at the same instant still span zero time; the
        // mean must be the latest value, not a 0/0 NaN or None.
        let mut tw = TimeWeighted::new();
        tw.update(t(3), 4.0);
        tw.update(t(3), 8.0);
        let m = tw.mean().unwrap();
        assert!(m.to_bits() == 8.0f64.to_bits(), "got {m}");
        // Once real time elapses, proper weighting resumes.
        tw.update(t(5), 0.0);
        assert!((tw.mean().unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_has_no_extrema() {
        // Regression: before the Option API, an un-started collector leaked
        // its ±INFINITY sentinels (which render as `null` and poison
        // downstream aggregation). Empty must mean `None` across the board.
        let tw = TimeWeighted::new();
        assert_eq!(tw.max(), None);
        assert_eq!(tw.min(), None);
        assert_eq!(tw.mean(), None);
    }

    #[test]
    fn time_weighted_min_tracks_negative_values() {
        let mut tw = TimeWeighted::new();
        tw.update(t(0), -3.0);
        tw.update(t(1), 2.0);
        tw.update(t(2), -1.0);
        assert_eq!(tw.min(), Some(-3.0));
        assert_eq!(tw.max(), Some(2.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = Samples::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert!((s.median().unwrap() - 2.5).abs() < 1e-12);
        // p90 of [1,2,3,4]: pos = 2.7 -> 3*0.3 + 4*0.7... careful:
        // pos=0.9*3=2.7, lo=2 (value 3), hi=3 (value 4), frac=0.7 -> 3.7
        assert!((s.quantile(0.9).unwrap() - 3.7).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut s = Samples::new();
        for v in [5.0, 1.0, 3.0] {
            s.push(v);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (5.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn empty_samples() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn single_sample_quantiles_are_the_sample() {
        let mut s = Samples::new();
        s.push(42.0);
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(s.quantile(q), Some(42.0), "q = {q}");
        }
    }

    #[test]
    fn duplicate_samples_interpolate_flat() {
        let mut s = Samples::new();
        for v in [7.0, 7.0, 7.0, 7.0] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.3), Some(7.0));
        assert_eq!(s.median(), Some(7.0));
        // A mixed set with a duplicated extreme still pins p0/p100 exactly.
        let mut s = Samples::new();
        for v in [1.0, 1.0, 2.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_above_one_panics() {
        let mut s = Samples::new();
        s.push(1.0);
        let _ = s.quantile(1.5);
    }

    #[test]
    fn time_series_decimates() {
        let mut ts = TimeSeries::new(1e-6); // 1 us buckets
        for ns in 0..1000u64 {
            ts.record(SimTime::from_nanos(ns), ns as f64);
        }
        // All 1000 points fall within one bucket (plus the initial point).
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.points()[0].1, 999.0, "keeps latest value in bucket");
        ts.record(t(2), 7.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn time_series_zero_resolution_keeps_all() {
        let mut ts = TimeSeries::new(0.0);
        for i in 0..10u64 {
            ts.record(SimTime::from_nanos(i), i as f64);
        }
        assert_eq!(ts.len(), 10);
    }
}
