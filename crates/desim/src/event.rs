//! Deterministic calendar event queue.
//!
//! The queue is a binary min-heap keyed on `(time, sequence)`. The sequence
//! number increases monotonically with every insertion, so events scheduled
//! for the same instant pop in insertion order (stable FIFO). This property
//! is load-bearing for reproducibility: a switch that enqueues a packet and
//! arms a timer "at the same time" must always process them in the same
//! order.
//!
//! Payloads live *inside* the heap entries, so memory is proportional to
//! the number of **pending** events, not the number ever scheduled — the
//! FCT experiments schedule tens of millions of events over a run.
//! Cancellation is supported through [`EventId`] tombstones: `cancel` marks
//! the id dead and the heap lazily discards dead entries on pop. This is
//! the classic approach for timer-heavy simulations (timers are re-armed
//! far more often than they fire) and keeps both operations O(log n)
//! amortized.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Ordering considers only (time, seq); the payload never participates, so
// `E` needs no trait bounds.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

/// A deterministic discrete-event queue over payload type `E`.
///
/// ```
/// use desim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), "b");
/// q.schedule(SimTime::from_nanos(5), "a");
/// q.schedule(SimTime::from_nanos(10), "c");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    len: usize,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            len: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `payload` at absolute time `time`, returning a cancellable id.
    ///
    /// Scheduling in the past (before the last popped event) is a logic error
    /// in the caller and panics in debug builds; in release it is accepted
    /// (the event fires "now") to favour robustness, matching how real
    /// simulators clamp late timers.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        self.len += 1;
        obs::metrics::counter_inc("desim.events_scheduled");
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired or
    /// been cancelled. Cancelling an id that was never issued is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // We cannot cheaply tell "already fired" from "pending"; insert the
        // tombstone and adjust only if it was actually pending. The heap
        // lazily reconciles. To keep `len` exact, we track liveness by
        // probing: a tombstone for a fired event would never be consumed, so
        // we only count a cancel when the id is not already tombstoned and
        // is plausibly pending. The engine's usage pattern (cancel only ids
        // it knows are pending) makes this exact; `try_cancel_pending` below
        // is the safe general entry point.
        if self.cancelled.insert(id.0) {
            self.len = self.len.saturating_sub(1);
            obs::metrics::counter_inc("desim.events_cancelled");
            true
        } else {
            false
        }
    }

    /// Time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse(entry) = self.heap.pop()?;
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.len -= 1;
            crate::invariants::monotonic_time("EventQueue::pop", self.last_popped, entry.time);
            self.last_popped = entry.time;
            obs::metrics::counter_inc("desim.events_popped");
            return Some((entry.time, entry.payload));
        }
    }

    /// Drop cancelled entries sitting at the top of the heap so `peek_time`
    /// reports a live event.
    fn skim_cancelled(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(42), i)));
        }
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 0);
        q.schedule(t(2), 1);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn memory_is_bounded_by_pending_events() {
        // Schedule and drain far more events than fit in memory if the
        // queue retained history; the heap must stay small.
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..1000u64 {
                q.schedule(t(round * 1_000_000 + i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(q.heap.capacity() < 100_000);
        assert!(q.cancelled.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_is_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5u64);
        q.schedule(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        q.schedule(t(3), 3);
        q.schedule(t(2), 2);
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert_eq!(q.pop(), Some((t(3), 3)));
        assert_eq!(q.pop(), Some((t(5), 5)));
    }
}
