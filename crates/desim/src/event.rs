//! Deterministic hierarchical timing-wheel event queue.
//!
//! The queue is a Varghese–Lauck hierarchical timing wheel with a
//! mixed-radix layout: level 0 spans the low **12 bits** of the 64-bit
//! nanosecond timestamp (4096 slots ≈ a 4 µs near horizon — packet
//! serialization and RTT-scale timers land here directly), and seven 8-bit
//! levels above it cover the remaining bits, so the full `u64` range is
//! addressable without overflow lists. An event whose time first differs
//! from the wheel's current position at bit `b` lives in the level owning
//! bit `b`, in the slot named by that level's digit of the timestamp. Push
//! and pop are O(1) amortized: each event is touched at most once per level
//! as it cascades toward level 0, and per-level occupancy bitmaps locate
//! the next non-empty slot with a few word scans instead of a heap
//! traversal.
//!
//! **Layout.** Events live in a split arena: a dense 24-byte "hot" record
//! (`time`, `seq`+liveness bit, intrusive `next` link, generation) that the
//! cascade and pop scans walk, and a parallel payload vector touched only
//! at push/pop. Slots are intrusive singly-linked lists threaded through
//! the `next` fields; the free list reuses the same field. After the arena
//! reaches its high-water mark the queue performs **zero allocations**:
//! push, pop, cancel and cascade are all index relinking. This — not the
//! asymptotics — is what makes the wheel beat the old binary heap on the
//! `event_queue/*` bench rows.
//!
//! **Determinism.** Events pop in `(time, seq)` order, where `seq` is a
//! sequence number that increases monotonically with every insertion.
//! Events scheduled for the same instant therefore pop in insertion order
//! (stable FIFO) — exactly the contract the old binary-heap queue provided.
//! This property is load-bearing for reproducibility: a switch that
//! enqueues a packet and arms a timer "at the same time" must always
//! process them in the same order. All entries in a reachable level-0 slot
//! share one absolute timestamp (coarser times still live in higher
//! levels), so the FIFO tie-break is a min-`seq` scan of one short slot
//! list.
//!
//! **Cancellation** is slot-local instead of tombstone-set based: an
//! [`EventId`] packs `(arena index, generation)`, and `cancel` is an O(1)
//! liveness-flag flip that drops the payload immediately. The dead entry is
//! unlinked and recycled when its slot is next visited, so rearm-heavy
//! workloads (timers are re-armed far more often than they fire) no longer
//! accrete an unbounded tombstone set — the regression that made
//! `timer_rearm` the slowest kernel bench row. Memory is proportional to
//! the number of **pending** events, not the number ever scheduled.
//!
//! The previous heap implementation is retained verbatim as
//! [`crate::event_ref::ReferenceEventQueue`] and serves as the oracle for
//! the differential property test in `tests/wheel_differential.rs`.

use crate::time::SimTime;

/// Bits covered by level 0.
const L0_BITS: u32 = 12;
/// Slots in level 0.
const L0_SLOTS: usize = 1 << L0_BITS;
/// Mask for level 0's digit.
const L0_MASK: u64 = (L0_SLOTS - 1) as u64;
/// Bitmap words for level 0.
const L0_WORDS: usize = L0_SLOTS / 64;
/// Upper levels: 8 bits each above bit 12 (the top level holds bits 60..63,
/// using 16 of its 256 slots).
const UP_LEVELS: usize = 7;
/// Bits covered by each upper level.
const UP_BITS: u32 = 8;
/// Slots per upper level.
const UP_SLOTS: usize = 1 << UP_BITS;
/// Null link in the intrusive slot/free lists.
const NIL: u32 = u32::MAX;
/// Liveness flag packed into the hot record's `seq` word (sequence numbers
/// are insertion counters and never reach 2^63).
const LIVE_BIT: u64 = 1 << 63;

/// Indices into [`EventQueue::stats`], the locally batched obs counters.
const STAT_SCHEDULED: usize = 0;
const STAT_POPPED: usize = 1;
const STAT_CANCELLED: usize = 2;
const STAT_CASCADES: usize = 3;

/// Global metrics counter names, indexed like [`EventQueue::stats`].
const STAT_NAMES: [&str; 4] = [
    "desim.events_scheduled",
    "desim.events_popped",
    "desim.events_cancelled",
    "desim.wheel_cascades",
];

/// Opaque handle to a scheduled event, used for cancellation.
///
/// Packs `(arena index, generation)`; the generation is bumped every time an
/// arena entry is recycled, so a stale id held after its event fired (or was
/// cancelled) can never alias a newer event that reused the same arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn pack(index: u32, generation: u32) -> Self {
        EventId(((generation as u64) << 32) | index as u64)
    }

    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Hot arena record: everything the cascade/pop scans need, 24 bytes.
/// `seq_live`'s top bit is the liveness flag; a clear bit means
/// cancelled-but-not-yet-unlinked (still linked into exactly one slot list)
/// or free (on the free list). `next` threads both the slot lists and the
/// free list. The payload lives in a parallel vector touched only at
/// push/pop, keeping these records dense for the pointer-chasing paths.
struct Hot {
    time_ns: u64,
    seq_live: u64,
    next: u32,
    generation: u32,
}

impl Hot {
    #[inline]
    fn is_live(&self) -> bool {
        self.seq_live & LIVE_BIT != 0
    }

    #[inline]
    fn seq(&self) -> u64 {
        self.seq_live & !LIVE_BIT
    }
}

/// An upper wheel level: 256 index-vector slots plus an occupancy bitmap.
/// Upper slots hold the big cascade batches, so they are contiguous index
/// vectors (prefetchable scans, capacity reused across cascades) rather
/// than linked lists, whose dependent loads serialize the walk.
struct UpLevel {
    slots: Vec<Vec<u32>>,
    occupied: [u64; 4],
}

impl UpLevel {
    fn new() -> Self {
        UpLevel {
            slots: (0..UP_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; 4],
        }
    }
}

/// Retired wheel storage, recycled through a per-thread pool.
///
/// A queue's slot arrays and hot arena total several hundred kilobytes once
/// a simulation has run; building a fresh queue per run (as every engine
/// invocation and every bench iteration does) would allocate, fault in, and
/// release those pages each time — the general allocator returns large
/// freed blocks to the OS, so the cost recurs forever. Retiring the
/// *non-generic* storage (payloads are type-specific and cannot be pooled)
/// keeps the pages warm: `EventQueue::new` becomes a pool pop plus zeroed
/// bookkeeping, and steady-state queue construction performs no large
/// allocations at all. The pool is per-thread (no locks, `par_map` workers
/// each get their own) and capped, and has no observable effect other than
/// speed: retired storage is reset to empty before reuse.
struct Storage {
    l0_heads: Vec<u32>,
    l0_occupied: Vec<u64>,
    up: Vec<UpLevel>,
    hot: Vec<Hot>,
}

/// Retired [`Storage`] blocks kept per thread, newest first.
const POOL_CAP: usize = 8;

std::thread_local! {
    static STORAGE_POOL: core::cell::RefCell<Vec<Storage>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// First set bit at index `from` or later in an occupancy bitmap.
#[inline]
fn next_occupied(words: &[u64], from: usize) -> Option<usize> {
    let mut word = from >> 6;
    if word >= words.len() {
        return None;
    }
    let mut bits = words[word] & (!0u64 << (from & 63));
    loop {
        if bits != 0 {
            return Some((word << 6) + bits.trailing_zeros() as usize);
        }
        word += 1;
        if word == words.len() {
            return None;
        }
        bits = words[word];
    }
}

/// A deterministic discrete-event queue over payload type `E`.
///
/// ```
/// use desim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), "b");
/// q.schedule(SimTime::from_nanos(5), "a");
/// q.schedule(SimTime::from_nanos(10), "c");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    l0_heads: Vec<u32>,
    l0_occupied: Vec<u64>,
    /// Number of set bits in `l0_occupied`. Lets the hot search skip the
    /// 64-word level-0 bitmap scan entirely once the current near-horizon
    /// window drains — the common state between cascades.
    l0_slot_count: usize,
    up: Vec<UpLevel>,
    hot: Vec<Hot>,
    payloads: Vec<Option<E>>,
    free_head: u32,
    /// Wheel position: no pending event precedes this time. Equals the time
    /// of the last popped event after any pop.
    floor_ns: u64,
    next_seq: u64,
    len: usize,
    last_popped: SimTime,
    /// Locally accumulated obs counts (scheduled, popped, cancelled,
    /// cascades), flushed to the global metrics registry in one
    /// `counter_add` each when the queue retires. Batching keeps the
    /// registry's totals exact at every point a snapshot is actually taken
    /// (queues are dropped before `ObsGuard::finish` writes metrics) while
    /// keeping the per-event hot path free of atomic traffic.
    stats: [u64; 4],
    /// Flight-recorder linkage: wheel sequence number of a pending event →
    /// the flight sequence of its `schedule` entry, so the `dispatch` entry
    /// recorded at pop can back-point to it. Touched only while the flight
    /// recorder is enabled; empty (and cleared) otherwise.
    flight_seq: std::collections::BTreeMap<u64, u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("floor_ns", &self.floor_ns)
            .field("next_seq", &self.next_seq)
            .field("arena", &self.hot.len())
            .finish_non_exhaustive()
    }
}

/// Shift of an upper level's digit within the timestamp.
#[inline]
fn up_shift(level: usize) -> u32 {
    L0_BITS + UP_BITS * level as u32
}

impl<E> EventQueue<E> {
    /// Create an empty queue, reusing retired storage from the per-thread
    /// pool when available (see [`Storage`]).
    pub fn new() -> Self {
        let storage = STORAGE_POOL.with(|p| p.borrow_mut().pop());
        let s = storage.unwrap_or_else(|| Storage {
            l0_heads: vec![NIL; L0_SLOTS],
            l0_occupied: vec![0; L0_WORDS],
            up: (0..UP_LEVELS).map(|_| UpLevel::new()).collect(),
            hot: Vec::new(),
        });
        debug_assert!(s.hot.is_empty() && s.l0_occupied.iter().all(|&w| w == 0));
        // The payload vector is type-specific and cannot be pooled, but the
        // retired arena's capacity predicts this queue's high-water mark:
        // reserving it up front turns the payload vector's growth-by-
        // doubling (a dozen reallocations copying the whole vector) into
        // one allocation.
        let payloads = Vec::with_capacity(s.hot.capacity());
        EventQueue {
            l0_heads: s.l0_heads,
            l0_occupied: s.l0_occupied,
            l0_slot_count: 0,
            up: s.up,
            hot: s.hot,
            payloads,
            free_head: NIL,
            floor_ns: 0,
            next_seq: 0,
            len: 0,
            last_popped: SimTime::ZERO,
            stats: [0; 4],
            flight_seq: std::collections::BTreeMap::new(),
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `payload` at absolute time `time`, returning a cancellable id.
    ///
    /// Scheduling in the past (before the last popped event) is a logic error
    /// in the caller and panics in debug builds; in release it is accepted
    /// (the event fires "now") to favour robustness, matching how real
    /// simulators clamp late timers.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        // Release-mode clamp: a late timer fires at the wheel's current
        // position rather than corrupting slot placement.
        let t_ns = time.as_nanos().max(self.floor_ns);
        let seq = self.next_seq;
        self.next_seq += 1;
        let (idx, generation) = if self.free_head != NIL {
            let i = self.free_head;
            let h = &mut self.hot[i as usize];
            self.free_head = h.next;
            h.time_ns = t_ns;
            h.seq_live = seq | LIVE_BIT;
            let generation = h.generation;
            self.payloads[i as usize] = Some(payload);
            (i, generation)
        } else {
            let i = self.hot.len() as u32;
            self.hot.push(Hot {
                time_ns: t_ns,
                seq_live: seq | LIVE_BIT,
                next: NIL,
                generation: 0,
            });
            self.payloads.push(Some(payload));
            (i, 0)
        };
        self.link_in(idx, t_ns);
        self.len += 1;
        self.stats[STAT_SCHEDULED] += 1;
        // Flight recorder: a `schedule` entry back-pointing to the dispatch
        // being handled right now (the causal edge). The `enabled` guard
        // keeps the disabled cost to one relaxed load and a branch — the
        // arguments (a float conversion, a thread-local read) must not be
        // evaluated on the hot path.
        if obs::flight::enabled() {
            if let Some(fseq) = obs::flight::record(
                time.as_secs_f64(),
                "schedule",
                self.len as f64,
                obs::flight::current_cause(),
            ) {
                self.flight_seq.insert(seq, fseq);
            }
        }
        EventId::pack(idx, generation)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired or
    /// been cancelled. Cancelling an id that was never issued is a no-op.
    ///
    /// O(1): flips the arena entry's liveness flag and drops the payload;
    /// the slot unlinks the dead entry when it is next visited. Unlike the
    /// old tombstone-set queue, cancelling an already-fired id is detected
    /// exactly (the arena generation no longer matches), so `len` stays
    /// correct under any call pattern.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let idx = id.index();
        if idx >= self.hot.len() {
            return false;
        }
        let h = &mut self.hot[idx];
        if h.generation != id.generation() || !h.is_live() {
            return false;
        }
        h.seq_live &= !LIVE_BIT;
        self.payloads[idx] = None;
        self.len -= 1;
        self.stats[STAT_CANCELLED] += 1;
        if obs::flight::enabled() {
            // seq() masks the live bit, so reading it after the clear is
            // exact; keeping the read in here keeps the disabled path free
            // of it.
            let wheel_seq = self.hot[idx].seq();
            let by = self.flight_seq.remove(&wheel_seq);
            obs::flight::record(
                self.last_popped.as_secs_f64(),
                "cancel",
                self.len as f64,
                by,
            );
        }
        true
    }

    /// Time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while self.len > 0 {
            match self.earliest_slot() {
                Slot::Level0(slot) => {
                    if self.purge_dead_level0(slot) {
                        // All entries in a reachable level-0 slot share the
                        // slot's absolute time.
                        let t_ns = (self.floor_ns & !L0_MASK) | slot as u64;
                        return Some(SimTime::from_nanos(t_ns));
                    }
                }
                Slot::Upper(level, slot) => self.cascade(level, slot),
                Slot::None => break,
            }
        }
        None
    }

    /// Pop the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while self.len > 0 {
            match self.earliest_slot() {
                Slot::Level0(slot) => {
                    if let Some((t_ns, wheel_seq, payload)) = self.take_min_seq(slot) {
                        let time = SimTime::from_nanos(t_ns);
                        crate::invariants::monotonic_time(
                            "EventQueue::pop",
                            self.last_popped,
                            time,
                        );
                        self.last_popped = time;
                        self.floor_ns = t_ns;
                        self.len -= 1;
                        self.stats[STAT_POPPED] += 1;
                        // Flight recorder: a `dispatch` entry back-pointing
                        // to this event's own `schedule`, then installed as
                        // the cause of everything scheduled while handling
                        // it.
                        if obs::flight::enabled() {
                            let by = self.flight_seq.remove(&wheel_seq);
                            let d = obs::flight::record(
                                time.as_secs_f64(),
                                "dispatch",
                                self.len as f64,
                                by,
                            );
                            obs::flight::set_cause(d);
                        } else if !self.flight_seq.is_empty() {
                            // Recorder turned off mid-run: drop the stale
                            // linkage instead of letting it accumulate.
                            self.flight_seq.clear();
                        }
                        return Some((time, payload));
                    }
                    // Slot held only cancelled entries (now recycled); rescan.
                }
                Slot::Upper(level, slot) => self.cascade(level, slot),
                Slot::None => break,
            }
        }
        None
    }

    /// Mark a level-0 slot occupied, keeping the slot count exact.
    #[inline]
    fn l0_set(&mut self, slot: usize) {
        let w = &mut self.l0_occupied[slot >> 6];
        let bit = 1u64 << (slot & 63);
        if *w & bit == 0 {
            *w |= bit;
            self.l0_slot_count += 1;
        }
    }

    /// Clear a level-0 slot's (set) occupancy bit.
    #[inline]
    fn l0_clear(&mut self, slot: usize) {
        debug_assert!(self.l0_occupied[slot >> 6] & (1u64 << (slot & 63)) != 0);
        self.l0_occupied[slot >> 6] &= !(1u64 << (slot & 63));
        self.l0_slot_count -= 1;
    }

    /// Lowest occupied slot at or after the wheel position. Because a
    /// level's times agree with the wheel position on all digits above it,
    /// the lowest occupied level holds the globally earliest event, and
    /// within a level earlier slots hold earlier times.
    ///
    /// Linked level-0 entries never sit behind the wheel position (pops
    /// purge every slot they pass over), so when `l0_slot_count` is zero
    /// the 64-word level-0 bitmap scan is skipped outright — the common
    /// state between cascades once the current 4 µs window drains.
    #[inline]
    fn earliest_slot(&self) -> Slot {
        if self.l0_slot_count > 0 {
            let cur0 = (self.floor_ns & L0_MASK) as usize;
            if let Some(slot) = next_occupied(&self.l0_occupied[..], cur0) {
                return Slot::Level0(slot);
            }
        }
        for level in 0..UP_LEVELS {
            let cur = ((self.floor_ns >> up_shift(level)) & 0xFF) as usize;
            if let Some(slot) = next_occupied(&self.up[level].occupied, cur) {
                return Slot::Upper(level, slot);
            }
        }
        Slot::None
    }

    /// Link `idx` (with time `t_ns`) into the level owning the highest bit
    /// in which `t_ns` differs from the wheel position — level 0 if they
    /// agree on everything above the level-0 digit. Head insertion: list
    /// order carries no meaning, the FIFO tie-break is the entries' `seq`.
    #[inline]
    fn link_in(&mut self, idx: u32, t_ns: u64) {
        let x = t_ns ^ self.floor_ns;
        let high_bit = 63 - (x | 1).leading_zeros();
        if high_bit < L0_BITS {
            let slot = (t_ns & L0_MASK) as usize;
            self.hot[idx as usize].next = self.l0_heads[slot];
            self.l0_heads[slot] = idx;
            self.l0_set(slot);
        } else {
            let level = ((high_bit - L0_BITS) / UP_BITS) as usize;
            let slot = ((t_ns >> up_shift(level)) & 0xFF) as usize;
            let lv = &mut self.up[level];
            lv.slots[slot].push(idx);
            lv.occupied[slot >> 6] |= 1u64 << (slot & 63);
        }
    }

    /// Recycle a dead, unlinked arena entry: bump the generation
    /// (invalidating any outstanding [`EventId`]) and thread it onto the
    /// free list. The payload is already gone — `pop` takes it and `cancel`
    /// drops it, and those are the only two paths to `release`.
    #[inline]
    fn release(&mut self, idx: u32) {
        debug_assert!(self.payloads[idx as usize].is_none());
        let h = &mut self.hot[idx as usize];
        h.seq_live &= !LIVE_BIT;
        h.generation = h.generation.wrapping_add(1);
        h.next = self.free_head;
        self.free_head = idx;
    }

    /// Advance the wheel to `slot` of upper level `level` and re-file that
    /// slot's live entries at strictly lower levels (their digits at and
    /// above `level` now match the wheel position). Dead entries are
    /// recycled here — cancellation's deferred cleanup is slot-local by
    /// construction. Reading each entry's hot record here also warms the
    /// cache for the pop that follows shortly after.
    fn cascade(&mut self, level: usize, slot: usize) {
        let lv = &mut self.up[level];
        let mut batch = std::mem::take(&mut lv.slots[slot]);
        self.stats[STAT_CASCADES] += 1;
        // Wheel telemetry rides the cascade (rare) rather than the pop
        // (per-event): occupancy and the re-filed batch size are exactly
        // the quantities that explain cascade cost.
        if obs::timeseries::enabled() {
            obs::timeseries::observe("desim.wheel_occupancy", level as u64, self.len as f64);
            obs::timeseries::observe(
                "desim.wheel_cascade_batch",
                level as u64,
                batch.len() as f64,
            );
        }
        lv.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        let span = up_shift(level);
        // Zero all digits at and below `level`, then set this level's digit
        // to the slot index: the start of the slot's time range. The search
        // guarantees slot > current digit, so the wheel strictly advances.
        let keep_mask = if span + UP_BITS >= 64 {
            0
        } else {
            !((1u64 << (span + UP_BITS)) - 1)
        };
        let new_floor = (self.floor_ns & keep_mask) | ((slot as u64) << span);
        debug_assert!(new_floor > self.floor_ns, "cascade must advance the wheel");
        self.floor_ns = new_floor;
        for &idx in &batch {
            let h = &self.hot[idx as usize];
            if h.is_live() {
                let t_ns = h.time_ns;
                if level == 0 {
                    // Cascading out of the bottom upper level: every digit
                    // at and above it now matches the wheel position, so
                    // the entry can only land in level 0 — link it there
                    // directly, skipping `link_in`'s level computation.
                    debug_assert_eq!(t_ns >> L0_BITS, self.floor_ns >> L0_BITS);
                    let slot = (t_ns & L0_MASK) as usize;
                    self.hot[idx as usize].next = self.l0_heads[slot];
                    self.l0_heads[slot] = idx;
                    self.l0_set(slot);
                } else {
                    self.link_in(idx, t_ns);
                }
            } else {
                self.release(idx);
            }
        }
        // Hand the (empty) allocation back so the slot keeps its capacity.
        batch.clear();
        self.up[level].slots[slot] = batch;
    }

    /// Unlink-and-recycle dead entries in a level-0 slot; returns whether
    /// live entries remain (clearing the occupancy bit if not).
    fn purge_dead_level0(&mut self, slot: usize) -> bool {
        let mut prev = NIL;
        let mut cur = self.l0_heads[slot];
        while cur != NIL {
            let h = &self.hot[cur as usize];
            let nxt = h.next;
            if h.is_live() {
                prev = cur;
            } else {
                if prev == NIL {
                    self.l0_heads[slot] = nxt;
                } else {
                    self.hot[prev as usize].next = nxt;
                }
                self.release(cur);
            }
            cur = nxt;
        }
        if self.l0_heads[slot] == NIL {
            self.l0_clear(slot);
            false
        } else {
            true
        }
    }

    /// Remove and return the minimum-`seq` live entry of a level-0 slot as
    /// `(time_ns, wheel seq, payload)` (the seq is the FIFO tie-break among
    /// same-time events; `pop` also uses it as the flight-recorder linkage
    /// key), unlinking and recycling any dead entries encountered in the
    /// same pass. Returns `None` if the slot held only dead entries; the
    /// occupancy bit is cleared when the slot empties.
    fn take_min_seq(&mut self, slot: usize) -> Option<(u64, u64, E)> {
        // All entries in a reachable level-0 slot share the slot's absolute
        // time, so the popped time is computable from the wheel position —
        // no arena read needed.
        let t_ns = (self.floor_ns & !L0_MASK) | slot as u64;
        let head = self.l0_heads[slot];
        let h = &self.hot[head as usize];
        // Fast path: a single live entry (the common case outside tie
        // bursts) — no tie scan, no predecessor bookkeeping.
        if h.next == NIL && h.is_live() {
            debug_assert_eq!(h.time_ns, t_ns, "level-0 slot time invariant");
            let seq = h.seq();
            self.l0_heads[slot] = NIL;
            self.l0_clear(slot);
            let payload = self.payloads[head as usize].take();
            self.release(head);
            return payload.map(|p| (t_ns, seq, p));
        }
        let mut prev = NIL;
        let mut cur = head;
        let mut best = NIL;
        let mut best_prev = NIL;
        let mut best_seq = u64::MAX;
        while cur != NIL {
            let h = &self.hot[cur as usize];
            let nxt = h.next;
            if h.is_live() {
                if h.seq() < best_seq {
                    best_seq = h.seq();
                    best = cur;
                    best_prev = prev;
                }
                prev = cur;
            } else {
                // Unlink the dead entry; `prev` (last live node) keeps its
                // role as predecessor of whatever follows.
                if prev == NIL {
                    self.l0_heads[slot] = nxt;
                } else {
                    self.hot[prev as usize].next = nxt;
                }
                self.release(cur);
            }
            cur = nxt;
        }
        if best == NIL {
            self.l0_clear(slot);
            return None;
        }
        // Unlink `best`. Its recorded predecessor is still adjacent: dead
        // entries between them were impossible at discovery time (prev was
        // the nearest live node) and live nodes are never unlinked above.
        let nxt = self.hot[best as usize].next;
        if best_prev == NIL {
            self.l0_heads[slot] = nxt;
        } else {
            self.hot[best_prev as usize].next = nxt;
        }
        debug_assert_eq!(
            self.hot[best as usize].time_ns, t_ns,
            "level-0 slot time invariant"
        );
        let payload = self.payloads[best as usize].take();
        self.release(best);
        if self.l0_heads[slot] == NIL {
            self.l0_clear(slot);
        }
        payload.map(|p| (t_ns, best_seq, p))
    }

    /// Reset the wheel to empty (occupancy-guided, so cost is proportional
    /// to what was pending, not to the slot count) and hand the storage to
    /// the per-thread pool. Called on drop; pending payloads are dropped by
    /// the `payloads` vector itself.
    fn retire(&mut self) {
        for (i, name) in STAT_NAMES.iter().enumerate() {
            if self.stats[i] > 0 {
                obs::metrics::counter_add(name, self.stats[i]);
                self.stats[i] = 0;
            }
        }
        for w in 0..L0_WORDS {
            let mut bits = self.l0_occupied[w];
            while bits != 0 {
                let slot = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.l0_heads[slot] = NIL;
            }
            self.l0_occupied[w] = 0;
        }
        self.l0_slot_count = 0;
        for lv in &mut self.up {
            for w in 0..lv.occupied.len() {
                let mut bits = lv.occupied[w];
                while bits != 0 {
                    let slot = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    lv.slots[slot].clear();
                }
                lv.occupied[w] = 0;
            }
        }
        self.hot.clear();
        self.free_head = NIL;
        let s = Storage {
            l0_heads: std::mem::take(&mut self.l0_heads),
            l0_occupied: std::mem::take(&mut self.l0_occupied),
            up: std::mem::take(&mut self.up),
            hot: std::mem::take(&mut self.hot),
        };
        // An empty storage block (this queue was itself built during thread
        // teardown, or the vectors were never allocated) is not worth
        // pooling; `with` can also fail during thread destruction — then
        // the storage simply drops.
        if s.l0_heads.is_empty() {
            return;
        }
        let _ = STORAGE_POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(s);
            }
        });
    }

    /// Length of the free list (test support).
    #[cfg(test)]
    fn free_list_len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.free_head;
        while cur != NIL {
            n += 1;
            cur = self.hot[cur as usize].next;
        }
        n
    }
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        self.retire();
    }
}

/// Result of the occupied-slot search.
enum Slot {
    /// A level-0 slot (pop/peek directly).
    Level0(usize),
    /// An upper-level slot (cascade it down).
    Upper(usize, usize),
    /// The wheel is empty.
    None,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(42), i)));
        }
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_detected() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert!(!q.cancel(a), "fired event cannot be cancelled");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn stale_id_does_not_alias_recycled_arena_entry() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert_eq!(q.pop(), Some((t(10), "a")));
        // The arena entry for `a` is recycled by this insertion.
        let b = q.schedule(t(20), "b");
        assert!(!q.cancel(a), "stale id must not cancel the new event");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 0);
        q.schedule(t(2), 1);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn memory_is_bounded_by_pending_events() {
        // Schedule and drain far more events than fit in memory if the
        // queue retained history; the arena must stay at the high-water
        // mark of *pending* events (free-list reuse), and no tombstone
        // state may accrete across rounds.
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..1000u64 {
                q.schedule(t(round * 1_000_000 + i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(q.hot.len() <= 1000, "arena grew past pending high-water");
        assert_eq!(q.free_list_len(), q.hot.len(), "all entries recycled");
    }

    #[test]
    fn rearm_heavy_workload_recycles_arena() {
        // The timer pattern: cancel + reschedule many times per fire. The
        // arena may only grow to the pending high-water mark even though
        // dead entries are unlinked lazily.
        let mut q = EventQueue::new();
        let mut id = q.schedule(t(100), 0u64);
        for k in 1..10_000u64 {
            assert!(q.cancel(id));
            id = q.schedule(t(100 + k), k);
            // Visit the slot so dead entries recycle, as the engine's pop
            // loop does continuously.
            assert_eq!(q.peek_time(), Some(t(100 + k)));
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.hot.len() < 64,
            "rearm churn must not grow the arena (len {})",
            q.hot.len()
        );
    }

    #[test]
    fn interleaved_schedule_pop_is_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5u64);
        q.schedule(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        q.schedule(t(3), 3);
        q.schedule(t(2), 2);
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert_eq!(q.pop(), Some((t(3), 3)));
        assert_eq!(q.pop(), Some((t(5), 5)));
    }

    #[test]
    fn far_future_rollover_crosses_all_levels() {
        // Times chosen so consecutive pops cross digit boundaries at every
        // level, including the top bits.
        let mut q = EventQueue::new();
        let times = [
            0u64,
            255,
            256,
            4_095,
            4_096,
            65_535,
            65_536,
            1 << 24,
            (1 << 32) - 1,
            1 << 32,
            1 << 40,
            1 << 48,
            1 << 56,
            1 << 60,
            u64::MAX - 1,
            u64::MAX,
        ];
        for (i, &ns) in times.iter().enumerate().rev() {
            q.schedule(t(ns), i);
        }
        for (i, &ns) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t(ns), i)), "time {ns}");
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_preserved_across_cascade() {
        // Same-time events inserted at a coarse level must still pop FIFO
        // after cascading down to level 0.
        let mut q = EventQueue::new();
        q.schedule(t(1), 0u32);
        for i in 1..=10u32 {
            q.schedule(t(1 << 20), i);
        }
        assert_eq!(q.pop(), Some((t(1), 0)));
        for i in 1..=10u32 {
            assert_eq!(q.pop(), Some((t(1 << 20), i)));
        }
    }
}
