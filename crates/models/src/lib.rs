//! # models — the paper's fluid models and discrete analysis
//!
//! Everything analytical in *"ECN or Delay: Lessons Learnt from Analysis of
//! DCQCN and TIMELY"* (CoNEXT 2016) lives here:
//!
//! * [`dcqcn`] — the DCQCN fluid model of Figure 1 (extended per-flow as in
//!   §3.1), its unique fixed point (Theorem 1, Eqs 9–13), the closed-form
//!   approximation of `p*` (Eq 14), and the linearized loop used for the
//!   phase-margin plots of Figure 3;
//! * [`timely`] — the TIMELY fluid model of Figure 7 (Eqs 20–24), which has
//!   no fixed point as published (Theorem 3) and infinitely many under the
//!   `≤`→`<` modification (Theorem 4);
//! * [`patched_timely`] — Patched TIMELY (Algorithm 2, Eqs 29–31): unique
//!   fair fixed point and the linearization behind Figure 11, including the
//!   queue-dependent feedback delay of Eq 24 that caps its stable range;
//! * [`pi`] — PI-controller variants (Eq 32): PI marking at the switch for
//!   DCQCN (Figure 18: fair *and* pinned queue) and end-host PI for patched
//!   TIMELY (Figure 19: pinned queue, arbitrary fairness — Theorem 6);
//! * [`discrete`] — the discrete AIMD model of §3.3 (Eqs 15–19, Appendix B)
//!   proving exponential convergence of DCQCN rates;
//! * [`jitter`] — deterministic piecewise-constant feedback-delay jitter for
//!   the resilience comparison of Figure 20;
//! * [`units`] — conversions between human units (Gbps, KB, µs) and the
//!   model's internal packet units.
//!
//! ## Unit convention
//!
//! All fluid state is expressed in **packets**: queue lengths in packets,
//! rates in packets/second, so the marking exponents `(1−p)^{τ'·R_C}` are
//! dimensionless exactly as written in the paper. Constructors take human
//! units and convert once.

#![deny(missing_docs)]

pub mod dcqcn;
pub mod discrete;
pub mod jitter;
pub mod patched_timely;
pub mod pi;
pub mod timely;
pub mod units;

pub use dcqcn::{DcqcnFluid, DcqcnParams};
pub use patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};
pub use timely::{TimelyFluid, TimelyParams};
