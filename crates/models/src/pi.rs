//! PI-controller variants (paper §5.2, Eq 32, Figures 18 and 19).
//!
//! The integral controller drives the queue error `e = q − q_ref` to zero:
//! `dp/dt = K₁·de/dt + K₂·e`. Where the controller runs decides what it can
//! deliver — this is the operational content of **Theorem 6**:
//!
//! * [`DcqcnPiFluid`] — PI marking **at the switch** replaces RED. The
//!   marking probability `p` is a shared signal, so the DCQCN fixed point
//!   keeps fair rates *and* the queue is pinned at `q_ref` regardless of the
//!   number of flows (Figure 18);
//! * [`PatchedTimelyPiFluid`] — PI **at each end host** computes a private
//!   `p_i` from delay samples and uses it in place of the queue-error term
//!   of Eq 29. The integral action still pins the queue at `q_ref`, but the
//!   per-flow `p_i` can settle anywhere consistent with `ΣR_i = C`, so the
//!   rate split is arbitrary (Figure 19) — fairness or fixed delay, never
//!   both, when delay is the only feedback.

use crate::dcqcn::{DcqcnFluid, DcqcnParams};
use crate::patched_timely::PatchedTimelyParams;
use crate::units;
use fluid::batch::{lane_of, LaneSystem};
use fluid::dde::{integrate_dde_with_prehistory, DdeOptions, DdeSystem};
use fluid::history::History;
use fluid::trace::Trace;

/// Gains and reference for the PI controller (Eq 32).
#[derive(Debug, Clone)]
pub struct PiGains {
    /// Proportional-on-derivative gain `K₁` (per packet).
    pub k1: f64,
    /// Integral gain `K₂` (per packet-second).
    pub k2: f64,
    /// Reference queue `q_ref` in packets.
    pub q_ref_pkts: f64,
}

/// DCQCN with PI marking at the switch (Figure 18).
///
/// State layout: `x\[0\] = q`, `x\[1\] = p` (marking probability), flow `i` at
/// `x[2+3i..5+3i] = (R_C, R_T, α)`.
#[derive(Debug, Clone)]
pub struct DcqcnPiFluid {
    /// DCQCN parameters (RED thresholds unused; `p` comes from the PI loop).
    pub params: DcqcnParams,
    /// PI gains.
    pub gains: PiGains,
    /// Number of flows.
    pub n_flows: usize,
    /// Scratch buffer for the delayed state in `rhs` (one `eval_all` instead
    /// of one `eval` per component).
    scratch: Vec<f64>,
}

impl DcqcnPiFluid {
    /// Gains that stabilize the 40 Gbps configuration across 2–64 flows
    /// (chosen by sweeping the fluid model; see the fig18 bench).
    pub fn default_gains(params: &DcqcnParams, q_ref_kb: f64) -> PiGains {
        PiGains {
            k1: 5e-5,
            k2: 5e-3,
            q_ref_pkts: units::kb_to_pkts(q_ref_kb, params.packet_bytes),
        }
    }

    /// New model.
    pub fn new(params: DcqcnParams, gains: PiGains, n_flows: usize) -> Self {
        assert!(n_flows >= 1);
        DcqcnPiFluid {
            params,
            gains,
            n_flows,
            scratch: vec![0.0; 2 + 3 * n_flows],
        }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        2 + 3 * self.n_flows
    }

    /// Index of flow `i`'s current rate.
    pub fn rc_index(&self, i: usize) -> usize {
        2 + 3 * i
    }

    /// Index of flow `i`'s target rate.
    pub fn rt_index(&self, i: usize) -> usize {
        3 + 3 * i
    }

    /// Index of flow `i`'s α.
    pub fn alpha_index(&self, i: usize) -> usize {
        4 + 3 * i
    }

    /// Simulate from line-rate start (DCQCN semantics), queue empty,
    /// marking probability starting at 0.
    pub fn simulate(&mut self, duration_s: f64) -> Trace {
        let line = self.params.capacity_pps();
        let mut x0 = vec![0.0; self.state_dim()];
        for i in 0..self.n_flows {
            x0[self.rc_index(i)] = line;
            x0[self.rt_index(i)] = line;
            x0[self.alpha_index(i)] = 1.0;
        }
        let step = (self.params.feedback_delay_s() / 4.0).min(1e-6);
        let record_every = ((duration_s / step) / 4000.0).ceil().max(1.0) as usize;
        let opts = DdeOptions {
            step,
            record_every,
            history_horizon_s: self.params.feedback_delay_s() * 4.0 + 10.0 * step,
        };
        integrate_dde_with_prehistory(self, &x0.clone(), &x0.clone(), 0.0, duration_s, &opts)
    }
}

impl LaneSystem for DcqcnPiFluid {
    fn lane_dim(&self) -> usize {
        self.state_dim()
    }

    fn lane_rhs(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        dxdt: &mut [f64],
    ) {
        // All delayed lookups share the time `td`: fetch the lane's whole
        // delayed state with one `locate` instead of one per component.
        let mut delayed = std::mem::take(&mut self.scratch);
        let p = &self.params;
        let cap = p.capacity_pps();
        let td = t - p.feedback_delay_s();
        hist.eval_strided(td, lane, stride, self.state_dim(), &mut delayed);
        let p_delayed = delayed[1].clamp(0.0, 1.0); // component 1 is p

        let q = lane_of(0, lane, stride);
        let pp = lane_of(1, lane, stride);
        let sum_rates: f64 = (0..self.n_flows)
            .map(|i| x[lane_of(self.rc_index(i), lane, stride)])
            .sum();
        // State layout: component 0 is the queue, component 1 is p.
        let dq = if x[q] <= 0.0 && sum_rates < cap {
            0.0
        } else {
            sum_rates - cap
        };
        dxdt[q] = dq; // component 0 is the queue
                      // Eq 32: PI marking replaces RED. Anti-windup: freeze integration
                      // against the [0,1] bounds.
        let e = x[q] - self.gains.q_ref_pkts; // component 0 is the queue
        let mut dp = self.gains.k1 * dq + self.gains.k2 * e;
        // Component 1 is p.
        if (x[pp] >= 1.0 && dp > 0.0) || (x[pp] <= 0.0 && dp < 0.0) {
            dp = 0.0;
        }
        dxdt[pp] = dp; // component 1 is p

        let mut out = [0.0; 3];
        for i in 0..self.n_flows {
            let rci = lane_of(self.rc_index(i), lane, stride);
            let rti = lane_of(self.rt_index(i), lane, stride);
            let ali = lane_of(self.alpha_index(i), lane, stride);
            let rc = x[rci];
            let rt = x[rti];
            let alpha = x[ali];
            let rc_delayed = delayed[self.rc_index(i)];
            // Reuse the DCQCN per-flow dynamics with the PI-supplied p.
            DcqcnFluid::flow_rhs_pub(p, rc, rt, alpha, rc_delayed, p_delayed, &mut out);
            let [d_rc, d_rt, d_alpha] = out;
            dxdt[rci] = d_rc;
            dxdt[rti] = d_rt;
            dxdt[ali] = d_alpha;
        }
        self.scratch = delayed;
    }

    fn min_delay(&self) -> f64 {
        self.params.feedback_delay_s()
    }

    fn lane_project(&mut self, _t: f64, x: &mut [f64], lane: usize, stride: usize) {
        let line = self.params.capacity_pps();
        let floor = self.params.min_rate_pps();
        let q = lane_of(0, lane, stride);
        let pp = lane_of(1, lane, stride);
        x[q] = x[q].max(0.0); // component 0 is the queue
        x[pp] = x[pp].clamp(0.0, 1.0); // component 1 is p
        for i in 0..self.n_flows {
            let rc = lane_of(self.rc_index(i), lane, stride);
            let rt = lane_of(self.rt_index(i), lane, stride);
            let al = lane_of(self.alpha_index(i), lane, stride);
            x[rc] = x[rc].clamp(floor, line);
            x[rt] = x[rt].clamp(floor, line);
            x[al] = x[al].clamp(0.0, 1.0);
        }
    }
}

impl DdeSystem for DcqcnPiFluid {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        self.lane_rhs(t, x, 0, 1, hist, dxdt);
    }

    fn min_delay(&self) -> f64 {
        LaneSystem::min_delay(self)
    }

    fn project(&mut self, t: f64, x: &mut [f64]) {
        self.lane_project(t, x, 0, 1);
    }
}

/// Patched TIMELY with an end-host PI controller (Figure 19).
///
/// State layout: `x\[0\] = q`; flow `i` at `x[1+3i..4+3i] = (R_i, g_i, p_i)`.
#[derive(Debug, Clone)]
pub struct PatchedTimelyPiFluid {
    /// Patched-TIMELY parameters (the queue-error term of Eq 29 is replaced
    /// by the PI variable `p_i`).
    pub params: PatchedTimelyParams,
    /// PI gains; `q_ref_pkts` is the delay target (the paper uses 300 KB).
    pub gains: PiGains,
    /// Number of flows.
    pub n_flows: usize,
}

impl PatchedTimelyPiFluid {
    /// Gains that pin the queue for the 10 Gbps configuration.
    pub fn default_gains(params: &PatchedTimelyParams, q_ref_kb: f64) -> PiGains {
        PiGains {
            k1: 5e-5,
            k2: 5e-2,
            q_ref_pkts: units::kb_to_pkts(q_ref_kb, params.base.packet_bytes),
        }
    }

    /// New model.
    pub fn new(params: PatchedTimelyParams, gains: PiGains, n_flows: usize) -> Self {
        assert!(n_flows >= 1);
        PatchedTimelyPiFluid {
            params,
            gains,
            n_flows,
        }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        1 + 3 * self.n_flows
    }

    /// Index of flow `i`'s rate.
    pub fn rate_index(&self, i: usize) -> usize {
        1 + 3 * i
    }

    /// Index of flow `i`'s gradient.
    pub fn grad_index(&self, i: usize) -> usize {
        2 + 3 * i
    }

    /// Index of flow `i`'s internal PI variable `p_i`.
    pub fn p_index(&self, i: usize) -> usize {
        3 + 3 * i
    }

    /// Simulate with explicit initial rates (pps).
    ///
    /// Each flow's internal PI variable starts at the value consistent with
    /// its own rate, `p_i(0) = δ/(β·R_i(0))` — what a flow's integrator
    /// would hold after running alone at that rate. This is the honest
    /// initial condition for staggered real-world flows, and it exposes the
    /// Theorem 6 degeneracy directly: the per-flow PI states differ, their
    /// *differences are invariant* (every `dp_i/dt` sees only the shared
    /// queue error), so the system settles on an unfair member of the
    /// infinite fixed-point family while the queue is still pinned at
    /// `q_ref`.
    pub fn simulate_with_rates(&mut self, initial_rates_pps: &[f64], duration_s: f64) -> Trace {
        assert_eq!(initial_rates_pps.len(), self.n_flows);
        let base = self.params.base.clone();
        let mut x0 = vec![0.0; self.state_dim()];
        for (i, &r) in initial_rates_pps.iter().enumerate() {
            x0[self.rate_index(i)] = r;
            x0[self.p_index(i)] = base.delta_pps() / (base.beta * r.max(1.0));
        }
        let base = &self.params.base;
        let step = (base.d_prop_s() / 2.0).min(1e-6);
        let horizon = base.tau_feedback(self.gains.q_ref_pkts * 6.0)
            + base.tau_star(base.min_rate_pps())
            + 10.0 * step;
        let record_every = ((duration_s / step) / 4000.0).ceil().max(1.0) as usize;
        let opts = DdeOptions {
            step,
            record_every,
            history_horizon_s: horizon,
        };
        integrate_dde_with_prehistory(self, &x0.clone(), &x0.clone(), 0.0, duration_s, &opts)
    }
}

impl LaneSystem for PatchedTimelyPiFluid {
    fn lane_dim(&self) -> usize {
        self.state_dim()
    }

    fn lane_rhs(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        dxdt: &mut [f64],
    ) {
        let p = &self.params;
        let base = &p.base;
        let c = base.capacity_pps();
        let q = lane_of(0, lane, stride);
        // Component 0 is the queue; the delayed lookup time is per-lane
        // because Eq 24's feedback delay depends on the lane's own queue.
        let tau_fb = base.tau_feedback(x[q]);
        let qd1 = hist.eval(t - tau_fb, q).max(0.0);

        let sum_rates: f64 = (0..self.n_flows)
            .map(|i| x[lane_of(self.rate_index(i), lane, stride)])
            .sum();
        // State component 0 is the shared queue.
        dxdt[q] = if x[q] <= 0.0 && sum_rates < c {
            0.0
        } else {
            sum_rates - c
        };

        let q_low = base.q_low_pkts();
        let q_high = base.q_high_pkts();
        let delta = base.delta_pps();

        // Flows at equal rates share the same delayed lookup time; cache the
        // last one so the common symmetric case does one `locate` per
        // distinct delayed time instead of one per flow.
        let mut qd2_cache = (f64::NAN, 0.0);
        for i in 0..self.n_flows {
            let ri = lane_of(self.rate_index(i), lane, stride);
            let gi = lane_of(self.grad_index(i), lane, stride);
            let pi = lane_of(self.p_index(i), lane, stride);
            let r = x[ri];
            let g = x[gi];
            let p_i = x[pi];
            let tau_i = base.tau_star(r);
            let t2 = t - tau_fb - tau_i;
            // simlint: allow(float-cmp) — memo key: only a bitwise-identical t2 may reuse the cache
            let qd2 = if t2 == qd2_cache.0 {
                qd2_cache.1
            } else {
                let v = hist.eval(t2, q).max(0.0);
                qd2_cache = (t2, v);
                v
            };

            // End-host PI on the measured delay (Eq 32 with e from delayed
            // queue observations; de/dt estimated from successive samples).
            let e = qd1 - self.gains.q_ref_pkts;
            let dedt = (qd1 - qd2) / tau_i;
            dxdt[pi] = self.gains.k1 * dedt + self.gains.k2 * e;

            // Eq 29 with the PI variable replacing (q − q')/q'.
            dxdt[ri] = if qd1 < q_low {
                delta / tau_i
            } else if qd1 > q_high {
                -(base.beta / tau_i) * (1.0 - q_high / qd1) * r
            } else {
                let w = PatchedTimelyParams::weight(g);
                (1.0 - w) * delta / tau_i - w * base.beta * r / tau_i * p_i
            };
            dxdt[gi] = base.ewma_alpha / tau_i * (-g + (qd1 - qd2) / (c * base.d_min_rtt_s()));
        }
    }

    fn min_delay(&self) -> f64 {
        self.params.base.tau_feedback(0.0)
    }

    fn lane_project(&mut self, _t: f64, x: &mut [f64], lane: usize, stride: usize) {
        let base = &self.params.base;
        let line = base.capacity_pps();
        let floor = base.min_rate_pps();
        let q = lane_of(0, lane, stride);
        x[q] = x[q].max(0.0); // component 0 is the queue
        for i in 0..self.n_flows {
            let ri = lane_of(self.rate_index(i), lane, stride);
            x[ri] = x[ri].clamp(floor, line);
            let gi = lane_of(self.grad_index(i), lane, stride);
            x[gi] = x[gi].clamp(-10.0, 10.0);
            // p_i is an internal feedback variable; keep it bounded like a
            // probability-scaled signal.
            let pi = lane_of(self.p_index(i), lane, stride);
            x[pi] = x[pi].clamp(-100.0, 100.0);
        }
    }
}

impl DdeSystem for PatchedTimelyPiFluid {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        self.lane_rhs(t, x, 0, 1, hist, dxdt);
    }

    fn min_delay(&self) -> f64 {
        LaneSystem::min_delay(self)
    }

    fn project(&mut self, t: f64, x: &mut [f64]) {
        self.lane_project(t, x, 0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcqcn_pi_pins_queue_independent_of_n() {
        // Figure 18: queue stabilizes at q_ref for any number of flows.
        let params = DcqcnParams::default_40g();
        let gains = DcqcnPiFluid::default_gains(&params, 100.0);
        let q_ref = gains.q_ref_pkts;
        for n in [2usize, 10] {
            let mut m = DcqcnPiFluid::new(params.clone(), gains.clone(), n);
            let tr = m.simulate(0.25);
            let q_tail = tr.mean_from(0, 0.2);
            assert!(
                (q_tail - q_ref).abs() / q_ref < 0.15,
                "N={n}: queue {q_tail:.1} vs q_ref {q_ref:.1}"
            );
        }
    }

    #[test]
    fn dcqcn_pi_keeps_fairness() {
        // Figure 18: flows converge to the same fair rate under PI marking.
        let params = DcqcnParams::default_40g();
        let gains = DcqcnPiFluid::default_gains(&params, 100.0);
        let mut m = DcqcnPiFluid::new(params, gains, 4);
        let tr = m.simulate(0.25);
        let fair = m.params.capacity_pps() / 4.0;
        for i in 0..4 {
            let r = tr.mean_from(m.rc_index(i), 0.2);
            assert!(
                (r - fair).abs() / fair < 0.1,
                "flow {i} rate {r:.0} vs fair {fair:.0}"
            );
        }
    }

    #[test]
    fn timely_pi_pins_queue_but_not_fairness() {
        // Figure 19 / Theorem 6: the queue is controlled to q_ref (300 KB)
        // but an asymmetric start persists — delay-only feedback cannot
        // give both.
        let params = PatchedTimelyParams::default_10g();
        let gains = PatchedTimelyPiFluid::default_gains(&params, 300.0);
        let q_ref = gains.q_ref_pkts;
        let c = params.base.capacity_pps();
        let mut m = PatchedTimelyPiFluid::new(params, gains, 2);
        let tr = m.simulate_with_rates(&[0.9 * c, 0.1 * c], 0.6);
        let q_tail = tr.mean_from(0, 0.5);
        assert!(
            (q_tail - q_ref).abs() / q_ref < 0.2,
            "queue {q_tail:.1} vs q_ref {q_ref:.1}"
        );
        let r0 = tr.mean_from(m.rate_index(0), 0.5);
        let r1 = tr.mean_from(m.rate_index(1), 0.5);
        // Utilization holds...
        assert!(((r0 + r1) - c).abs() / c < 0.15, "sum {}", r0 + r1);
        // ...but the split stays skewed (no convergence to fairness).
        assert!(
            r0 / (r0 + r1) > 0.6,
            "unfair split should persist: {} / {}",
            r0,
            r1
        );
    }
}
