//! The DCQCN fluid model (paper §3, Figure 1, Table 1).
//!
//! The model tracks, per flow `i`, the current rate `R_C`, target rate `R_T`
//! and the DCTCP-style reduction factor `α`, plus one shared bottleneck
//! queue `q`. The switch marks packets with the RED profile of Eq 3; marks
//! reach the sender after the control-loop delay `τ*` (which is *constant*
//! because modern switches mark on egress — the paper's central ECN-vs-delay
//! observation, §5.2).
//!
//! Implemented here:
//!
//! * [`DcqcnFluid::simulate`] — integrate Eqs 3–7 (per-flow extension of
//!   §3.1) as a DDE; regenerates Figures 2 and 4;
//! * [`DcqcnFluid::fixed_point`] — Theorem 1: the unique fixed point via
//!   monotone root-finding on Eq 11 (with Eqs 9, 10, 12);
//! * [`DcqcnParams::p_star_approx`] — the Taylor closed form of Eq 14;
//! * [`DcqcnFluid::loop_transfer`] / [`DcqcnFluid::margin_report`] — the
//!   linearized open loop of Appendix A evaluated numerically; regenerates
//!   the phase-margin curves of Figure 3 including their non-monotonicity
//!   in the number of flows.

use crate::jitter::Jitter;
use crate::units;
use control::complex::Complex64;
use control::linearize;
use control::margins::{phase_margin, MarginReport};
use control::roots;
use fluid::dde::{integrate_dde_with_prehistory, DdeOptions, DdeSystem};
use fluid::history::History;
use fluid::trace::Trace;

/// DCQCN parameters (Table 1), stored in human units and converted to packet
/// units on demand.
#[derive(Debug, Clone)]
pub struct DcqcnParams {
    /// Packet size in bytes (the model's "packet" unit).
    pub packet_bytes: f64,
    /// Bottleneck bandwidth `C` in Gbps.
    pub capacity_gbps: f64,
    /// RED lower threshold `K_min` in KB.
    pub kmin_kb: f64,
    /// RED upper threshold `K_max` in KB.
    pub kmax_kb: f64,
    /// RED maximum marking probability `P_max` at `K_max`.
    pub p_max: f64,
    /// DCTCP gain `g` of Eq 1.
    pub g: f64,
    /// Rate-increase step `R_AI` in Mbps (fixed at 40 Mbps in the paper).
    pub r_ai_mbps: f64,
    /// Fast-recovery steps `F` (fixed at 5).
    pub fast_recovery_steps: f64,
    /// Byte counter `B` for rate increase, in MB.
    pub byte_counter_mb: f64,
    /// Timer `T` for rate increase, in µs.
    pub timer_us: f64,
    /// CNP generation timer `τ` in µs.
    pub cnp_timer_us: f64,
    /// α-update interval `τ'` in µs (Eq 2 interval).
    pub alpha_timer_us: f64,
    /// Control-loop (feedback) delay `τ*` in µs.
    pub feedback_delay_us: f64,
    /// Minimum rate floor in Mbps (numerical guard; hardware has one too).
    pub min_rate_mbps: f64,
}

impl DcqcnParams {
    /// Defaults from \[31\] on a 40 Gbps bottleneck (the hardware DCQCN was
    /// designed for); used by the analysis figures.
    pub fn default_40g() -> Self {
        DcqcnParams {
            packet_bytes: 1000.0,
            capacity_gbps: 40.0,
            kmin_kb: 5.0,
            kmax_kb: 200.0,
            p_max: 0.01,
            g: 1.0 / 256.0,
            r_ai_mbps: 40.0,
            fast_recovery_steps: 5.0,
            byte_counter_mb: 10.0,
            timer_us: 55.0,
            cnp_timer_us: 50.0,
            alpha_timer_us: 55.0,
            feedback_delay_us: 4.0,
            min_rate_mbps: 10.0,
        }
    }

    /// Defaults on a 10 Gbps bottleneck (the FCT case-study topology,
    /// Figure 13, uses 10 Gbps links).
    pub fn default_10g() -> Self {
        DcqcnParams {
            capacity_gbps: 10.0,
            ..Self::default_40g()
        }
    }

    /// Bottleneck capacity in packets/second.
    pub fn capacity_pps(&self) -> f64 {
        units::gbps_to_pps(self.capacity_gbps, self.packet_bytes)
    }

    /// `K_min` in packets.
    pub fn kmin_pkts(&self) -> f64 {
        units::kb_to_pkts(self.kmin_kb, self.packet_bytes)
    }

    /// `K_max` in packets.
    pub fn kmax_pkts(&self) -> f64 {
        units::kb_to_pkts(self.kmax_kb, self.packet_bytes)
    }

    /// `R_AI` in packets/second.
    pub fn r_ai_pps(&self) -> f64 {
        units::mbps_to_pps(self.r_ai_mbps, self.packet_bytes)
    }

    /// Byte counter `B` in packets.
    pub fn byte_counter_pkts(&self) -> f64 {
        self.byte_counter_mb * 1e6 / self.packet_bytes
    }

    /// Increase timer `T` in seconds.
    pub fn timer_s(&self) -> f64 {
        units::us_to_s(self.timer_us)
    }

    /// CNP timer `τ` in seconds.
    pub fn cnp_timer_s(&self) -> f64 {
        units::us_to_s(self.cnp_timer_us)
    }

    /// α-update interval `τ'` in seconds.
    pub fn alpha_timer_s(&self) -> f64 {
        units::us_to_s(self.alpha_timer_us)
    }

    /// Feedback delay `τ*` in seconds.
    pub fn feedback_delay_s(&self) -> f64 {
        units::us_to_s(self.feedback_delay_us)
    }

    /// Minimum rate in packets/second.
    pub fn min_rate_pps(&self) -> f64 {
        units::mbps_to_pps(self.min_rate_mbps, self.packet_bytes)
    }

    /// RED marking probability for a queue of `q` packets (Eq 3).
    pub fn red_probability(&self, q: f64) -> f64 {
        let kmin = self.kmin_pkts();
        let kmax = self.kmax_pkts();
        if q <= kmin {
            0.0
        } else if q <= kmax {
            (q - kmin) / (kmax - kmin) * self.p_max
        } else {
            1.0
        }
    }

    /// The RED slope `dp/dq` in the interior region (per packet), which is
    /// the feedback gain of the linearized loop.
    pub fn red_slope(&self) -> f64 {
        self.p_max / (self.kmax_pkts() - self.kmin_pkts())
    }

    /// Closed-form approximation of the fixed-point marking probability
    /// (Eq 14): `p* ≈ ∛( R_AI·N²/(τ'·C²) · (1/B + N/(T·C))² )`.
    pub fn p_star_approx(&self, n_flows: usize) -> f64 {
        let n = n_flows as f64;
        let c = self.capacity_pps();
        let lead = self.r_ai_pps() * n * n / (self.alpha_timer_s() * c * c);
        let inner = 1.0 / self.byte_counter_pkts() + n / (self.timer_s() * c);
        (lead * inner * inner).cbrt()
    }
}

/// `(1 − p)^e` computed stably for small `p`.
fn pow1m(p: f64, e: f64) -> f64 {
    if p >= 1.0 {
        return 0.0;
    }
    (e * (-p).ln_1p()).exp()
}

/// `1 − (1 − p)^e` computed stably for small `p`.
fn one_minus_pow(p: f64, e: f64) -> f64 {
    if p >= 1.0 {
        return 1.0;
    }
    -(e * (-p).ln_1p()).exp_m1()
}

/// `p / ((1 − p)^{−e} − 1)`, the expected per-event probability factor in
/// the rate-increase terms (Eq 12's `b` and `d`). Limit `1/e` as `p → 0`.
fn rate_event_factor(p: f64, e: f64) -> f64 {
    let e = e.max(1e-9);
    if p < 1e-12 {
        return 1.0 / e;
    }
    if p >= 1.0 {
        return 0.0;
    }
    let denom = (-e * (-p).ln_1p()).exp_m1();
    p / denom
}

/// The unique fixed point of Theorem 1.
#[derive(Debug, Clone)]
pub struct DcqcnFixedPoint {
    /// Marking probability `p*` solving Eq 11.
    pub p_star: f64,
    /// Queue length `q*` in packets (Eq 9). When `p* > P_max` the RED
    /// profile cannot realize `p*` in its linear region and the physical
    /// queue saturates near `K_max`; see `saturated`.
    pub q_star_pkts: f64,
    /// Queue length in KB for reporting.
    pub q_star_kb: f64,
    /// Per-flow rate `R_C* = C/N` in packets/second (Eq 13).
    pub rate_per_flow_pps: f64,
    /// Per-flow target rate `R_T*` in packets/second.
    pub target_rate_pps: f64,
    /// Fixed-point `α*` (Eq 10).
    pub alpha_star: f64,
    /// True when `p* > P_max`, i.e. the operating point lies beyond the RED
    /// linear region (queue pinned near `K_max`). The linearized analysis
    /// still uses the RED slope, following the paper.
    pub saturated: bool,
}

/// The DCQCN fluid model for `N` flows over one bottleneck.
///
/// State layout: `x\[0\] = q` (packets); flow `i` occupies
/// `x[1+3i..4+3i] = (R_C, R_T, α)`.
///
/// ```
/// use models::dcqcn::{DcqcnFluid, DcqcnParams};
///
/// let m = DcqcnFluid::new(DcqcnParams::default_40g(), 4);
/// let fp = m.fixed_point();            // Theorem 1
/// assert!((fp.rate_per_flow_pps - m.params.capacity_pps() / 4.0).abs() < 1e-6);
/// assert!(m.margin_report().is_stable()); // 4 µs loop: stable
/// ```
#[derive(Debug, Clone)]
pub struct DcqcnFluid {
    /// Model parameters.
    pub params: DcqcnParams,
    /// Number of flows at the bottleneck.
    pub n_flows: usize,
    /// Optional feedback-delay jitter process (Figure 20).
    pub jitter: Option<Jitter>,
    /// Scratch row for whole-state delayed lookups (`History::eval_all`):
    /// the RHS needs the queue plus every flow's rate at the same delayed
    /// time, and this buffer keeps that one-locate lookup allocation-free.
    scratch: Vec<f64>,
}

impl DcqcnFluid {
    /// New model with the given parameters and flow count.
    pub fn new(params: DcqcnParams, n_flows: usize) -> Self {
        assert!(n_flows >= 1, "need at least one flow");
        DcqcnFluid {
            params,
            n_flows,
            jitter: None,
            scratch: vec![0.0; 1 + 3 * n_flows],
        }
    }

    /// Attach feedback-delay jitter (uniform over `[0, amplitude]` seconds,
    /// resampled every `interval` seconds; deterministic per seed).
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// State dimension: shared queue + 3 per flow.
    pub fn state_dim(&self) -> usize {
        1 + 3 * self.n_flows
    }

    /// Index of flow `i`'s current rate in the state vector.
    pub fn rc_index(&self, i: usize) -> usize {
        1 + 3 * i
    }

    /// Index of flow `i`'s target rate.
    pub fn rt_index(&self, i: usize) -> usize {
        2 + 3 * i
    }

    /// Index of flow `i`'s α.
    pub fn alpha_index(&self, i: usize) -> usize {
        3 + 3 * i
    }

    /// Per-flow derivative given the flow's current state, its delayed rate
    /// and the delayed marking probability. This closure *is* the model; the
    /// linearization differentiates it numerically.
    #[allow(clippy::too_many_arguments)]
    fn flow_rhs(
        p: &DcqcnParams,
        rc: f64,
        rt: f64,
        alpha: f64,
        rc_delayed: f64,
        p_delayed: f64,
        out: &mut [f64],
    ) {
        let tau = p.cnp_timer_s();
        let tau_prime = p.alpha_timer_s();
        let f = p.fast_recovery_steps;
        let b_cnt = p.byte_counter_pkts();
        let t_tmr = p.timer_s();
        let r_ai = p.r_ai_pps();

        let rcd = rc_delayed.max(0.0);
        let a = one_minus_pow(p_delayed, tau * rcd);
        let b = rate_event_factor(p_delayed, b_cnt);
        let c = pow1m(p_delayed, f * b_cnt) * b;
        let d = rate_event_factor(p_delayed, t_tmr * rcd);
        let e = pow1m(p_delayed, f * t_tmr * rcd) * d;

        // Eq 7: rate decrease (CNP-driven) + averaging toward target on
        // byte-counter and timer events.
        out[0] = -rc * alpha / (2.0 * tau) * a + (rt - rc) / 2.0 * rcd * (b + d);
        // Eq 6: target collapses to R_C on decrease; additive increase after
        // fast recovery on both byte-counter and timer events.
        out[1] = -(rt - rc) / tau * a + r_ai * rcd * (c + e);
        // Eq 5: α tracks the marking probability seen over τ'.
        out[2] = p.g / tau_prime * (one_minus_pow(p_delayed, tau_prime * rcd) - alpha);
    }

    /// Public access to the per-flow dynamics for composition (the PI
    /// variant in [`crate::pi`] reuses DCQCN's flow behaviour with a
    /// different marking source).
    #[allow(clippy::too_many_arguments)]
    pub fn flow_rhs_pub(
        p: &DcqcnParams,
        rc: f64,
        rt: f64,
        alpha: f64,
        rc_delayed: f64,
        p_delayed: f64,
        out: &mut [f64],
    ) {
        Self::flow_rhs(p, rc, rt, alpha, rc_delayed, p_delayed, out)
    }

    /// Theorem 1: solve Eq 11 for the unique `p*`, then recover `q*`, `α*`
    /// and `R_T*` (Eqs 9, 10 and the `dR_T/dt = 0` balance).
    pub fn fixed_point(&self) -> DcqcnFixedPoint {
        let p = &self.params;
        let rc_star = p.capacity_pps() / self.n_flows as f64;
        let tau = p.cnp_timer_s();
        let tau_prime = p.alpha_timer_s();
        let f = p.fast_recovery_steps;
        let b_cnt = p.byte_counter_pkts();
        let t_tmr = p.timer_s();
        let r_ai = p.r_ai_pps();

        let lhs = |pp: f64| -> f64 {
            let a = one_minus_pow(pp, tau * rc_star);
            let alpha = one_minus_pow(pp, tau_prime * rc_star);
            let b = rate_event_factor(pp, b_cnt);
            let c = pow1m(pp, f * b_cnt) * b;
            let d = rate_event_factor(pp, t_tmr * rc_star);
            let e = pow1m(pp, f * t_tmr * rc_star) * d;
            let denom = (b + d) * (c + e);
            let val = if denom > 0.0 && denom.is_finite() {
                a * a * alpha / denom
            } else {
                f64::INFINITY
            };
            // As p → 1 the increase-event factors vanish and the LHS
            // diverges; clamp to keep the bracket usable for the solver.
            if val.is_finite() {
                val
            } else {
                1e300
            }
        };
        let rhs = tau * tau * r_ai * rc_star;
        // The LHS is monotone increasing in p (paper, proof of Theorem 1):
        // bracket and bisect via Brent.
        let p_star = roots::brent(|pp| lhs(pp) - rhs, 1e-10, 0.999, 1e-14)
            // simlint: allow(panic, no-unwrap-sim) — Theorem 1 guarantees the bracket; a miss is a model bug
            .expect("Eq 11 must bracket a root: LHS(0) < RHS < LHS(1)");

        let q_star_pkts = p_star / p.p_max * (p.kmax_pkts() - p.kmin_pkts()) + p.kmin_pkts(); // Eq 9
        let alpha_star = one_minus_pow(p_star, tau_prime * rc_star); // Eq 10
        let a = one_minus_pow(p_star, tau * rc_star);
        let b = rate_event_factor(p_star, b_cnt);
        let c = pow1m(p_star, f * b_cnt) * b;
        let d = rate_event_factor(p_star, t_tmr * rc_star);
        let e = pow1m(p_star, f * t_tmr * rc_star) * d;
        let target_rate_pps = rc_star + tau * r_ai * rc_star * (c + e) / a.max(1e-300);

        DcqcnFixedPoint {
            p_star,
            q_star_pkts,
            q_star_kb: units::pkts_to_kb(q_star_pkts, p.packet_bytes),
            rate_per_flow_pps: rc_star,
            target_rate_pps,
            alpha_star,
            saturated: p_star > p.p_max,
        }
    }

    /// Open-loop transfer function `L(jω)` of the linearized system around
    /// the fixed point (Appendix A, computed numerically).
    ///
    /// The loop is broken at the marking probability: the per-flow (R_C,
    /// R_T, α) subsystem responds to `δp(t − τ*)` (and to its own delayed
    /// rate `δR_C(t − τ*)`); N flows feed the queue integrator `N/s`; RED
    /// closes the loop with slope `P_max/(K_max − K_min)`.
    pub fn loop_transfer(&self) -> impl Fn(f64) -> Option<Complex64> {
        let fp = self.fixed_point();
        let p = self.params.clone();
        let n = self.n_flows as f64;
        let tau_star = p.feedback_delay_s();

        let x_star = [fp.rate_per_flow_pps, fp.target_rate_pps, fp.alpha_star];
        let rcd_star = fp.rate_per_flow_pps;
        let p_star = fp.p_star;

        // A0 = ∂f/∂(rc, rt, α) at the fixed point.
        let p_a0 = p.clone();
        let a0 = linearize::jacobian(
            move |x: &[f64], out: &mut [f64]| {
                // x = [rc, rt, α]: the per-flow state layout
                DcqcnFluid::flow_rhs(&p_a0, x[0], x[1], x[2], rcd_star, p_star, out)
            },
            &x_star,
            3,
        );
        // A1 (delay τ*): only the delayed R_C column is nonzero.
        let p_a1 = p.clone();
        let x0 = x_star;
        let a1_col = linearize::derivative_column(
            move |rcd: f64, out: &mut [f64]| {
                // x0 = [rc, rt, α]: the per-flow state layout
                DcqcnFluid::flow_rhs(&p_a1, x0[0], x0[1], x0[2], rcd, p_star, out)
            },
            rcd_star,
            3,
        );
        let mut a1 = vec![vec![0.0; 3]; 3];
        for i in 0..3 {
            a1[i][0] = a1_col[i]; // column 0 = the delayed R_C state
        }
        // b (delay τ*): ∂f/∂p_delayed.
        let p_b = p.clone();
        let b_col = linearize::derivative_column(
            move |pd: f64, out: &mut [f64]| {
                // x0 = [rc, rt, α]: the per-flow state layout
                DcqcnFluid::flow_rhs(&p_b, x0[0], x0[1], x0[2], rcd_star, pd, out)
            },
            p_star,
            3,
        );

        let sys = control::DelayLti {
            a0,
            delayed_a: vec![(tau_star, a1)],
            b: vec![(tau_star, b_col)],
            c: vec![1.0, 0.0, 0.0],
            d: 0.0,
        };
        sys.validate();
        let k_red = p.red_slope();

        move |omega: f64| {
            let h = sys.freq_response(omega)?; // δR_C / δp
            let integ = Complex64::from_re(n) / Complex64::j(omega); // δq/δR_C
                                                                     // Negative-feedback convention: L = −(RED slope)·(N/s)·H.
            Some(-(h * integ).scale(k_red))
        }
    }

    /// Phase-margin report for this configuration (one point of Figure 3).
    pub fn margin_report(&self) -> MarginReport {
        let l = self.loop_transfer();
        phase_margin(l, 1e1, 1e7, 3000)
    }

    /// Integrate the fluid model (Eqs 3–7) for `duration_s` seconds.
    ///
    /// Flows start at line rate with `α = 1` and an empty queue, exactly as
    /// the protocol specifies ("DCQCN does not have slow start. Senders
    /// start at line rate."). Returns the full state trace.
    pub fn simulate(&mut self, duration_s: f64) -> Trace {
        let step = (self.params.feedback_delay_s() / 4.0).min(1e-6);
        self.simulate_with_step(duration_s, step)
    }

    /// Integrate with an explicit step size (tests use this for convergence
    /// checks).
    pub fn simulate_with_step(&mut self, duration_s: f64, step_s: f64) -> Trace {
        let line_rate = self.params.capacity_pps();
        let mut x0 = vec![0.0; self.state_dim()];
        for i in 0..self.n_flows {
            x0[self.rc_index(i)] = line_rate;
            x0[self.rt_index(i)] = line_rate;
            x0[self.alpha_index(i)] = 1.0;
        }
        let record_every = ((duration_s / step_s) / 4000.0).ceil().max(1.0) as usize;
        let horizon = (self.params.feedback_delay_s()
            + self.jitter.as_ref().map_or(0.0, Jitter::max_extra))
            * 4.0
            + 10.0 * step_s;
        let opts = DdeOptions {
            step: step_s,
            record_every,
            history_horizon_s: horizon,
        };
        let pre = x0.clone();
        integrate_dde_with_prehistory(self, &x0.clone(), &pre, 0.0, duration_s, &opts)
    }

    /// Convenience: extract per-flow rates in Gbps and queue in KB from a
    /// trace produced by [`DcqcnFluid::simulate`].
    pub fn rates_gbps(&self, trace: &Trace, flow: usize) -> Vec<(f64, f64)> {
        trace
            .series(self.rc_index(flow))
            .into_iter()
            .map(|(t, pps)| (t, units::pps_to_gbps(pps, self.params.packet_bytes)))
            .collect()
    }

    /// Queue-length series in KB.
    pub fn queue_kb(&self, trace: &Trace) -> Vec<(f64, f64)> {
        trace
            .series(0)
            .into_iter()
            .map(|(t, pkts)| (t, units::pkts_to_kb(pkts, self.params.packet_bytes)))
            .collect()
    }
}

impl DdeSystem for DcqcnFluid {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        // All delayed quantities (queue + every flow's rate) live at the same
        // delayed time, so fetch the whole state row with one knot search.
        let mut delayed = std::mem::take(&mut self.scratch);
        let p = &self.params;
        let cap = p.capacity_pps();
        let extra = self.jitter.as_ref().map_or(0.0, |j| j.extra(t));
        let delay = p.feedback_delay_s() + extra;
        let td = t - delay;

        hist.eval_all(td, &mut delayed);
        let q_delayed = delayed[0].max(0.0); // component 0 is the queue
        let p_delayed = p.red_probability(q_delayed);

        // Eq 4: queue integrates excess arrival rate (projection keeps q ≥ 0).
        let sum_rates: f64 = (0..self.n_flows).map(|i| x[self.rc_index(i)]).sum();
        // State component 0 is the shared queue.
        dxdt[0] = if x[0] <= 0.0 && sum_rates < cap {
            0.0
        } else {
            sum_rates - cap
        };

        let mut out = [0.0; 3];
        for i in 0..self.n_flows {
            let rc = x[self.rc_index(i)];
            let rt = x[self.rt_index(i)];
            let alpha = x[self.alpha_index(i)];
            let rc_delayed = delayed[self.rc_index(i)];
            DcqcnFluid::flow_rhs(p, rc, rt, alpha, rc_delayed, p_delayed, &mut out);
            let [d_rc, d_rt, d_alpha] = out;
            dxdt[self.rc_index(i)] = d_rc;
            dxdt[self.rt_index(i)] = d_rt;
            dxdt[self.alpha_index(i)] = d_alpha;
        }
        self.scratch = delayed;
    }

    fn min_delay(&self) -> f64 {
        // Jitter only adds delay, so the base feedback delay is the minimum.
        self.params.feedback_delay_s()
    }

    fn project(&mut self, _t: f64, x: &mut [f64]) {
        let line = self.params.capacity_pps();
        let floor = self.params.min_rate_pps();
        x[0] = x[0].max(0.0); // component 0 is the queue
        for i in 0..self.n_flows {
            let rc = self.rc_index(i);
            let rt = self.rt_index(i);
            let al = self.alpha_index(i);
            x[rc] = x[rc].clamp(floor, line);
            x[rt] = x[rt].clamp(floor, line);
            x[al] = x[al].clamp(0.0, 1.0);
            desim::invariants::unit_interval("dcqcn fluid alpha", x[al]);
            desim::invariants::finite_rate("dcqcn fluid rc_pps", x[rc]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_profile_matches_eq3() {
        let p = DcqcnParams::default_40g();
        assert_eq!(p.red_probability(0.0), 0.0);
        assert_eq!(p.red_probability(p.kmin_pkts()), 0.0);
        let mid = (p.kmin_pkts() + p.kmax_pkts()) / 2.0;
        assert!((p.red_probability(mid) - p.p_max / 2.0).abs() < 1e-12);
        assert!((p.red_probability(p.kmax_pkts()) - p.p_max).abs() < 1e-12);
        assert_eq!(p.red_probability(p.kmax_pkts() + 1.0), 1.0);
    }

    #[test]
    fn stable_power_helpers() {
        // Against direct evaluation at moderate p.
        let p = 0.01;
        let e = 100.0;
        assert!((pow1m(p, e) - 0.99f64.powf(100.0)).abs() < 1e-12);
        assert!((one_minus_pow(p, e) - (1.0 - 0.99f64.powf(100.0))).abs() < 1e-12);
        // Limits at p → 0.
        assert!((rate_event_factor(0.0, 50.0) - 0.02).abs() < 1e-12);
        assert!((one_minus_pow(0.0, 1e6)).abs() < 1e-12);
        // rate_event_factor continuity near 0.
        let f1 = rate_event_factor(1e-13, 50.0);
        let f2 = rate_event_factor(1e-11, 50.0);
        assert!((f1 - f2).abs() < 1e-6);
    }

    #[test]
    fn eq11_lhs_is_monotone_in_p() {
        // The uniqueness proof hinges on monotonicity; verify numerically.
        let m = DcqcnFluid::new(DcqcnParams::default_40g(), 4);
        let p = &m.params;
        let rc = p.capacity_pps() / 4.0;
        let tau = p.cnp_timer_s();
        let lhs = |pp: f64| {
            let a = one_minus_pow(pp, tau * rc);
            let alpha = one_minus_pow(pp, p.alpha_timer_s() * rc);
            let b = rate_event_factor(pp, p.byte_counter_pkts());
            let c = pow1m(pp, 5.0 * p.byte_counter_pkts()) * b;
            let d = rate_event_factor(pp, p.timer_s() * rc);
            let e = pow1m(pp, 5.0 * p.timer_s() * rc) * d;
            a * a * alpha / ((b + d) * (c + e))
        };
        let mut prev = lhs(1e-8);
        for k in 1..200 {
            let pp = 1e-8 + k as f64 * (0.9 / 200.0);
            let cur = lhs(pp);
            assert!(cur >= prev, "LHS not monotone at p = {pp}");
            prev = cur;
        }
    }

    #[test]
    fn fixed_point_rates_are_fair_share() {
        for n in [1usize, 2, 10, 64] {
            let m = DcqcnFluid::new(DcqcnParams::default_40g(), n);
            let fp = m.fixed_point();
            let expect = m.params.capacity_pps() / n as f64;
            assert!((fp.rate_per_flow_pps - expect).abs() < 1e-6);
            assert!(fp.p_star > 0.0 && fp.p_star < 1.0);
            assert!(fp.alpha_star > 0.0 && fp.alpha_star < 1.0);
            assert!(fp.target_rate_pps >= fp.rate_per_flow_pps);
        }
    }

    #[test]
    fn eq14_approximates_exact_p_star() {
        // The paper: "Numerical analysis shows that p* is typically very
        // close to 0", and Eq 14 is the O(p^4) Taylor approximation.
        for n in [2usize, 5, 10] {
            let m = DcqcnFluid::new(DcqcnParams::default_40g(), n);
            let exact = m.fixed_point().p_star;
            let approx = m.params.p_star_approx(n);
            let rel = (exact - approx).abs() / exact;
            // The O(p⁴) truncation is coarse at larger N where p* grows;
            // the paper only claims the approximation for p* "very close
            // to 0".
            assert!(
                rel < 0.4,
                "N={n}: exact {exact:.6}, approx {approx:.6}, rel {rel:.3}"
            );
        }
    }

    #[test]
    fn fixed_point_queue_grows_with_flows() {
        // Eq 14: p* (hence q*) increases with N — the motivation for the PI
        // controller in §5.
        let q: Vec<f64> = [2usize, 8, 32]
            .iter()
            .map(|&n| {
                DcqcnFluid::new(DcqcnParams::default_40g(), n)
                    .fixed_point()
                    .q_star_pkts
            })
            .collect();
        assert!(q[0] < q[1] && q[1] < q[2], "q* = {q:?}");
    }

    #[test]
    fn rhs_is_zero_at_fixed_point() {
        let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 2);
        let fp = m.fixed_point();
        let mut x = vec![fp.q_star_pkts];
        for _ in 0..2 {
            x.extend_from_slice(&[fp.rate_per_flow_pps, fp.target_rate_pps, fp.alpha_star]);
        }
        let hist = History::new(0.0, &x);
        let mut dx = vec![0.0; x.len()];
        // Evaluate at a time far enough that delayed lookups hit pre-history
        // (which equals the fixed point).
        m.rhs(1.0, &x, &hist, &mut dx);
        // Queue derivative: ΣR = C exactly.
        assert!(dx[0].abs() < 1e-3, "dq/dt = {}", dx[0]);
        // Rate derivatives are zero relative to the rate scale.
        let scale = fp.rate_per_flow_pps;
        for i in 0..2 {
            assert!(
                dx[1 + 3 * i].abs() / scale < 1e-6,
                "dRc/dt = {}",
                dx[1 + 3 * i]
            );
            assert!(
                dx[2 + 3 * i].abs() / scale < 1e-6,
                "dRt/dt = {}",
                dx[2 + 3 * i]
            );
            assert!(dx[3 + 3 * i].abs() < 1e-9, "dα/dt = {}", dx[3 + 3 * i]);
        }
    }

    #[test]
    fn two_flows_converge_to_fair_share_at_low_delay() {
        // Figure 4, left column: τ* = 4 µs is stable.
        let params = DcqcnParams::default_40g();
        let mut m = DcqcnFluid::new(params.clone(), 2);
        let tr = m.simulate(0.05);
        let fp = m.fixed_point();
        let last = tr.last_state().unwrap();
        for i in 0..2 {
            let rel = (last[m.rc_index(i)] - fp.rate_per_flow_pps).abs() / fp.rate_per_flow_pps;
            assert!(rel < 0.05, "flow {i} rate off by {rel}");
        }
        // Queue settles near q*.
        let q_tail = tr.mean_from(0, 0.04);
        assert!(
            (q_tail - fp.q_star_pkts).abs() / fp.q_star_pkts < 0.25,
            "queue mean {q_tail} vs q* {}",
            fp.q_star_pkts
        );
    }

    #[test]
    fn unequal_initial_rates_converge_fair() {
        // Theorem 2's conclusion, checked in the fluid model: different
        // starting rates end at the same rate.
        let params = DcqcnParams::default_40g();
        let mut m = DcqcnFluid::new(params, 2);
        let line = m.params.capacity_pps();
        let mut x0 = vec![0.0; m.state_dim()];
        x0[m.rc_index(0)] = line;
        x0[m.rt_index(0)] = line;
        x0[m.alpha_index(0)] = 1.0;
        x0[m.rc_index(1)] = line * 0.1;
        x0[m.rt_index(1)] = line * 0.1;
        x0[m.alpha_index(1)] = 1.0;
        let opts = DdeOptions {
            step: 1e-6,
            record_every: 50,
            history_horizon_s: 0.01,
        };
        let tr = integrate_dde_with_prehistory(&mut m, &x0.clone(), &x0.clone(), 0.0, 0.1, &opts);
        let last = tr.last_state().unwrap();
        let r0 = last[m.rc_index(0)];
        let r1 = last[m.rc_index(1)];
        assert!(
            (r0 - r1).abs() / (r0 + r1) < 0.05,
            "rates did not converge: {r0} vs {r1}"
        );
    }

    #[test]
    fn stable_at_low_delay_unstable_at_10_flows_high_delay() {
        // The paper's headline non-monotonicity (Figures 3a, 4): with
        // τ* = 85 µs, N = 10 oscillates while N = 2 settles.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;

        let mut m10 = DcqcnFluid::new(p.clone(), 10);
        let tr10 = m10.simulate(0.12);
        let fp10 = m10.fixed_point();
        let osc10 = tr10.peak_to_peak_from(0, 0.08) / fp10.q_star_pkts.max(1.0);

        let mut m2 = DcqcnFluid::new(p.clone(), 2);
        let tr2 = m2.simulate(0.12);
        let fp2 = m2.fixed_point();
        let osc2 = tr2.peak_to_peak_from(0, 0.08) / fp2.q_star_pkts.max(1.0);

        assert!(
            osc10 > 2.0 * osc2,
            "expected N=10 much less stable: osc10 = {osc10:.3}, osc2 = {osc2:.3}"
        );
    }

    #[test]
    fn margin_report_stable_at_small_delay() {
        let m = DcqcnFluid::new(DcqcnParams::default_40g(), 2);
        let rep = m.margin_report();
        assert!(
            rep.is_stable(),
            "2 flows at 4 µs must be stable, pm = {:?}",
            rep.phase_margin_deg
        );
    }

    #[test]
    fn margin_nonmonotonic_in_flow_count_at_high_delay() {
        // Figure 3(a): at τ* = 85–100 µs the phase margin dips around
        // N ≈ 10 and recovers for large N.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let pm = |n: usize| {
            DcqcnFluid::new(p.clone(), n)
                .margin_report()
                .phase_margin_deg
                .unwrap_or(180.0)
        };
        let pm2 = pm(2);
        let pm10 = pm(10);
        let pm64 = pm(64);
        assert!(
            pm10 < pm2 && pm10 < pm64,
            "non-monotonicity missing: pm2={pm2:.1}, pm10={pm10:.1}, pm64={pm64:.1}"
        );
        assert!(
            pm10 < 0.0,
            "N=10 at 85us should be unstable, pm10={pm10:.1}"
        );
    }

    #[test]
    fn smaller_rai_improves_stability() {
        // Figure 3(b): smaller R_AI stabilizes.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let pm_default = DcqcnFluid::new(p.clone(), 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        p.r_ai_mbps = 10.0;
        let pm_small = DcqcnFluid::new(p, 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        assert!(
            pm_small > pm_default,
            "R_AI=10: {pm_small:.1} vs R_AI=40: {pm_default:.1}"
        );
    }

    #[test]
    fn larger_kmax_improves_stability() {
        // Figure 3(c): larger K_max (gentler RED slope) stabilizes.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let pm_default = DcqcnFluid::new(p.clone(), 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        p.kmax_kb = 1000.0;
        let pm_big = DcqcnFluid::new(p, 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        assert!(
            pm_big > pm_default,
            "Kmax=1MB: {pm_big:.1} vs 200KB: {pm_default:.1}"
        );
    }
}
