//! The DCQCN fluid model (paper §3, Figure 1, Table 1).
//!
//! The model tracks, per flow `i`, the current rate `R_C`, target rate `R_T`
//! and the DCTCP-style reduction factor `α`, plus one shared bottleneck
//! queue `q`. The switch marks packets with the RED profile of Eq 3; marks
//! reach the sender after the control-loop delay `τ*` (which is *constant*
//! because modern switches mark on egress — the paper's central ECN-vs-delay
//! observation, §5.2).
//!
//! Implemented here:
//!
//! * [`DcqcnFluid::simulate`] — integrate Eqs 3–7 (per-flow extension of
//!   §3.1) as a DDE; regenerates Figures 2 and 4;
//! * [`DcqcnFluid::fixed_point`] — Theorem 1: the unique fixed point via
//!   monotone root-finding on Eq 11 (with Eqs 9, 10, 12);
//! * [`DcqcnParams::p_star_approx`] — the Taylor closed form of Eq 14;
//! * [`DcqcnFluid::loop_transfer`] / [`DcqcnFluid::margin_report`] — the
//!   linearized open loop of Appendix A evaluated numerically; regenerates
//!   the phase-margin curves of Figure 3 including their non-monotonicity
//!   in the number of flows.

use crate::jitter::Jitter;
use crate::units;
use control::complex::Complex64;
use control::linearize::{self, JacobianCache};
use control::margins::{phase_margin_adaptive, MarginReport};
use control::roots;
use control::DelayLtiEvaluator;
use faults::SimError;
use fluid::batch::{lane_of, pack_lanes, try_integrate_dde_batch, LaneBatch, LaneSystem};
use fluid::dde::{integrate_dde_with_prehistory, DdeOptions, DdeSystem};
use fluid::history::History;
use fluid::trace::Trace;
use std::cell::RefCell;

/// DCQCN parameters (Table 1), stored in human units and converted to packet
/// units on demand.
#[derive(Debug, Clone)]
pub struct DcqcnParams {
    /// Packet size in bytes (the model's "packet" unit).
    pub packet_bytes: f64,
    /// Bottleneck bandwidth `C` in Gbps.
    pub capacity_gbps: f64,
    /// RED lower threshold `K_min` in KB.
    pub kmin_kb: f64,
    /// RED upper threshold `K_max` in KB.
    pub kmax_kb: f64,
    /// RED maximum marking probability `P_max` at `K_max`.
    pub p_max: f64,
    /// DCTCP gain `g` of Eq 1.
    pub g: f64,
    /// Rate-increase step `R_AI` in Mbps (fixed at 40 Mbps in the paper).
    pub r_ai_mbps: f64,
    /// Fast-recovery steps `F` (fixed at 5).
    pub fast_recovery_steps: f64,
    /// Byte counter `B` for rate increase, in MB.
    pub byte_counter_mb: f64,
    /// Timer `T` for rate increase, in µs.
    pub timer_us: f64,
    /// CNP generation timer `τ` in µs.
    pub cnp_timer_us: f64,
    /// α-update interval `τ'` in µs (Eq 2 interval).
    pub alpha_timer_us: f64,
    /// Control-loop (feedback) delay `τ*` in µs.
    pub feedback_delay_us: f64,
    /// Minimum rate floor in Mbps (numerical guard; hardware has one too).
    pub min_rate_mbps: f64,
}

impl DcqcnParams {
    /// Defaults from \[31\] on a 40 Gbps bottleneck (the hardware DCQCN was
    /// designed for); used by the analysis figures.
    pub fn default_40g() -> Self {
        DcqcnParams {
            packet_bytes: 1000.0,
            capacity_gbps: 40.0,
            kmin_kb: 5.0,
            kmax_kb: 200.0,
            p_max: 0.01,
            g: 1.0 / 256.0,
            r_ai_mbps: 40.0,
            fast_recovery_steps: 5.0,
            byte_counter_mb: 10.0,
            timer_us: 55.0,
            cnp_timer_us: 50.0,
            alpha_timer_us: 55.0,
            feedback_delay_us: 4.0,
            min_rate_mbps: 10.0,
        }
    }

    /// Defaults on a 10 Gbps bottleneck (the FCT case-study topology,
    /// Figure 13, uses 10 Gbps links).
    pub fn default_10g() -> Self {
        DcqcnParams {
            capacity_gbps: 10.0,
            ..Self::default_40g()
        }
    }

    /// Bottleneck capacity in packets/second.
    pub fn capacity_pps(&self) -> f64 {
        units::gbps_to_pps(self.capacity_gbps, self.packet_bytes)
    }

    /// `K_min` in packets.
    pub fn kmin_pkts(&self) -> f64 {
        units::kb_to_pkts(self.kmin_kb, self.packet_bytes)
    }

    /// `K_max` in packets.
    pub fn kmax_pkts(&self) -> f64 {
        units::kb_to_pkts(self.kmax_kb, self.packet_bytes)
    }

    /// `R_AI` in packets/second.
    pub fn r_ai_pps(&self) -> f64 {
        units::mbps_to_pps(self.r_ai_mbps, self.packet_bytes)
    }

    /// Byte counter `B` in packets.
    pub fn byte_counter_pkts(&self) -> f64 {
        self.byte_counter_mb * 1e6 / self.packet_bytes
    }

    /// Increase timer `T` in seconds.
    pub fn timer_s(&self) -> f64 {
        units::us_to_s(self.timer_us)
    }

    /// CNP timer `τ` in seconds.
    pub fn cnp_timer_s(&self) -> f64 {
        units::us_to_s(self.cnp_timer_us)
    }

    /// α-update interval `τ'` in seconds.
    pub fn alpha_timer_s(&self) -> f64 {
        units::us_to_s(self.alpha_timer_us)
    }

    /// Feedback delay `τ*` in seconds.
    pub fn feedback_delay_s(&self) -> f64 {
        units::us_to_s(self.feedback_delay_us)
    }

    /// Minimum rate in packets/second.
    pub fn min_rate_pps(&self) -> f64 {
        units::mbps_to_pps(self.min_rate_mbps, self.packet_bytes)
    }

    /// RED marking probability for a queue of `q` packets (Eq 3).
    pub fn red_probability(&self, q: f64) -> f64 {
        let kmin = self.kmin_pkts();
        let kmax = self.kmax_pkts();
        if q <= kmin {
            0.0
        } else if q <= kmax {
            (q - kmin) / (kmax - kmin) * self.p_max
        } else {
            1.0
        }
    }

    /// The RED slope `dp/dq` in the interior region (per packet), which is
    /// the feedback gain of the linearized loop.
    pub fn red_slope(&self) -> f64 {
        self.p_max / (self.kmax_pkts() - self.kmin_pkts())
    }

    /// Closed-form approximation of the fixed-point marking probability
    /// (Eq 14): `p* ≈ ∛( R_AI·N²/(τ'·C²) · (1/B + N/(T·C))² )`.
    pub fn p_star_approx(&self, n_flows: usize) -> f64 {
        let n = n_flows as f64;
        let c = self.capacity_pps();
        let lead = self.r_ai_pps() * n * n / (self.alpha_timer_s() * c * c);
        let inner = 1.0 / self.byte_counter_pkts() + n / (self.timer_s() * c);
        (lead * inner * inner).cbrt()
    }
}

/// `(1 − p)^e` computed stably for small `p`.
fn pow1m(p: f64, e: f64) -> f64 {
    pow1m_ln(p, (-p).ln_1p(), e)
}

/// [`pow1m`] with the log `l = ln(1 − p)` precomputed. Every power helper is
/// a function of `e · l`, so an N-flow RHS evaluation hoists the single
/// `ln_1p` out of the per-flow loop; the product multiplies in the same
/// order as the fused form, so the result is bitwise unchanged.
fn pow1m_ln(p: f64, l: f64, e: f64) -> f64 {
    if p >= 1.0 {
        return 0.0;
    }
    (e * l).exp()
}

/// `1 − (1 − p)^e` computed stably for small `p`.
fn one_minus_pow(p: f64, e: f64) -> f64 {
    one_minus_pow_ln(p, (-p).ln_1p(), e)
}

/// [`one_minus_pow`] with `l = ln(1 − p)` precomputed (see [`pow1m_ln`]).
fn one_minus_pow_ln(p: f64, l: f64, e: f64) -> f64 {
    if p >= 1.0 {
        return 1.0;
    }
    -(e * l).exp_m1()
}

/// `p / ((1 − p)^{−e} − 1)`, the expected per-event probability factor in
/// the rate-increase terms (Eq 12's `b` and `d`). Limit `1/e` as `p → 0`.
fn rate_event_factor(p: f64, e: f64) -> f64 {
    rate_event_factor_ln(p, (-p).ln_1p(), e)
}

/// [`rate_event_factor`] with `l = ln(1 − p)` precomputed (see [`pow1m_ln`]).
fn rate_event_factor_ln(p: f64, l: f64, e: f64) -> f64 {
    let e = e.max(1e-9);
    if p < 1e-12 {
        return 1.0 / e;
    }
    if p >= 1.0 {
        return 0.0;
    }
    let denom = (-e * l).exp_m1();
    p / denom
}

/// Marking terms shared by every flow at one delayed time: the log
/// `l = ln(1 − p_delayed)` plus the byte-counter event factors `b` and `c`
/// of Eq 12, which depend only on `p_delayed` (never on the flow's own
/// rate). Hoisting them out of the per-flow loop removes most of the
/// transcendental calls from an N-flow RHS evaluation without changing a
/// bit of the arithmetic.
struct MarkTerms {
    /// Delayed marking probability `p(t − τ*)`.
    p_delayed: f64,
    /// `ln(1 − p_delayed)`.
    l: f64,
    /// Eq 12's `b`: byte-counter event factor.
    b: f64,
    /// Eq 12's `c`: post-fast-recovery byte-counter increase factor.
    c: f64,
}

/// The per-flow transcendental factors of Eqs 5–7, functions of the flow's
/// delayed rate only (given the shared [`MarkTerms`]). Flows with the
/// bitwise-same delayed rate — e.g. every flow of a symmetric run — share
/// one computation; see the memo in the RHS flow loop.
struct FlowTerms {
    /// Delayed rate clamped non-negative, as used by every factor.
    rcd: f64,
    /// Eq 7's CNP-window cut probability `1 − (1 − p)^{τ·R_C(t−τ*)}`.
    a: f64,
    /// Eq 12's `d`: timer event factor.
    d: f64,
    /// Eq 12's `e`: post-fast-recovery timer increase factor.
    e: f64,
    /// Eq 5's marking estimate `1 − (1 − p)^{τ'·R_C(t−τ*)}`.
    alpha_pow: f64,
}

impl FlowTerms {
    fn new(p: &DcqcnParams, mk: &MarkTerms, rc_delayed: f64) -> Self {
        let tau = p.cnp_timer_s();
        let tau_prime = p.alpha_timer_s();
        let f = p.fast_recovery_steps;
        let t_tmr = p.timer_s();
        let rcd = rc_delayed.max(0.0);
        let a = one_minus_pow_ln(mk.p_delayed, mk.l, tau * rcd);
        let d = rate_event_factor_ln(mk.p_delayed, mk.l, t_tmr * rcd);
        let e = pow1m_ln(mk.p_delayed, mk.l, f * t_tmr * rcd) * d;
        let alpha_pow = one_minus_pow_ln(mk.p_delayed, mk.l, tau_prime * rcd);
        FlowTerms {
            rcd,
            a,
            d,
            e,
            alpha_pow,
        }
    }
}

impl MarkTerms {
    fn new(p: &DcqcnParams, p_delayed: f64) -> Self {
        let l = (-p_delayed).ln_1p();
        let b_cnt = p.byte_counter_pkts();
        let b = rate_event_factor_ln(p_delayed, l, b_cnt);
        let c = pow1m_ln(p_delayed, l, p.fast_recovery_steps * b_cnt) * b;
        MarkTerms { p_delayed, l, b, c }
    }
}

/// The unique fixed point of Theorem 1.
#[derive(Debug, Clone)]
pub struct DcqcnFixedPoint {
    /// Marking probability `p*` solving Eq 11.
    pub p_star: f64,
    /// Queue length `q*` in packets (Eq 9). When `p* > P_max` the RED
    /// profile cannot realize `p*` in its linear region and the physical
    /// queue saturates near `K_max`; see `saturated`.
    pub q_star_pkts: f64,
    /// Queue length in KB for reporting.
    pub q_star_kb: f64,
    /// Per-flow rate `R_C* = C/N` in packets/second (Eq 13).
    pub rate_per_flow_pps: f64,
    /// Per-flow target rate `R_T*` in packets/second.
    pub target_rate_pps: f64,
    /// Fixed-point `α*` (Eq 10).
    pub alpha_star: f64,
    /// True when `p* > P_max`, i.e. the operating point lies beyond the RED
    /// linear region (queue pinned near `K_max`). The linearized analysis
    /// still uses the RED slope, following the paper.
    pub saturated: bool,
}

/// The delay-independent half of the DCQCN linearization: fixed point plus
/// central-difference Jacobian blocks of the per-flow subsystem. See
/// [`DcqcnFluid::lin_parts`] for what the parts depend on (and, crucially,
/// what they don't), and [`DcqcnFluid::margin_report_cached`] for the grid
/// sweeps that reuse them through a [`JacobianCache`].
#[derive(Debug, Clone)]
pub struct DcqcnLinParts {
    /// Fixed-point per-flow state `[R_C*, R_T*, α*]`.
    pub x_star: [f64; 3],
    /// Fixed-point marking probability `p*` (Eq 11).
    pub p_star: f64,
    /// `A₀ = ∂f/∂(R_C, R_T, α)` at the fixed point (3×3).
    pub a0: Vec<Vec<f64>>,
    /// Delayed-rate column `∂f/∂R_C(t−τ*)`.
    pub a1_col: Vec<f64>,
    /// Delayed-marking column `∂f/∂p(t−τ*)`.
    pub b_col: Vec<f64>,
}

/// The DCQCN fluid model for `N` flows over one bottleneck.
///
/// State layout: `x\[0\] = q` (packets); flow `i` occupies
/// `x[1+3i..4+3i] = (R_C, R_T, α)`.
///
/// ```
/// use models::dcqcn::{DcqcnFluid, DcqcnParams};
///
/// let m = DcqcnFluid::new(DcqcnParams::default_40g(), 4);
/// let fp = m.fixed_point();            // Theorem 1
/// assert!((fp.rate_per_flow_pps - m.params.capacity_pps() / 4.0).abs() < 1e-6);
/// assert!(m.margin_report().is_stable()); // 4 µs loop: stable
/// ```
#[derive(Debug, Clone)]
pub struct DcqcnFluid {
    /// Model parameters.
    pub params: DcqcnParams,
    /// Number of flows at the bottleneck.
    pub n_flows: usize,
    /// Optional feedback-delay jitter process (Figure 20).
    pub jitter: Option<Jitter>,
    /// Scratch row for whole-state delayed lookups (`History::eval_all`):
    /// the RHS needs the queue plus every flow's rate at the same delayed
    /// time, and this buffer keeps that one-locate lookup allocation-free.
    scratch: Vec<f64>,
}

impl DcqcnFluid {
    /// New model with the given parameters and flow count.
    pub fn new(params: DcqcnParams, n_flows: usize) -> Self {
        assert!(n_flows >= 1, "need at least one flow");
        DcqcnFluid {
            params,
            n_flows,
            jitter: None,
            scratch: vec![0.0; 1 + 3 * n_flows],
        }
    }

    /// Attach feedback-delay jitter (uniform over `[0, amplitude]` seconds,
    /// resampled every `interval` seconds; deterministic per seed).
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// State dimension: shared queue + 3 per flow.
    pub fn state_dim(&self) -> usize {
        1 + 3 * self.n_flows
    }

    /// Index of flow `i`'s current rate in the state vector.
    pub fn rc_index(&self, i: usize) -> usize {
        1 + 3 * i
    }

    /// Index of flow `i`'s target rate.
    pub fn rt_index(&self, i: usize) -> usize {
        2 + 3 * i
    }

    /// Index of flow `i`'s α.
    pub fn alpha_index(&self, i: usize) -> usize {
        3 + 3 * i
    }

    /// Per-flow derivative given the flow's current state, its delayed rate
    /// and the delayed marking probability. This closure *is* the model; the
    /// linearization differentiates it numerically.
    #[allow(clippy::too_many_arguments)]
    fn flow_rhs(
        p: &DcqcnParams,
        rc: f64,
        rt: f64,
        alpha: f64,
        rc_delayed: f64,
        p_delayed: f64,
        out: &mut [f64],
    ) {
        Self::flow_rhs_terms(
            p,
            &MarkTerms::new(p, p_delayed),
            rc,
            rt,
            alpha,
            rc_delayed,
            out,
        )
    }

    /// [`DcqcnFluid::flow_rhs`] with the flow-independent marking terms
    /// precomputed, so an N-flow RHS evaluation shares one [`MarkTerms`].
    #[allow(clippy::too_many_arguments)]
    fn flow_rhs_terms(
        p: &DcqcnParams,
        mk: &MarkTerms,
        rc: f64,
        rt: f64,
        alpha: f64,
        rc_delayed: f64,
        out: &mut [f64],
    ) {
        let ft = FlowTerms::new(p, mk, rc_delayed);
        Self::flow_rhs_from_terms(p, mk, &ft, rc, rt, alpha, out);
    }

    /// The Eq 5–7 combination step: all transcendental factors arrive
    /// precomputed in `mk` (per delayed time) and `ft` (per delayed rate),
    /// leaving only multiply-adds per flow.
    fn flow_rhs_from_terms(
        p: &DcqcnParams,
        mk: &MarkTerms,
        ft: &FlowTerms,
        rc: f64,
        rt: f64,
        alpha: f64,
        out: &mut [f64],
    ) {
        let tau = p.cnp_timer_s();
        let tau_prime = p.alpha_timer_s();
        let r_ai = p.r_ai_pps();
        // Eq 7: rate decrease (CNP-driven) + averaging toward target on
        // byte-counter and timer events.
        out[0] = -rc * alpha / (2.0 * tau) * ft.a + (rt - rc) / 2.0 * ft.rcd * (mk.b + ft.d);
        // Eq 6: target collapses to R_C on decrease; additive increase after
        // fast recovery on both byte-counter and timer events.
        out[1] = -(rt - rc) / tau * ft.a + r_ai * ft.rcd * (mk.c + ft.e);
        // Eq 5: α tracks the marking probability seen over τ'.
        out[2] = p.g / tau_prime * (ft.alpha_pow - alpha);
    }

    /// Public access to the per-flow dynamics for composition (the PI
    /// variant in [`crate::pi`] reuses DCQCN's flow behaviour with a
    /// different marking source).
    #[allow(clippy::too_many_arguments)]
    pub fn flow_rhs_pub(
        p: &DcqcnParams,
        rc: f64,
        rt: f64,
        alpha: f64,
        rc_delayed: f64,
        p_delayed: f64,
        out: &mut [f64],
    ) {
        Self::flow_rhs(p, rc, rt, alpha, rc_delayed, p_delayed, out)
    }

    /// Theorem 1: solve Eq 11 for the unique `p*`, then recover `q*`, `α*`
    /// and `R_T*` (Eqs 9, 10 and the `dR_T/dt = 0` balance).
    pub fn fixed_point(&self) -> DcqcnFixedPoint {
        let p = &self.params;
        let rc_star = p.capacity_pps() / self.n_flows as f64;
        let tau = p.cnp_timer_s();
        let tau_prime = p.alpha_timer_s();
        let f = p.fast_recovery_steps;
        let b_cnt = p.byte_counter_pkts();
        let t_tmr = p.timer_s();
        let r_ai = p.r_ai_pps();

        let lhs = |pp: f64| -> f64 {
            let a = one_minus_pow(pp, tau * rc_star);
            let alpha = one_minus_pow(pp, tau_prime * rc_star);
            let b = rate_event_factor(pp, b_cnt);
            let c = pow1m(pp, f * b_cnt) * b;
            let d = rate_event_factor(pp, t_tmr * rc_star);
            let e = pow1m(pp, f * t_tmr * rc_star) * d;
            let denom = (b + d) * (c + e);
            let val = if denom > 0.0 && denom.is_finite() {
                a * a * alpha / denom
            } else {
                f64::INFINITY
            };
            // As p → 1 the increase-event factors vanish and the LHS
            // diverges; clamp to keep the bracket usable for the solver.
            if val.is_finite() {
                val
            } else {
                1e300
            }
        };
        let rhs = tau * tau * r_ai * rc_star;
        // The LHS is monotone increasing in p (paper, proof of Theorem 1):
        // bracket and bisect via Brent.
        let p_star = roots::brent(|pp| lhs(pp) - rhs, 1e-10, 0.999, 1e-14)
            // simlint: allow(panic, no-unwrap-sim) — Theorem 1 guarantees the bracket; a miss is a model bug
            .expect("Eq 11 must bracket a root: LHS(0) < RHS < LHS(1)");

        let q_star_pkts = p_star / p.p_max * (p.kmax_pkts() - p.kmin_pkts()) + p.kmin_pkts(); // Eq 9
        let alpha_star = one_minus_pow(p_star, tau_prime * rc_star); // Eq 10
        let a = one_minus_pow(p_star, tau * rc_star);
        let b = rate_event_factor(p_star, b_cnt);
        let c = pow1m(p_star, f * b_cnt) * b;
        let d = rate_event_factor(p_star, t_tmr * rc_star);
        let e = pow1m(p_star, f * t_tmr * rc_star) * d;
        let target_rate_pps = rc_star + tau * r_ai * rc_star * (c + e) / a.max(1e-300);

        DcqcnFixedPoint {
            p_star,
            q_star_pkts,
            q_star_kb: units::pkts_to_kb(q_star_pkts, p.packet_bytes),
            rate_per_flow_pps: rc_star,
            target_rate_pps,
            alpha_star,
            saturated: p_star > p.p_max,
        }
    }

    /// The fixed-point and Jacobian blocks that feed [`Self::loop_transfer`].
    ///
    /// These depend on `(N, C, R_AI, τ, τ', F, B, T, g)` but **not** on the
    /// RED profile or the feedback delay (Eq 11 never references them), so
    /// grid sweeps that vary only delay / `K_max` / `P_max` can share one
    /// `DcqcnLinParts` across many margin evaluations — that is exactly what
    /// [`Self::margin_report_cached`] does via a [`JacobianCache`] keyed on
    /// [`Self::lin_parts_key`].
    pub fn lin_parts(&self) -> DcqcnLinParts {
        let fp = self.fixed_point();
        let p = self.params.clone();

        let x_star = [fp.rate_per_flow_pps, fp.target_rate_pps, fp.alpha_star];
        let rcd_star = fp.rate_per_flow_pps;
        let p_star = fp.p_star;

        // A0 = ∂f/∂(rc, rt, α) at the fixed point.
        let p_a0 = p.clone();
        let a0 = linearize::jacobian(
            move |x: &[f64], out: &mut [f64]| {
                // x = [rc, rt, α]: the per-flow state layout
                DcqcnFluid::flow_rhs(&p_a0, x[0], x[1], x[2], rcd_star, p_star, out)
            },
            &x_star,
            3,
        );
        // A1 column (delay τ*): only the delayed R_C column is nonzero.
        let p_a1 = p.clone();
        let x0 = x_star;
        let a1_col = linearize::derivative_column(
            move |rcd: f64, out: &mut [f64]| {
                // x0 = [rc, rt, α]: the per-flow state layout
                DcqcnFluid::flow_rhs(&p_a1, x0[0], x0[1], x0[2], rcd, p_star, out)
            },
            rcd_star,
            3,
        );
        // b (delay τ*): ∂f/∂p_delayed.
        let p_b = p.clone();
        let b_col = linearize::derivative_column(
            move |pd: f64, out: &mut [f64]| {
                // x0 = [rc, rt, α]: the per-flow state layout
                DcqcnFluid::flow_rhs(&p_b, x0[0], x0[1], x0[2], rcd_star, pd, out)
            },
            p_star,
            3,
        );

        DcqcnLinParts {
            x_star,
            p_star,
            a0,
            a1_col,
            b_col,
        }
    }

    /// Cache key for [`Self::lin_parts`]: every parameter the linearization
    /// actually reads. Two configs with equal keys have bitwise-equal parts.
    pub fn lin_parts_key(&self) -> Vec<f64> {
        let p = &self.params;
        vec![
            self.n_flows as f64,
            p.capacity_pps(),
            p.r_ai_pps(),
            p.cnp_timer_s(),
            p.alpha_timer_s(),
            p.fast_recovery_steps,
            p.byte_counter_pkts(),
            p.timer_s(),
            p.g,
        ]
    }

    /// Assemble the open-loop transfer closure from precomputed parts (see
    /// [`Self::lin_parts`]); delay and RED slope come from `self`.
    fn loop_transfer_from_parts(&self, parts: DcqcnLinParts) -> impl Fn(f64) -> Option<Complex64> {
        let n = self.n_flows as f64;
        let tau_star = self.params.feedback_delay_s();
        let k_red = self.params.red_slope();

        let mut a1 = vec![vec![0.0; 3]; 3];
        for (row, &v) in a1.iter_mut().zip(&parts.a1_col) {
            row[0] = v; // column 0 = the delayed R_C state
        }
        let sys = control::DelayLti {
            a0: parts.a0,
            delayed_a: vec![(tau_star, a1)],
            b: vec![(tau_star, parts.b_col)],
            c: vec![1.0, 0.0, 0.0],
            d: 0.0,
        };
        // The margin sweep evaluates L at thousands of frequencies; reuse
        // the LU buffers across calls (bit-identical to the allocating
        // path). RefCell because phase_margin wants Fn, not FnMut.
        let ev = RefCell::new(DelayLtiEvaluator::new(sys));

        move |omega: f64| {
            let h = ev.borrow_mut().freq_response(omega)?; // δR_C / δp
            let integ = Complex64::from_re(n) / Complex64::j(omega); // δq/δR_C
                                                                     // Negative-feedback convention: L = −(RED slope)·(N/s)·H.
            Some(-(h * integ).scale(k_red))
        }
    }

    /// Open-loop transfer function `L(jω)` of the linearized system around
    /// the fixed point (Appendix A, computed numerically).
    ///
    /// The loop is broken at the marking probability: the per-flow (R_C,
    /// R_T, α) subsystem responds to `δp(t − τ*)` (and to its own delayed
    /// rate `δR_C(t − τ*)`); N flows feed the queue integrator `N/s`; RED
    /// closes the loop with slope `P_max/(K_max − K_min)`.
    pub fn loop_transfer(&self) -> impl Fn(f64) -> Option<Complex64> {
        self.loop_transfer_from_parts(self.lin_parts())
    }

    /// Phase-margin report for this configuration (one point of Figure 3).
    pub fn margin_report(&self) -> MarginReport {
        let l = self.loop_transfer();
        phase_margin_adaptive(l, 1e1, 1e7, 3000)
    }

    /// [`Self::margin_report`] with the linearization served from `cache`.
    ///
    /// Used by grid sweeps (fig3) where neighboring grid points share
    /// `(N, C, R_AI, …)` and differ only in delay or RED profile. With the
    /// cache's `tol = 0.0` the result is bitwise identical to the uncached
    /// path.
    pub fn margin_report_cached(&self, cache: &mut JacobianCache<DcqcnLinParts>) -> MarginReport {
        let parts = cache.get_or_insert_with(&self.lin_parts_key(), || self.lin_parts());
        let l = self.loop_transfer_from_parts(parts);
        phase_margin_adaptive(l, 1e1, 1e7, 3000)
    }

    /// Integrate the fluid model (Eqs 3–7) for `duration_s` seconds.
    ///
    /// Flows start at line rate with `α = 1` and an empty queue, exactly as
    /// the protocol specifies ("DCQCN does not have slow start. Senders
    /// start at line rate."). Returns the full state trace.
    pub fn simulate(&mut self, duration_s: f64) -> Trace {
        let step = (self.params.feedback_delay_s() / 4.0).min(1e-6);
        self.simulate_with_step(duration_s, step)
    }

    /// Integrate with an explicit step size (tests use this for convergence
    /// checks).
    pub fn simulate_with_step(&mut self, duration_s: f64, step_s: f64) -> Trace {
        let line_rate = self.params.capacity_pps();
        let mut x0 = vec![0.0; self.state_dim()];
        for i in 0..self.n_flows {
            x0[self.rc_index(i)] = line_rate;
            x0[self.rt_index(i)] = line_rate;
            x0[self.alpha_index(i)] = 1.0;
        }
        let record_every = ((duration_s / step_s) / 4000.0).ceil().max(1.0) as usize;
        let horizon = (self.params.feedback_delay_s()
            + self.jitter.as_ref().map_or(0.0, Jitter::max_extra))
            * 4.0
            + 10.0 * step_s;
        let opts = DdeOptions {
            step: step_s,
            record_every,
            history_horizon_s: horizon,
        };
        let pre = x0.clone();
        integrate_dde_with_prehistory(self, &x0.clone(), &pre, 0.0, duration_s, &opts)
    }

    /// Integrate a batch of DCQCN configurations in lockstep over one
    /// struct-of-arrays state block (see [`fluid::batch`]).
    ///
    /// Every lane starts at line rate with `α = 1` and an empty queue,
    /// exactly like [`DcqcnFluid::simulate`], and each lane's trace (or
    /// [`SimError::Divergence`]) is bit-identical to the scalar
    /// `simulate` of the same config — a diverging lane never aborts its
    /// batchmates. Lanes must share the flow count and derive the same
    /// lockstep step size from their feedback delays (callers group sweep
    /// points accordingly); the history horizon is the maximum over lanes,
    /// which affects only memory, never values.
    pub fn simulate_batch(
        models: Vec<DcqcnFluid>,
        duration_s: f64,
    ) -> Vec<Result<Trace, SimError>> {
        assert!(!models.is_empty(), "batch needs at least one lane");
        let lane_step = |m: &DcqcnFluid| (m.params.feedback_delay_s() / 4.0).min(1e-6);
        // `models[0]` is safe: non-emptiness asserted above.
        let step_s = lane_step(&models[0]);
        for m in &models {
            assert!(
                lane_step(m).to_bits() == step_s.to_bits(),
                "lanes must share the lockstep step size"
            );
        }
        let record_every = ((duration_s / step_s) / 4000.0).ceil().max(1.0) as usize;
        let horizon = models
            .iter()
            .map(|m| {
                (m.params.feedback_delay_s() + m.jitter.as_ref().map_or(0.0, Jitter::max_extra))
                    * 4.0
                    + 10.0 * step_s
            })
            .fold(0.0, f64::max);
        let x0s: Vec<Vec<f64>> = models
            .iter()
            .map(|m| {
                let line_rate = m.params.capacity_pps();
                let mut x0 = vec![0.0; m.state_dim()];
                for i in 0..m.n_flows {
                    x0[m.rc_index(i)] = line_rate;
                    x0[m.rt_index(i)] = line_rate;
                    x0[m.alpha_index(i)] = 1.0;
                }
                x0
            })
            .collect();
        let packed = pack_lanes(&x0s);
        let opts = DdeOptions {
            step: step_s,
            record_every,
            history_horizon_s: horizon,
        };
        let mut batch = LaneBatch::new(models);
        try_integrate_dde_batch(&mut batch, &packed, &packed, 0.0, duration_s, &opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convenience: extract per-flow rates in Gbps and queue in KB from a
    /// trace produced by [`DcqcnFluid::simulate`].
    pub fn rates_gbps(&self, trace: &Trace, flow: usize) -> Vec<(f64, f64)> {
        trace
            .series(self.rc_index(flow))
            .into_iter()
            .map(|(t, pps)| (t, units::pps_to_gbps(pps, self.params.packet_bytes)))
            .collect()
    }

    /// Queue-length series in KB.
    pub fn queue_kb(&self, trace: &Trace) -> Vec<(f64, f64)> {
        trace
            .series(0)
            .into_iter()
            .map(|(t, pkts)| (t, units::pkts_to_kb(pkts, self.params.packet_bytes)))
            .collect()
    }
}

impl LaneSystem for DcqcnFluid {
    fn lane_dim(&self) -> usize {
        self.state_dim()
    }

    /// The DCQCN RHS as a batch-lane kernel: this lane's component `c` lives
    /// at `lane_of(c, lane, stride)` of the strided block. The scalar
    /// [`DdeSystem`] path is the `lane = 0, stride = 1` call of this same
    /// code, which is what makes the batched integrator bit-identical at
    /// B = 1.
    fn lane_rhs(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        dxdt: &mut [f64],
    ) {
        // All delayed quantities (queue + every flow's rate) live at the same
        // delayed time, so fetch the whole lane row with one knot search.
        let mut delayed = std::mem::take(&mut self.scratch);
        let td = self.delayed_instant(t);
        hist.eval_strided(td, lane, stride, self.state_dim(), &mut delayed);
        self.lane_rhs_with_delayed(x, lane, stride, &delayed, dxdt);
        self.scratch = delayed;
    }

    fn min_delay(&self) -> f64 {
        // Jitter only adds delay, so the base feedback delay is the minimum.
        self.params.feedback_delay_s()
    }

    fn lane_delay_at(&self, t: f64) -> Option<f64> {
        Some(self.delayed_instant(t))
    }

    fn lane_rhs_prefetched(
        &mut self,
        _t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        _hist: &History,
        delayed: &[f64],
        dxdt: &mut [f64],
    ) {
        // Gather this lane's slice of the prefetched block row (hot in
        // cache, unlike the wide history rows the strided eval walks); the
        // values are bit-identical to an `eval_strided` at the same instant.
        let mut scratch = std::mem::take(&mut self.scratch);
        for (c, s) in scratch.iter_mut().enumerate() {
            *s = delayed[lane_of(c, lane, stride)];
        }
        self.lane_rhs_with_delayed(x, lane, stride, &scratch, dxdt);
        self.scratch = scratch;
    }

    fn lane_project(&mut self, _t: f64, x: &mut [f64], lane: usize, stride: usize) {
        let line = self.params.capacity_pps();
        let floor = self.params.min_rate_pps();
        let q = lane_of(0, lane, stride);
        x[q] = x[q].max(0.0); // component 0 is the queue
        for i in 0..self.n_flows {
            let rc = lane_of(self.rc_index(i), lane, stride);
            let rt = lane_of(self.rt_index(i), lane, stride);
            let al = lane_of(self.alpha_index(i), lane, stride);
            x[rc] = x[rc].clamp(floor, line);
            x[rt] = x[rt].clamp(floor, line);
            x[al] = x[al].clamp(0.0, 1.0);
            desim::invariants::unit_interval("dcqcn fluid alpha", x[al]);
            desim::invariants::finite_rate("dcqcn fluid rc_pps", x[rc]);
        }
    }
}

impl DcqcnFluid {
    /// The single delayed instant every lookup at time `t` uses.
    fn delayed_instant(&self, t: f64) -> f64 {
        let extra = self.jitter.as_ref().map_or(0.0, |j| j.extra(t));
        let delay = self.params.feedback_delay_s() + extra;
        t - delay
    }

    /// The RHS arithmetic after the delayed lane row has been fetched
    /// (`delayed` is lane-local dense, length `state_dim`); shared by the
    /// history-querying and block-prefetched paths so they cannot drift.
    fn lane_rhs_with_delayed(
        &self,
        x: &[f64],
        lane: usize,
        stride: usize,
        delayed: &[f64],
        dxdt: &mut [f64],
    ) {
        let p = &self.params;
        let cap = p.capacity_pps();
        let q_delayed = delayed[0].max(0.0); // component 0 is the queue
        let p_delayed = p.red_probability(q_delayed);
        let mk = MarkTerms::new(p, p_delayed);

        // Eq 4: queue integrates excess arrival rate (projection keeps q ≥ 0).
        let sum_rates: f64 = (0..self.n_flows)
            .map(|i| x[lane_of(self.rc_index(i), lane, stride)])
            .sum();
        // State component 0 is the shared queue.
        let q = x[lane_of(0, lane, stride)];
        dxdt[lane_of(0, lane, stride)] = if q <= 0.0 && sum_rates < cap {
            0.0
        } else {
            sum_rates - cap
        };

        // The FlowTerms factors depend only on the flow's delayed rate, and
        // symmetric flows carry bitwise-identical trajectories, so memoize
        // on the exact rate bits: an N-flow symmetric run pays the
        // transcendental cost once instead of N times, with unchanged bits.
        let mut out = [0.0; 3];
        let mut memo: Option<(u64, FlowTerms)> = None;
        for i in 0..self.n_flows {
            let rc = x[lane_of(self.rc_index(i), lane, stride)];
            let rt = x[lane_of(self.rt_index(i), lane, stride)];
            let alpha = x[lane_of(self.alpha_index(i), lane, stride)];
            let rc_delayed = delayed[self.rc_index(i)];
            let ft = match &memo {
                Some((bits, ft)) if *bits == rc_delayed.to_bits() => ft,
                _ => {
                    &memo
                        .insert((rc_delayed.to_bits(), FlowTerms::new(p, &mk, rc_delayed)))
                        .1
                }
            };
            DcqcnFluid::flow_rhs_from_terms(p, &mk, ft, rc, rt, alpha, &mut out);
            let [d_rc, d_rt, d_alpha] = out;
            dxdt[lane_of(self.rc_index(i), lane, stride)] = d_rc;
            dxdt[lane_of(self.rt_index(i), lane, stride)] = d_rt;
            dxdt[lane_of(self.alpha_index(i), lane, stride)] = d_alpha;
        }
    }
}

impl DdeSystem for DcqcnFluid {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        // The scalar path is the single-lane special case of the lane kernel.
        self.lane_rhs(t, x, 0, 1, hist, dxdt);
    }

    fn min_delay(&self) -> f64 {
        LaneSystem::min_delay(self)
    }

    fn project(&mut self, t: f64, x: &mut [f64]) {
        self.lane_project(t, x, 0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_profile_matches_eq3() {
        let p = DcqcnParams::default_40g();
        assert_eq!(p.red_probability(0.0), 0.0);
        assert_eq!(p.red_probability(p.kmin_pkts()), 0.0);
        let mid = (p.kmin_pkts() + p.kmax_pkts()) / 2.0;
        assert!((p.red_probability(mid) - p.p_max / 2.0).abs() < 1e-12);
        assert!((p.red_probability(p.kmax_pkts()) - p.p_max).abs() < 1e-12);
        assert_eq!(p.red_probability(p.kmax_pkts() + 1.0), 1.0);
    }

    #[test]
    fn stable_power_helpers() {
        // Against direct evaluation at moderate p.
        let p = 0.01;
        let e = 100.0;
        assert!((pow1m(p, e) - 0.99f64.powf(100.0)).abs() < 1e-12);
        assert!((one_minus_pow(p, e) - (1.0 - 0.99f64.powf(100.0))).abs() < 1e-12);
        // Limits at p → 0.
        assert!((rate_event_factor(0.0, 50.0) - 0.02).abs() < 1e-12);
        assert!((one_minus_pow(0.0, 1e6)).abs() < 1e-12);
        // rate_event_factor continuity near 0.
        let f1 = rate_event_factor(1e-13, 50.0);
        let f2 = rate_event_factor(1e-11, 50.0);
        assert!((f1 - f2).abs() < 1e-6);
    }

    #[test]
    fn eq11_lhs_is_monotone_in_p() {
        // The uniqueness proof hinges on monotonicity; verify numerically.
        let m = DcqcnFluid::new(DcqcnParams::default_40g(), 4);
        let p = &m.params;
        let rc = p.capacity_pps() / 4.0;
        let tau = p.cnp_timer_s();
        let lhs = |pp: f64| {
            let a = one_minus_pow(pp, tau * rc);
            let alpha = one_minus_pow(pp, p.alpha_timer_s() * rc);
            let b = rate_event_factor(pp, p.byte_counter_pkts());
            let c = pow1m(pp, 5.0 * p.byte_counter_pkts()) * b;
            let d = rate_event_factor(pp, p.timer_s() * rc);
            let e = pow1m(pp, 5.0 * p.timer_s() * rc) * d;
            a * a * alpha / ((b + d) * (c + e))
        };
        let mut prev = lhs(1e-8);
        for k in 1..200 {
            let pp = 1e-8 + k as f64 * (0.9 / 200.0);
            let cur = lhs(pp);
            assert!(cur >= prev, "LHS not monotone at p = {pp}");
            prev = cur;
        }
    }

    #[test]
    fn fixed_point_rates_are_fair_share() {
        for n in [1usize, 2, 10, 64] {
            let m = DcqcnFluid::new(DcqcnParams::default_40g(), n);
            let fp = m.fixed_point();
            let expect = m.params.capacity_pps() / n as f64;
            assert!((fp.rate_per_flow_pps - expect).abs() < 1e-6);
            assert!(fp.p_star > 0.0 && fp.p_star < 1.0);
            assert!(fp.alpha_star > 0.0 && fp.alpha_star < 1.0);
            assert!(fp.target_rate_pps >= fp.rate_per_flow_pps);
        }
    }

    #[test]
    fn eq14_approximates_exact_p_star() {
        // The paper: "Numerical analysis shows that p* is typically very
        // close to 0", and Eq 14 is the O(p^4) Taylor approximation.
        for n in [2usize, 5, 10] {
            let m = DcqcnFluid::new(DcqcnParams::default_40g(), n);
            let exact = m.fixed_point().p_star;
            let approx = m.params.p_star_approx(n);
            let rel = (exact - approx).abs() / exact;
            // The O(p⁴) truncation is coarse at larger N where p* grows;
            // the paper only claims the approximation for p* "very close
            // to 0".
            assert!(
                rel < 0.4,
                "N={n}: exact {exact:.6}, approx {approx:.6}, rel {rel:.3}"
            );
        }
    }

    #[test]
    fn fixed_point_queue_grows_with_flows() {
        // Eq 14: p* (hence q*) increases with N — the motivation for the PI
        // controller in §5.
        let q: Vec<f64> = [2usize, 8, 32]
            .iter()
            .map(|&n| {
                DcqcnFluid::new(DcqcnParams::default_40g(), n)
                    .fixed_point()
                    .q_star_pkts
            })
            .collect();
        assert!(q[0] < q[1] && q[1] < q[2], "q* = {q:?}");
    }

    #[test]
    fn rhs_is_zero_at_fixed_point() {
        let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 2);
        let fp = m.fixed_point();
        let mut x = vec![fp.q_star_pkts];
        for _ in 0..2 {
            x.extend_from_slice(&[fp.rate_per_flow_pps, fp.target_rate_pps, fp.alpha_star]);
        }
        let hist = History::new(0.0, &x);
        let mut dx = vec![0.0; x.len()];
        // Evaluate at a time far enough that delayed lookups hit pre-history
        // (which equals the fixed point).
        m.rhs(1.0, &x, &hist, &mut dx);
        // Queue derivative: ΣR = C exactly.
        assert!(dx[0].abs() < 1e-3, "dq/dt = {}", dx[0]);
        // Rate derivatives are zero relative to the rate scale.
        let scale = fp.rate_per_flow_pps;
        for i in 0..2 {
            assert!(
                dx[1 + 3 * i].abs() / scale < 1e-6,
                "dRc/dt = {}",
                dx[1 + 3 * i]
            );
            assert!(
                dx[2 + 3 * i].abs() / scale < 1e-6,
                "dRt/dt = {}",
                dx[2 + 3 * i]
            );
            assert!(dx[3 + 3 * i].abs() < 1e-9, "dα/dt = {}", dx[3 + 3 * i]);
        }
    }

    #[test]
    fn two_flows_converge_to_fair_share_at_low_delay() {
        // Figure 4, left column: τ* = 4 µs is stable.
        let params = DcqcnParams::default_40g();
        let mut m = DcqcnFluid::new(params.clone(), 2);
        let tr = m.simulate(0.05);
        let fp = m.fixed_point();
        let last = tr.last_state().unwrap();
        for i in 0..2 {
            let rel = (last[m.rc_index(i)] - fp.rate_per_flow_pps).abs() / fp.rate_per_flow_pps;
            assert!(rel < 0.05, "flow {i} rate off by {rel}");
        }
        // Queue settles near q*.
        let q_tail = tr.mean_from(0, 0.04);
        assert!(
            (q_tail - fp.q_star_pkts).abs() / fp.q_star_pkts < 0.25,
            "queue mean {q_tail} vs q* {}",
            fp.q_star_pkts
        );
    }

    #[test]
    fn unequal_initial_rates_converge_fair() {
        // Theorem 2's conclusion, checked in the fluid model: different
        // starting rates end at the same rate.
        let params = DcqcnParams::default_40g();
        let mut m = DcqcnFluid::new(params, 2);
        let line = m.params.capacity_pps();
        let mut x0 = vec![0.0; m.state_dim()];
        x0[m.rc_index(0)] = line;
        x0[m.rt_index(0)] = line;
        x0[m.alpha_index(0)] = 1.0;
        x0[m.rc_index(1)] = line * 0.1;
        x0[m.rt_index(1)] = line * 0.1;
        x0[m.alpha_index(1)] = 1.0;
        let opts = DdeOptions {
            step: 1e-6,
            record_every: 50,
            history_horizon_s: 0.01,
        };
        let tr = integrate_dde_with_prehistory(&mut m, &x0.clone(), &x0.clone(), 0.0, 0.1, &opts);
        let last = tr.last_state().unwrap();
        let r0 = last[m.rc_index(0)];
        let r1 = last[m.rc_index(1)];
        assert!(
            (r0 - r1).abs() / (r0 + r1) < 0.05,
            "rates did not converge: {r0} vs {r1}"
        );
    }

    #[test]
    fn stable_at_low_delay_unstable_at_10_flows_high_delay() {
        // The paper's headline non-monotonicity (Figures 3a, 4): with
        // τ* = 85 µs, N = 10 oscillates while N = 2 settles.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;

        let mut m10 = DcqcnFluid::new(p.clone(), 10);
        let tr10 = m10.simulate(0.12);
        let fp10 = m10.fixed_point();
        let osc10 = tr10.peak_to_peak_from(0, 0.08) / fp10.q_star_pkts.max(1.0);

        let mut m2 = DcqcnFluid::new(p.clone(), 2);
        let tr2 = m2.simulate(0.12);
        let fp2 = m2.fixed_point();
        let osc2 = tr2.peak_to_peak_from(0, 0.08) / fp2.q_star_pkts.max(1.0);

        assert!(
            osc10 > 2.0 * osc2,
            "expected N=10 much less stable: osc10 = {osc10:.3}, osc2 = {osc2:.3}"
        );
    }

    #[test]
    fn margin_report_stable_at_small_delay() {
        let m = DcqcnFluid::new(DcqcnParams::default_40g(), 2);
        let rep = m.margin_report();
        assert!(
            rep.is_stable(),
            "2 flows at 4 µs must be stable, pm = {:?}",
            rep.phase_margin_deg
        );
    }

    #[test]
    fn margin_nonmonotonic_in_flow_count_at_high_delay() {
        // Figure 3(a): at τ* = 85–100 µs the phase margin dips around
        // N ≈ 10 and recovers for large N.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let pm = |n: usize| {
            DcqcnFluid::new(p.clone(), n)
                .margin_report()
                .phase_margin_deg
                .unwrap_or(180.0)
        };
        let pm2 = pm(2);
        let pm10 = pm(10);
        let pm64 = pm(64);
        assert!(
            pm10 < pm2 && pm10 < pm64,
            "non-monotonicity missing: pm2={pm2:.1}, pm10={pm10:.1}, pm64={pm64:.1}"
        );
        assert!(
            pm10 < 0.0,
            "N=10 at 85us should be unstable, pm10={pm10:.1}"
        );
    }

    #[test]
    fn smaller_rai_improves_stability() {
        // Figure 3(b): smaller R_AI stabilizes.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let pm_default = DcqcnFluid::new(p.clone(), 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        p.r_ai_mbps = 10.0;
        let pm_small = DcqcnFluid::new(p, 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        assert!(
            pm_small > pm_default,
            "R_AI=10: {pm_small:.1} vs R_AI=40: {pm_default:.1}"
        );
    }

    #[test]
    fn larger_kmax_improves_stability() {
        // Figure 3(c): larger K_max (gentler RED slope) stabilizes.
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let pm_default = DcqcnFluid::new(p.clone(), 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        p.kmax_kb = 1000.0;
        let pm_big = DcqcnFluid::new(p, 10)
            .margin_report()
            .phase_margin_deg
            .unwrap_or(180.0);
        assert!(
            pm_big > pm_default,
            "Kmax=1MB: {pm_big:.1} vs 200KB: {pm_default:.1}"
        );
    }
}
