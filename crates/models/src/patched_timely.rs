//! Patched TIMELY (paper §4.3, Algorithm 2, Eqs 29–31).
//!
//! The paper's two-line fix to TIMELY:
//!
//! 1. in the gradient band, the rate decrease uses the **absolute** queue
//!    error `(q(t−τ′) − q′)/q′` instead of the gradient, giving every flow
//!    knowledge of the common bottleneck queue (the source of the unique
//!    fixed point);
//! 2. the hard `g ≤ 0 / g > 0` switch becomes a **continuous weight**
//!    `w(g)` (Eq 30), removing the on-off chatter.
//!
//! Theorem 5: the resulting system has the unique fair fixed point
//! `q* = N·δ·q′/(β·C) + q′` and converges exponentially. The module also
//! builds the linearized loop for Figure 11 — the feedback delay is frozen
//! at its fixed-point value `τ′* = q*/C + MTU/C + D_prop`, which grows with
//! `N` (Eq 31 ⊕ Eq 24) and is precisely why stability collapses past ~40
//! flows.

use crate::jitter::Jitter;
use crate::timely::TimelyParams;
use crate::units;
use control::complex::Complex64;
use control::linearize;
use control::margins::{phase_margin_adaptive, MarginReport};
use control::DelayLtiEvaluator;
use fluid::batch::{lane_of, LaneSystem};
use fluid::dde::{integrate_dde_with_prehistory, DdeOptions, DdeSystem};
use fluid::history::History;
use fluid::trace::Trace;
use std::cell::RefCell;

/// Parameters for Patched TIMELY: the TIMELY set with the paper's overrides
/// (`β = 0.008`, `Seg = 16 KB`) plus the reference queue `q′`.
///
/// ```
/// use models::patched_timely::PatchedTimelyParams;
///
/// let p = PatchedTimelyParams::default_10g();
/// // Theorem 5: q* = N·δ·q'/(β·C) + q' grows linearly with N.
/// assert!(p.q_star_pkts(10) > p.q_star_pkts(2));
/// assert_eq!(PatchedTimelyParams::weight(0.0), 0.5); // Eq 30
/// ```
#[derive(Debug, Clone)]
pub struct PatchedTimelyParams {
    /// The underlying TIMELY parameter set.
    pub base: TimelyParams,
    /// Reference queue `q′` in packets. The paper sets `q′ = C·T_low`.
    pub q_ref_pkts: f64,
}

impl PatchedTimelyParams {
    /// The paper's patched configuration on 10 Gbps: TIMELY defaults with
    /// `β = 0.008`, `Seg = 16 KB`, `q′ = C·T_low`.
    pub fn default_10g() -> Self {
        let mut base = TimelyParams::default_10g();
        base.beta = 0.008;
        base.seg_kb = 16.0;
        let q_ref = base.q_low_pkts();
        PatchedTimelyParams {
            base,
            q_ref_pkts: q_ref,
        }
    }

    /// The weight function `w(g)` of Eq 30: 0 below −1/4, linear
    /// (`2g + 1/2`) in between, 1 above 1/4.
    pub fn weight(g: f64) -> f64 {
        if g <= -0.25 {
            0.0
        } else if g >= 0.25 {
            1.0
        } else {
            2.0 * g + 0.5
        }
    }

    /// Theorem 5's fixed-point queue (Eq 31): `q* = N·δ·q′/(β·C) + q′`.
    pub fn q_star_pkts(&self, n_flows: usize) -> f64 {
        let p = &self.base;
        n_flows as f64 * p.delta_pps() * self.q_ref_pkts / (p.beta * p.capacity_pps())
            + self.q_ref_pkts
    }

    /// Fixed-point queue in KB.
    pub fn q_star_kb(&self, n_flows: usize) -> f64 {
        units::pkts_to_kb(self.q_star_pkts(n_flows), self.base.packet_bytes)
    }
}

/// The patched TIMELY fluid model (Eq 29). Same state layout as
/// [`crate::timely::TimelyFluid`]: `x[0] = q`, flow `i` at
/// `(x[1+2i], x[2+2i]) = (R_i, g_i)`.
#[derive(Debug, Clone)]
pub struct PatchedTimelyFluid {
    /// Parameters.
    pub params: PatchedTimelyParams,
    /// Number of flows.
    pub n_flows: usize,
    /// Optional feedback-delay jitter (Figure 20 uses jitter on τ′).
    pub jitter: Option<Jitter>,
}

impl PatchedTimelyFluid {
    /// New model.
    pub fn new(params: PatchedTimelyParams, n_flows: usize) -> Self {
        assert!(n_flows >= 1);
        PatchedTimelyFluid {
            params,
            n_flows,
            jitter: None,
        }
    }

    /// Attach feedback-delay jitter.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        1 + 2 * self.n_flows
    }

    /// Index of flow `i`'s rate.
    pub fn rate_index(&self, i: usize) -> usize {
        1 + 2 * i
    }

    /// Index of flow `i`'s gradient.
    pub fn grad_index(&self, i: usize) -> usize {
        2 + 2 * i
    }

    /// Per-flow RHS of Eq 29 (+ Eq 22 for the gradient), given delayed queue
    /// observations `qd1 = q(t−τ′)` and `qd2 = q(t−τ′−τ*)`.
    fn flow_rhs(p: &PatchedTimelyParams, r: f64, g: f64, qd1: f64, qd2: f64, out: &mut [f64]) {
        let base = &p.base;
        let tau = base.tau_star(r);
        let q_low = base.q_low_pkts();
        let q_high = base.q_high_pkts();
        let delta = base.delta_pps();

        // out = [dR/dt, dg/dt].
        out[0] = if qd1 < q_low {
            delta / tau
        } else if qd1 > q_high {
            -(base.beta / tau) * (1.0 - q_high / qd1) * r
        } else {
            let w = PatchedTimelyParams::weight(g);
            (1.0 - w) * delta / tau
                - w * base.beta * r / tau * ((qd1 - p.q_ref_pkts) / p.q_ref_pkts)
        };
        // out = [dR/dt, dg/dt].
        out[1] =
            base.ewma_alpha / tau * (-g + (qd1 - qd2) / (base.capacity_pps() * base.d_min_rtt_s()));
    }

    /// Simulate with explicit initial rates (pps); queue starts empty,
    /// gradients at zero.
    pub fn simulate_with_rates(&mut self, initial_rates_pps: &[f64], duration_s: f64) -> Trace {
        assert_eq!(initial_rates_pps.len(), self.n_flows);
        let mut x0 = vec![0.0; self.state_dim()];
        for (i, &r) in initial_rates_pps.iter().enumerate() {
            x0[self.rate_index(i)] = r;
        }
        let base = &self.params.base;
        let step = (base.d_prop_s() / 2.0).min(1e-6);
        let horizon = base.tau_feedback(self.params.q_star_pkts(self.n_flows) * 6.0)
            + base.tau_star(base.min_rate_pps())
            + self.jitter.as_ref().map_or(0.0, Jitter::max_extra)
            + 10.0 * step;
        let record_every = ((duration_s / step) / 4000.0).ceil().max(1.0) as usize;
        let opts = DdeOptions {
            step,
            record_every,
            history_horizon_s: horizon,
        };
        integrate_dde_with_prehistory(self, &x0.clone(), &x0.clone(), 0.0, duration_s, &opts)
    }

    /// Simulate from equal shares `C/N`.
    pub fn simulate(&mut self, duration_s: f64) -> Trace {
        let r0 = self.params.base.capacity_pps() / self.n_flows as f64;
        let rates = vec![r0; self.n_flows];
        self.simulate_with_rates(&rates, duration_s)
    }

    /// The open-loop transfer `L(jω)` of the linearized system at the
    /// Theorem 5 fixed point (drives Figure 11).
    pub fn loop_transfer(&self) -> impl Fn(f64) -> Option<Complex64> {
        let p = self.params.clone();
        let base = p.base.clone();
        let n = self.n_flows as f64;
        let r_star = base.capacity_pps() / n;
        let g_star = 0.0;
        let q_star = p.q_star_pkts(self.n_flows);
        // Delays frozen at the fixed point.
        let tau_fb = base.tau_feedback(q_star);
        let tau_star = base.tau_star(r_star);

        // A0 = ∂f/∂(R, g).
        let p0 = p.clone();
        let a0 = linearize::jacobian(
            move |x: &[f64], out: &mut [f64]| {
                // x = [R, g]: the per-flow state layout
                PatchedTimelyFluid::flow_rhs(&p0, x[0], x[1], q_star, q_star, out)
            },
            &[r_star, g_star],
            2,
        );
        // b1 = ∂f/∂qd1 at delay τ′; b2 = ∂f/∂qd2 at delay τ′+τ*.
        let p1 = p.clone();
        let b1 = linearize::derivative_column(
            move |qd1: f64, out: &mut [f64]| {
                PatchedTimelyFluid::flow_rhs(&p1, r_star, g_star, qd1, q_star, out)
            },
            q_star,
            2,
        );
        let p2 = p.clone();
        let b2 = linearize::derivative_column(
            move |qd2: f64, out: &mut [f64]| {
                PatchedTimelyFluid::flow_rhs(&p2, r_star, g_star, q_star, qd2, out)
            },
            q_star,
            2,
        );

        let sys = control::DelayLti {
            a0,
            delayed_a: vec![],
            b: vec![(tau_fb, b1), (tau_fb + tau_star, b2)],
            c: vec![1.0, 0.0],
            d: 0.0,
        };
        // Reuse the LU buffers across the margin sweep's thousands of
        // evaluations (bit-identical to the allocating path). RefCell
        // because phase_margin wants Fn, not FnMut.
        let ev = RefCell::new(DelayLtiEvaluator::new(sys));

        move |omega: f64| {
            let h = ev.borrow_mut().freq_response(omega)?; // δR/δq
            let integ = Complex64::from_re(n) / Complex64::j(omega);
            Some(-(h * integ))
        }
    }

    /// Phase-margin report (one point of Figure 11).
    pub fn margin_report(&self) -> MarginReport {
        phase_margin_adaptive(self.loop_transfer(), 1e1, 1e7, 3000)
    }

    /// Per-flow rate series in Gbps.
    pub fn rates_gbps(&self, trace: &Trace, flow: usize) -> Vec<(f64, f64)> {
        trace
            .series(self.rate_index(flow))
            .into_iter()
            .map(|(t, pps)| (t, units::pps_to_gbps(pps, self.params.base.packet_bytes)))
            .collect()
    }

    /// Queue series in KB.
    pub fn queue_kb(&self, trace: &Trace) -> Vec<(f64, f64)> {
        trace
            .series(0)
            .into_iter()
            .map(|(t, pkts)| (t, units::pkts_to_kb(pkts, self.params.base.packet_bytes)))
            .collect()
    }
}

impl LaneSystem for PatchedTimelyFluid {
    fn lane_dim(&self) -> usize {
        self.state_dim()
    }

    fn lane_rhs(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        dxdt: &mut [f64],
    ) {
        let base = &self.params.base;
        let c = base.capacity_pps();
        let extra = self.jitter.as_ref().map_or(0.0, |j| j.extra(t));
        let q_lane = lane_of(0, lane, stride);
        // Component 0 is the queue; the delayed lookup time is per-lane
        // because Eq 24's feedback delay depends on the lane's own queue.
        let tau_fb = base.tau_feedback(x[q_lane]) + extra;
        let qd1 = hist.eval(t - tau_fb, q_lane).max(0.0);

        let sum_rates: f64 = (0..self.n_flows)
            .map(|i| x[lane_of(self.rate_index(i), lane, stride)])
            .sum();
        // State component 0 is the shared queue.
        dxdt[q_lane] = if x[q_lane] <= 0.0 && sum_rates < c {
            0.0
        } else {
            sum_rates - c
        };

        let mut out = [0.0; 2];
        // Flows at equal rates share the same delayed lookup time; cache the
        // last one so the common symmetric case does one `locate` per
        // distinct delayed time instead of one per flow.
        let mut qd2_cache = (f64::NAN, 0.0);
        for i in 0..self.n_flows {
            let ri = lane_of(self.rate_index(i), lane, stride);
            let gi = lane_of(self.grad_index(i), lane, stride);
            let r = x[ri];
            let g = x[gi];
            let tau_i = base.tau_star(r);
            let t2 = t - tau_fb - tau_i;
            // simlint: allow(float-cmp) — memo key: only a bitwise-identical t2 may reuse the cache
            let qd2 = if t2 == qd2_cache.0 {
                qd2_cache.1
            } else {
                let v = hist.eval(t2, q_lane).max(0.0);
                qd2_cache = (t2, v);
                v
            };
            PatchedTimelyFluid::flow_rhs(&self.params, r, g, qd1, qd2, &mut out);
            let [d_r, d_g] = out;
            dxdt[ri] = d_r;
            dxdt[gi] = d_g;
        }
    }

    fn min_delay(&self) -> f64 {
        self.params.base.tau_feedback(0.0)
    }

    fn lane_project(&mut self, _t: f64, x: &mut [f64], lane: usize, stride: usize) {
        let base = &self.params.base;
        let line = base.capacity_pps();
        let floor = base.min_rate_pps();
        let q = lane_of(0, lane, stride);
        x[q] = x[q].max(0.0); // component 0 is the queue
        for i in 0..self.n_flows {
            let ri = lane_of(self.rate_index(i), lane, stride);
            x[ri] = x[ri].clamp(floor, line);
            let gi = lane_of(self.grad_index(i), lane, stride);
            x[gi] = x[gi].clamp(-10.0, 10.0);
        }
    }
}

impl DdeSystem for PatchedTimelyFluid {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        self.lane_rhs(t, x, 0, 1, hist, dxdt);
    }

    fn min_delay(&self) -> f64 {
        LaneSystem::min_delay(self)
    }

    fn project(&mut self, t: f64, x: &mut [f64]) {
        self.lane_project(t, x, 0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_function_matches_eq30() {
        assert_eq!(PatchedTimelyParams::weight(-1.0), 0.0);
        assert_eq!(PatchedTimelyParams::weight(-0.25), 0.0);
        assert_eq!(PatchedTimelyParams::weight(0.0), 0.5);
        assert_eq!(PatchedTimelyParams::weight(0.25), 1.0);
        assert_eq!(PatchedTimelyParams::weight(2.0), 1.0);
        // Linear in the band, monotone overall.
        assert!((PatchedTimelyParams::weight(0.1) - 0.7).abs() < 1e-12);
        let mut prev = -0.1;
        for k in -10..=10 {
            let w = PatchedTimelyParams::weight(k as f64 * 0.05);
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn q_star_matches_eq31() {
        let p = PatchedTimelyParams::default_10g();
        // q* = N δ q'/(β C) + q'.
        let base = &p.base;
        for n in [1usize, 4, 16, 40] {
            let manual = n as f64 * base.delta_pps() * p.q_ref_pkts
                / (base.beta * base.capacity_pps())
                + p.q_ref_pkts;
            assert!((p.q_star_pkts(n) - manual).abs() < 1e-9);
        }
        // Grows linearly with N.
        let d1 = p.q_star_pkts(2) - p.q_star_pkts(1);
        let d2 = p.q_star_pkts(10) - p.q_star_pkts(9);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn rhs_zero_at_theorem5_fixed_point() {
        let p = PatchedTimelyParams::default_10g();
        let n = 4usize;
        let r_star = p.base.capacity_pps() / n as f64;
        let q_star = p.q_star_pkts(n);
        let mut out = [0.0; 2];
        PatchedTimelyFluid::flow_rhs(&p, r_star, 0.0, q_star, q_star, &mut out);
        assert!(
            out[0].abs() / r_star < 1e-10,
            "dR/dt at fixed point = {}",
            out[0]
        );
        assert!(out[1].abs() < 1e-10, "dg/dt at fixed point = {}", out[1]);
    }

    #[test]
    fn unequal_starts_converge_to_fair_share() {
        // Figure 12(a): 7 Gbps vs 3 Gbps start converges (contrast Fig 9c).
        let p = PatchedTimelyParams::default_10g();
        let c = p.base.capacity_pps();
        let mut m = PatchedTimelyFluid::new(p, 2);
        let tr = m.simulate_with_rates(&[0.7 * c, 0.3 * c], 0.4);
        let r0 = tr.mean_from(m.rate_index(0), 0.35);
        let r1 = tr.mean_from(m.rate_index(1), 0.35);
        assert!(
            (r0 - r1).abs() / (r0 + r1) < 0.05,
            "rates must converge: {r0} vs {r1}"
        );
        // And the queue must sit at q*.
        let q_tail = tr.mean_from(0, 0.35);
        let q_star = m.params.q_star_pkts(2);
        assert!(
            (q_tail - q_star).abs() / q_star < 0.2,
            "queue {q_tail} vs q* {q_star}"
        );
    }

    #[test]
    fn stable_for_16_flows() {
        // Figure 12(b): N = 16 < 40 is stable.
        let p = PatchedTimelyParams::default_10g();
        let mut m = PatchedTimelyFluid::new(p, 16);
        let tr = m.simulate(0.5);
        let q_star = m.params.q_star_pkts(16);
        let osc = tr.peak_to_peak_from(0, 0.4) / q_star;
        assert!(osc < 0.3, "N=16 should be stable, oscillation {osc:.3}");
    }

    #[test]
    fn margin_positive_small_n_negative_large_n() {
        // Figure 11: stable until ~40 flows, then the margin collapses.
        let p = PatchedTimelyParams::default_10g();
        let pm = |n: usize| {
            PatchedTimelyFluid::new(p.clone(), n)
                .margin_report()
                .phase_margin_deg
                .unwrap_or(180.0)
        };
        let pm4 = pm(4);
        let pm64 = pm(64);
        assert!(pm4 > 0.0, "N=4 must be stable, pm = {pm4:.1}");
        assert!(pm64 < pm4, "margin must fall with N: {pm64:.1} vs {pm4:.1}");
        assert!(pm64 < 0.0, "N=64 should be unstable, pm = {pm64:.1}");
    }

    #[test]
    fn margin_decreases_with_flow_count() {
        // Figure 11's regime: as N grows, q* (Eq 31) grows, the feedback
        // delay (Eq 24) grows, and the margin collapses. (Very small N has
        // its own fast-update dynamics, so the monotone region starts at
        // moderate N.)
        let p = PatchedTimelyParams::default_10g();
        let pms: Vec<f64> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| {
                PatchedTimelyFluid::new(p.clone(), n)
                    .margin_report()
                    .phase_margin_deg
                    .unwrap_or(180.0)
            })
            .collect();
        for w in pms.windows(2) {
            assert!(
                w[1] < w[0] + 5.0,
                "patched TIMELY margin should broadly decrease: {pms:?}"
            );
        }
        // And it must actually cross zero somewhere in this range.
        assert!(pms[0] > 0.0 && *pms.last().unwrap() < 0.0, "{pms:?}");
    }
}
