//! The TIMELY fluid model (paper §4, Figure 7, Table 2).
//!
//! TIMELY adjusts rate from RTT samples (Algorithm 1): additive increase
//! below `T_low`, multiplicative decrease above `T_high`, and in between a
//! gradient rule — increase when the EWMA RTT gradient is ≤ 0, decrease
//! proportionally to the gradient otherwise. The fluid translation (Eqs
//! 20–24) has two structural properties proven in the paper and verified by
//! this module's tests:
//!
//! * **Theorem 3** — as published the system has *no* fixed point: at any
//!   candidate equilibrium `g_i = 0` forces `dR_i/dt = δ/τ* ≠ 0`;
//! * **Theorem 4** — flipping the tie (`g ≤ 0` → `g < 0`, Eq 28) yields
//!   *infinitely many* fixed points: any rate split with `Σ R_i = C` and
//!   `C·T_low < q < C·T_high` is an equilibrium, so fairness is accidental
//!   (Figure 9: the outcome depends on starting conditions).
//!
//! A key modelling point from §5.2: the feedback delay `τ′` **includes the
//! queueing delay** (Eq 24) because the RTT sample reflects the queue at
//! packet arrival. This is the structural disadvantage against ECN's
//! egress marking, and it is faithfully implemented here via a
//! state-dependent history lookup.

use crate::jitter::Jitter;
use crate::units;
use fluid::batch::{lane_of, LaneSystem};
use fluid::dde::{integrate_dde_with_prehistory, DdeOptions, DdeSystem};
use fluid::history::History;
use fluid::trace::Trace;

/// TIMELY parameters (Table 2 + the recommended values of footnote 4).
#[derive(Debug, Clone)]
pub struct TimelyParams {
    /// Packet size in bytes (the model's packet unit; also the MTU of Eq 24).
    pub packet_bytes: f64,
    /// Bottleneck bandwidth `C` in Gbps.
    pub capacity_gbps: f64,
    /// EWMA smoothing factor `α` for the RTT gradient.
    pub ewma_alpha: f64,
    /// Additive-increase step `δ` in Mbps.
    pub delta_mbps: f64,
    /// Multiplicative-decrease factor `β`.
    pub beta: f64,
    /// Low RTT threshold `T_low` in µs.
    pub t_low_us: f64,
    /// High RTT threshold `T_high` in µs.
    pub t_high_us: f64,
    /// Minimum RTT `D_minRTT` used for gradient normalization, in µs.
    pub d_min_rtt_us: f64,
    /// Propagation delay `D_prop` in µs.
    pub d_prop_us: f64,
    /// Burst (segment) size `Seg` in KB.
    pub seg_kb: f64,
    /// When true, rate increases on a zero gradient (`g ≤ 0`, Algorithm 1
    /// line 9 as published — Theorem 3). When false, uses the `<` variant
    /// of Eq 28 (Theorem 4).
    pub tie_increases: bool,
    /// Minimum rate floor in Mbps.
    pub min_rate_mbps: f64,
}

impl TimelyParams {
    /// The values recommended in \[21\] and used for the paper's validation
    /// (footnote 4): C = 10 Gbps, β = 0.8, α = 0.875, T_low = 50 µs,
    /// T_high = 500 µs, D_minRTT = 20 µs; δ = 10 Mbps (§4.2).
    pub fn default_10g() -> Self {
        TimelyParams {
            packet_bytes: 1000.0,
            capacity_gbps: 10.0,
            ewma_alpha: 0.875,
            delta_mbps: 10.0,
            beta: 0.8,
            t_low_us: 50.0,
            t_high_us: 500.0,
            d_min_rtt_us: 20.0,
            d_prop_us: 4.0,
            seg_kb: 16.0,
            tie_increases: true,
            min_rate_mbps: 10.0,
        }
    }

    /// Capacity in packets/second.
    pub fn capacity_pps(&self) -> f64 {
        units::gbps_to_pps(self.capacity_gbps, self.packet_bytes)
    }

    /// `δ` in packets/second.
    pub fn delta_pps(&self) -> f64 {
        units::mbps_to_pps(self.delta_mbps, self.packet_bytes)
    }

    /// Queue level corresponding to `T_low` (packets): `C·T_low`.
    pub fn q_low_pkts(&self) -> f64 {
        self.capacity_pps() * units::us_to_s(self.t_low_us)
    }

    /// Queue level corresponding to `T_high` (packets): `C·T_high`.
    pub fn q_high_pkts(&self) -> f64 {
        self.capacity_pps() * units::us_to_s(self.t_high_us)
    }

    /// Segment size in packets.
    pub fn seg_pkts(&self) -> f64 {
        self.seg_kb * 1000.0 / self.packet_bytes
    }

    /// `D_minRTT` in seconds.
    pub fn d_min_rtt_s(&self) -> f64 {
        units::us_to_s(self.d_min_rtt_us)
    }

    /// `D_prop` in seconds.
    pub fn d_prop_s(&self) -> f64 {
        units::us_to_s(self.d_prop_us)
    }

    /// Rate-update interval `τ*` for a flow at rate `r` (Eq 23):
    /// `max(Seg/R, D_minRTT)`.
    pub fn tau_star(&self, r: f64) -> f64 {
        (self.seg_pkts() / r.max(1e-3)).max(self.d_min_rtt_s())
    }

    /// Feedback delay `τ′` for queue `q` (Eq 24): `q/C + MTU/C + D_prop` —
    /// queueing delay *included*, unlike ECN.
    pub fn tau_feedback(&self, q: f64) -> f64 {
        let c = self.capacity_pps();
        q.max(0.0) / c + 1.0 / c + self.d_prop_s()
    }

    /// Minimum rate in packets/second.
    pub fn min_rate_pps(&self) -> f64 {
        units::mbps_to_pps(self.min_rate_mbps, self.packet_bytes)
    }
}

/// The TIMELY fluid model for `N` flows over one bottleneck.
///
/// State layout: `x\[0\] = q`; flow `i` occupies `x[1+2i] = R_i`,
/// `x[2+2i] = g_i`.
#[derive(Debug, Clone)]
pub struct TimelyFluid {
    /// Model parameters.
    pub params: TimelyParams,
    /// Number of flows.
    pub n_flows: usize,
    /// Per-flow start times in seconds (flows contribute nothing and stay
    /// frozen before their start; Figure 9b starts one flow 10 ms late).
    pub start_times: Vec<f64>,
    /// Optional feedback-delay jitter on `τ′` (Figure 20).
    pub jitter: Option<Jitter>,
}

impl TimelyFluid {
    /// New model; all flows start at t = 0.
    pub fn new(params: TimelyParams, n_flows: usize) -> Self {
        assert!(n_flows >= 1);
        TimelyFluid {
            params,
            n_flows,
            start_times: vec![0.0; n_flows],
            jitter: None,
        }
    }

    /// Set per-flow start times (Figure 9b).
    pub fn with_start_times(mut self, starts: Vec<f64>) -> Self {
        assert_eq!(starts.len(), self.n_flows);
        self.start_times = starts;
        self
    }

    /// Attach feedback-delay jitter (Figure 20).
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        1 + 2 * self.n_flows
    }

    /// Index of flow `i`'s rate.
    pub fn rate_index(&self, i: usize) -> usize {
        1 + 2 * i
    }

    /// Index of flow `i`'s gradient.
    pub fn grad_index(&self, i: usize) -> usize {
        2 + 2 * i
    }

    /// Simulate with explicit initial rates (packets/second). Gradients
    /// start at 0 and the queue empty.
    pub fn simulate_with_rates(&mut self, initial_rates_pps: &[f64], duration_s: f64) -> Trace {
        assert_eq!(initial_rates_pps.len(), self.n_flows);
        let mut x0 = vec![0.0; self.state_dim()];
        for (i, &r) in initial_rates_pps.iter().enumerate() {
            x0[self.rate_index(i)] = r;
        }
        let step = (self.params.d_prop_s() / 2.0).min(1e-6);
        // History must reach back τ' + τ* at the largest plausible queue.
        let horizon = self.params.tau_feedback(self.params.q_high_pkts() * 4.0)
            + self.params.tau_star(self.params.min_rate_pps())
            + self.jitter.as_ref().map_or(0.0, Jitter::max_extra)
            + 10.0 * step;
        let record_every = ((duration_s / step) / 4000.0).ceil().max(1.0) as usize;
        let opts = DdeOptions {
            step,
            record_every,
            history_horizon_s: horizon,
        };
        integrate_dde_with_prehistory(self, &x0.clone(), &x0.clone(), 0.0, duration_s, &opts)
    }

    /// Simulate with the paper's default start: each flow at `C/N`
    /// ("a new flow starts at rate C/(N+1)"; with N simultaneous flows the
    /// validation uses 1/N of link bandwidth).
    pub fn simulate(&mut self, duration_s: f64) -> Trace {
        let r0 = self.params.capacity_pps() / self.n_flows as f64;
        let rates = vec![r0; self.n_flows];
        self.simulate_with_rates(&rates, duration_s)
    }

    /// Per-flow rate series in Gbps.
    pub fn rates_gbps(&self, trace: &Trace, flow: usize) -> Vec<(f64, f64)> {
        trace
            .series(self.rate_index(flow))
            .into_iter()
            .map(|(t, pps)| (t, units::pps_to_gbps(pps, self.params.packet_bytes)))
            .collect()
    }

    /// Queue series in KB.
    pub fn queue_kb(&self, trace: &Trace) -> Vec<(f64, f64)> {
        trace
            .series(0)
            .into_iter()
            .map(|(t, pkts)| (t, units::pkts_to_kb(pkts, self.params.packet_bytes)))
            .collect()
    }

    /// The rate derivative of Eq 21 for one flow, given the delayed queue
    /// observations. Exposed for the Theorem 3/4 tests.
    // simlint: allow(unit-suffix) — returns dR/dt in pps/s, a compound dimension no suffix names
    pub fn rate_rhs(&self, r: f64, g: f64, q_delayed: f64) -> f64 {
        let p = &self.params;
        let tau = p.tau_star(r);
        let q_low = p.q_low_pkts();
        let q_high = p.q_high_pkts();
        if q_delayed < q_low {
            p.delta_pps() / tau
        } else if q_delayed > q_high {
            -(p.beta / tau) * (1.0 - q_high / q_delayed) * r
        } else {
            let increase_on_tie = if p.tie_increases { g <= 0.0 } else { g < 0.0 };
            if increase_on_tie {
                p.delta_pps() / tau
            } else {
                -(g.max(0.0) * p.beta / tau) * r
            }
        }
    }
}

impl LaneSystem for TimelyFluid {
    fn lane_dim(&self) -> usize {
        self.state_dim()
    }

    fn lane_rhs(
        &mut self,
        t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        hist: &History,
        dxdt: &mut [f64],
    ) {
        let p = &self.params;
        let c = p.capacity_pps();
        let extra = self.jitter.as_ref().map_or(0.0, |j| j.extra(t));
        let q_lane = lane_of(0, lane, stride);
        // Eq 24: feedback delay includes the *current* queueing delay — the
        // delayed lookup time is per-lane because each lane has its own queue.
        let tau_fb = p.tau_feedback(x[q_lane]) + extra;
        let qd1 = hist.eval(t - tau_fb, q_lane).max(0.0);

        let mut sum_rates = 0.0;
        for i in 0..self.n_flows {
            if t >= self.start_times[i] {
                sum_rates += x[lane_of(self.rate_index(i), lane, stride)];
            }
        }
        // State component 0 is the shared queue.
        dxdt[q_lane] = if x[q_lane] <= 0.0 && sum_rates < c {
            0.0
        } else {
            sum_rates - c
        };

        // Flows at equal rates share the same delayed lookup time; cache the
        // last one so the common symmetric case does one `locate` per
        // distinct delayed time instead of one per flow.
        let mut qd2_cache = (f64::NAN, 0.0);
        for i in 0..self.n_flows {
            let ri = lane_of(self.rate_index(i), lane, stride);
            let gi = lane_of(self.grad_index(i), lane, stride);
            if t < self.start_times[i] {
                dxdt[ri] = 0.0;
                dxdt[gi] = 0.0;
                continue;
            }
            let r = x[ri];
            let g = x[gi];
            let tau_i = p.tau_star(r);
            let t2 = t - tau_fb - tau_i;
            // simlint: allow(float-cmp) — memo key: only a bitwise-identical t2 may reuse the cache
            let qd2 = if t2 == qd2_cache.0 {
                qd2_cache.1
            } else {
                let v = hist.eval(t2, q_lane).max(0.0);
                qd2_cache = (t2, v);
                v
            };
            dxdt[ri] = self.rate_rhs(r, g, qd1);
            // Eq 22: EWMA of the normalized queue (≈ RTT) difference.
            dxdt[gi] = p.ewma_alpha / tau_i * (-g + (qd1 - qd2) / (c * p.d_min_rtt_s()));
        }
    }

    fn min_delay(&self) -> f64 {
        // τ' at an empty queue: MTU/C + D_prop.
        self.params.tau_feedback(0.0)
    }

    fn lane_project(&mut self, _t: f64, x: &mut [f64], lane: usize, stride: usize) {
        let p = &self.params;
        let line = p.capacity_pps();
        let floor = p.min_rate_pps();
        let q = lane_of(0, lane, stride);
        x[q] = x[q].max(0.0); // component 0 is the queue
        for i in 0..self.n_flows {
            let ri = lane_of(self.rate_index(i), lane, stride);
            x[ri] = x[ri].clamp(floor, line);
            // Gradient is a normalized dimensionless signal; keep it sane.
            let gi = lane_of(self.grad_index(i), lane, stride);
            x[gi] = x[gi].clamp(-10.0, 10.0);
        }
    }
}

impl DdeSystem for TimelyFluid {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    fn rhs(&mut self, t: f64, x: &[f64], hist: &History, dxdt: &mut [f64]) {
        self.lane_rhs(t, x, 0, 1, hist, dxdt);
    }

    fn min_delay(&self) -> f64 {
        LaneSystem::min_delay(self)
    }

    fn project(&mut self, t: f64, x: &mut [f64]) {
        self.lane_project(t, x, 0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_in_packets() {
        let p = TimelyParams::default_10g();
        // 10 Gbps, 1 KB packets → C = 1.25e6 pps; T_low = 50 µs → 62.5 pkts.
        assert!((p.q_low_pkts() - 62.5).abs() < 1e-9);
        assert!((p.q_high_pkts() - 625.0).abs() < 1e-9);
    }

    #[test]
    fn tau_star_respects_floor() {
        let p = TimelyParams::default_10g();
        // Fast flow: Seg/R below D_minRTT → floor at D_minRTT.
        let fast = p.capacity_pps();
        assert!((p.tau_star(fast) - p.d_min_rtt_s()).abs() < 1e-12);
        // Slow flow: Seg/R dominates.
        let slow = p.capacity_pps() / 100.0;
        assert!(p.tau_star(slow) > p.d_min_rtt_s());
    }

    #[test]
    fn feedback_delay_includes_queueing() {
        let p = TimelyParams::default_10g();
        let empty = p.tau_feedback(0.0);
        let full = p.tau_feedback(625.0);
        // 625 pkts at 1.25e6 pps = 500 µs of extra queueing delay.
        assert!((full - empty - 500e-6).abs() < 1e-9);
    }

    #[test]
    fn theorem3_no_fixed_point() {
        // At any candidate equilibrium (dq = 0, dg = 0 ⇒ g = 0), the rate
        // derivative is δ/τ* > 0 in the gradient region — no fixed point.
        let m = TimelyFluid::new(TimelyParams::default_10g(), 2);
        let q_mid = (m.params.q_low_pkts() + m.params.q_high_pkts()) / 2.0;
        for r in [1e4, 1e5, 6.25e5] {
            let drdt = m.rate_rhs(r, 0.0, q_mid);
            assert!(drdt > 0.0, "dR/dt must be δ/τ* > 0 at g = 0, got {drdt}");
        }
    }

    #[test]
    fn theorem4_infinite_fixed_points_under_strict_tie() {
        // With the < variant (Eq 28), g = 0 gives dR/dt = 0 for *any* rate
        // split — infinitely many fixed points.
        let mut params = TimelyParams::default_10g();
        params.tie_increases = false;
        let m = TimelyFluid::new(params, 2);
        let q_mid = (m.params.q_low_pkts() + m.params.q_high_pkts()) / 2.0;
        for r in [1e4, 2e5, 1e6] {
            let drdt = m.rate_rhs(r, 0.0, q_mid);
            assert_eq!(drdt, 0.0, "any rate is an equilibrium under Eq 28");
        }
    }

    #[test]
    fn regime_boundaries() {
        let m = TimelyFluid::new(TimelyParams::default_10g(), 1);
        let p = &m.params;
        // Below T_low: increase regardless of gradient.
        assert!(m.rate_rhs(1e5, 5.0, p.q_low_pkts() * 0.5) > 0.0);
        // Above T_high: multiplicative decrease regardless of gradient.
        assert!(m.rate_rhs(1e5, -5.0, p.q_high_pkts() * 2.0) < 0.0);
        // Middle with positive gradient: decrease proportional to g.
        let d1 = m.rate_rhs(1e5, 0.5, p.q_low_pkts() * 2.0);
        let d2 = m.rate_rhs(1e5, 1.0, p.q_low_pkts() * 2.0);
        assert!(d1 < 0.0 && d2 < d1, "decrease scales with gradient");
    }

    #[test]
    fn different_initial_conditions_reach_different_splits() {
        // Figure 9: same protocol, different starting rates ⇒ different
        // long-run rate splits (arbitrary unfairness).
        let params = TimelyParams::default_10g();
        let c = params.capacity_pps();

        let mut m1 = TimelyFluid::new(params.clone(), 2);
        let tr1 = m1.simulate_with_rates(&[c * 0.5, c * 0.5], 0.15);
        let mut m2 = TimelyFluid::new(params.clone(), 2);
        let tr2 = m2.simulate_with_rates(&[c * 0.7, c * 0.3], 0.15);

        let split = |m: &TimelyFluid, tr: &Trace| {
            let r0 = tr.mean_from(m.rate_index(0), 0.1);
            let r1 = tr.mean_from(m.rate_index(1), 0.1);
            r0 / (r0 + r1)
        };
        let s1 = split(&m1, &tr1);
        let s2 = split(&m2, &tr2);
        // Equal start stays (roughly) symmetric; unequal start stays skewed.
        assert!((s1 - 0.5).abs() < 0.1, "equal start split {s1}");
        assert!(s2 > 0.55, "unequal start should persist, split {s2}");
    }

    #[test]
    fn late_start_flow_is_frozen_then_active() {
        let params = TimelyParams::default_10g();
        let c = params.capacity_pps();
        let mut m = TimelyFluid::new(params, 2).with_start_times(vec![0.0, 0.01]);
        let tr = m.simulate_with_rates(&[c * 0.5, c * 0.5], 0.03);
        // Before t = 10 ms the second flow's rate must not have moved.
        let early: Vec<(f64, f64)> = tr
            .series(m.rate_index(1))
            .into_iter()
            .filter(|&(t, _)| t < 0.009)
            .collect();
        for &(_, r) in &early {
            assert!((r - c * 0.5).abs() < 1e-6, "frozen before start");
        }
        // After start it evolves (queue pressure from flow 0 exists).
        let late = tr.mean_from(m.rate_index(1), 0.025);
        assert!(
            (late - c * 0.5).abs() > 1e3,
            "flow 1 must react after start"
        );
    }

    #[test]
    fn jitter_runs_are_deterministic_per_seed() {
        use crate::jitter::Jitter;
        let params = TimelyParams::default_10g();
        let run = |seed: u64| {
            let mut m = TimelyFluid::new(params.clone(), 2)
                .with_jitter(Jitter::uniform(50e-6, 10e-6, seed));
            let tr = m.simulate(0.02);
            tr.last_state().unwrap().to_vec()
        };
        assert_eq!(run(1), run(1), "same seed, same trajectory");
        let a = run(1);
        let b = run(2);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.0, "different seeds should diverge");
    }

    #[test]
    fn utilization_reaches_capacity() {
        // Whatever the fairness, TIMELY keeps the link busy: Σ rates ≈ C
        // once the queue is nonempty in steady operation.
        let params = TimelyParams::default_10g();
        let c = params.capacity_pps();
        let mut m = TimelyFluid::new(params, 4);
        let tr = m.simulate(0.2);
        let sum: f64 = (0..4).map(|i| tr.mean_from(m.rate_index(i), 0.15)).sum();
        assert!((sum - c).abs() / c < 0.1, "aggregate {sum} vs capacity {c}");
    }
}
