//! The discrete AIMD model of DCQCN (paper §3.3, Theorem 2, Appendix B).
//!
//! The fluid model cannot answer *whether* and *how fast* flows converge to
//! the fair fixed point, so the paper builds a synchronized discrete model:
//! time advances in units of the α-update interval `τ′`; in each AIMD cycle
//! `k` all flows peak together at `T_k`, cut once, and perform `ΔT_k − 1`
//! additive increases. The recursions are Eqs 15–16, the cycle length is
//! Eq 40 with the queue-buildup time `t` of Eq 41, and the fixed point `α*`
//! solves Eq 42.
//!
//! Theorem 2 (verified by this module's tests and by the `thm2` bench):
//!
//! * α differences decay as `(1−g)^{ΣΔT}` (Eq 17) — exponential;
//! * once α has converged, rate differences contract by `(1 − α(T_k)/2)`
//!   per cycle (Eq 18), and `α(T_k)` decreases monotonically to `α* > 0`
//!   (Eq 19), so convergence is exponential with rate at least
//!   `(1 − α*/2)` per cycle.

use crate::dcqcn::DcqcnParams;

/// State of one flow in the discrete model.
#[derive(Debug, Clone, Copy)]
pub struct FlowState {
    /// Peak rate `R_C(T_k)` in packets/second.
    pub rate_pps: f64,
    /// Reduction factor `α(T_k)`.
    pub alpha: f64,
}

/// The synchronized discrete AIMD model.
#[derive(Debug, Clone)]
pub struct DiscreteAimd {
    /// DCQCN parameters (uses `g`, `R_AI`, `C`, `K_max`, `τ′`).
    pub params: DcqcnParams,
    /// Per-flow states at the current peak `T_k`.
    pub flows: Vec<FlowState>,
    /// Cycle counter `k`.
    pub cycle: usize,
}

impl DiscreteAimd {
    /// Start `n` flows at the given peak rates with `α = 1` (DCQCN's initial
    /// α).
    pub fn new(params: DcqcnParams, initial_rates_pps: &[f64]) -> Self {
        assert!(!initial_rates_pps.is_empty());
        DiscreteAimd {
            params,
            flows: initial_rates_pps
                .iter()
                .map(|&rate_pps| FlowState {
                    rate_pps,
                    alpha: 1.0,
                })
                .collect(),
            cycle: 0,
        }
    }

    /// Queue-buildup time `t` of Eq 41 (in units of τ′):
    /// `t = (−1 + √(1 + 8·K_max/(N·R_AI·τ′)))/2`.
    // simlint: allow(unit-suffix) — dimensionless multiple of τ′ (Eq 41 counts alpha-timer periods)
    pub fn buildup_time(&self) -> f64 {
        let p = &self.params;
        let n = self.flows.len() as f64;
        let k_max = p.kmax_pkts();
        let r_ai_units = p.r_ai_pps() * p.alpha_timer_s(); // packets per τ′
        (-1.0 + (1.0 + 8.0 * k_max / (n * r_ai_units)).sqrt()) / 2.0
    }

    /// Cycle length `ΔT_k` of Eq 40 (in units of τ′), for a common α:
    /// `ΔT = 2 + (t/2 + C/(2·N·R_AI))·α`.
    pub fn cycle_length(&self, alpha: f64) -> f64 {
        let p = &self.params;
        let n = self.flows.len() as f64;
        let t = self.buildup_time();
        let c_units = p.capacity_pps() * p.alpha_timer_s(); // pkts per τ′
        let r_ai_units = p.r_ai_pps() * p.alpha_timer_s();
        2.0 + (t / 2.0 + c_units / (2.0 * n * r_ai_units)) * alpha
    }

    /// Advance one AIMD cycle (Eqs 15–16). Uses the mean α for the shared
    /// cycle length (flows are synchronized by assumption). Returns `ΔT_k`.
    pub fn step(&mut self) -> f64 {
        let mean_alpha = self.flows.iter().map(|f| f.alpha).sum::<f64>() / self.flows.len() as f64;
        let dt = self.cycle_length(mean_alpha).max(2.0);
        let g = self.params.g;
        let r_ai = self.params.r_ai_pps();
        let increases = dt - 1.0;
        for f in &mut self.flows {
            // Eq 15 with the simplification R_T := R_C at the decrease: each
            // of the ΔT−1 additive steps raises the rate by R_AI.
            f.rate_pps = (1.0 - f.alpha / 2.0) * f.rate_pps + increases * r_ai;
            // Eq 16.
            f.alpha = (1.0 - g).powf(dt - 1.0) * ((1.0 - g) * f.alpha + g);
        }
        self.cycle += 1;
        dt
    }

    /// Max pairwise rate gap (pps), the Theorem 2 convergence metric.
    pub fn max_rate_gap_pps(&self) -> f64 {
        let max = self
            .flows
            .iter()
            .map(|f| f.rate_pps)
            .fold(f64::MIN, f64::max);
        let min = self
            .flows
            .iter()
            .map(|f| f.rate_pps)
            .fold(f64::MAX, f64::min);
        max - min
    }

    /// Max pairwise α gap.
    pub fn max_alpha_gap(&self) -> f64 {
        let max = self.flows.iter().map(|f| f.alpha).fold(f64::MIN, f64::max);
        let min = self.flows.iter().map(|f| f.alpha).fold(f64::MAX, f64::min);
        max - min
    }

    /// The fixed point `α*` of Eq 42: `α* = (1−g)^{ΔT(α*)}·((1−g)α* + g)`,
    /// solved by fixed-point iteration (the map is a contraction for the
    /// paper's parameters).
    pub fn alpha_star(&self) -> f64 {
        let g = self.params.g;
        let mut a = 0.5;
        for _ in 0..10_000 {
            let dt = self.cycle_length(a).max(2.0);
            let next = (1.0 - g).powf(dt - 1.0) * ((1.0 - g) * a + g);
            if (next - a).abs() < 1e-15 {
                return next;
            }
            a = next;
        }
        a
    }

    /// Run `cycles` cycles recording `(cycle, max_rate_gap_pps, mean_alpha)` —
    /// the series behind Figure 6 / the Theorem 2 decay plots.
    pub fn run(&mut self, cycles: usize) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::with_capacity(cycles + 1);
        let mean_alpha =
            |s: &Self| s.flows.iter().map(|f| f.alpha).sum::<f64>() / s.flows.len() as f64;
        out.push((self.cycle, self.max_rate_gap_pps(), mean_alpha(self)));
        for _ in 0..cycles {
            self.step();
            out.push((self.cycle, self.max_rate_gap_pps(), mean_alpha(self)));
        }
        out
    }

    /// Generate the sawtooth trace of Figure 6: within-cycle rate evolution
    /// of each flow `(time_in_τ′_units, rates)`.
    pub fn sawtooth(&mut self, cycles: usize) -> Vec<(f64, Vec<f64>)> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let r_ai = self.params.r_ai_pps();
        for _ in 0..cycles {
            let rates_at_peak: Vec<f64> = self.flows.iter().map(|f| f.rate_pps).collect();
            let alphas: Vec<f64> = self.flows.iter().map(|f| f.alpha).collect();
            out.push((t, rates_at_peak.clone()));
            // The cut.
            let after_cut: Vec<f64> = rates_at_peak
                .iter()
                .zip(&alphas)
                .map(|(&r, &a)| (1.0 - a / 2.0) * r)
                .collect();
            out.push((t + 1.0, after_cut.clone()));
            let dt = self.step();
            // Additive climb (record endpoints of the ramp).
            let climbed: Vec<f64> = after_cut.iter().map(|&r| r + (dt - 1.0) * r_ai).collect();
            out.push((t + dt, climbed));
            t += dt;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DcqcnParams {
        DcqcnParams::default_40g()
    }

    #[test]
    fn alpha_gap_decays_exponentially() {
        // Eq 17: α gaps contract by (1−g)^{ΔT} each cycle.
        let p = params();
        let c = p.capacity_pps();
        let mut m = DiscreteAimd::new(p, &[c * 0.8, c * 0.2]);
        m.flows[0].alpha = 1.0;
        m.flows[1].alpha = 0.3;
        let mut prev_gap = m.max_alpha_gap();
        let g0 = prev_gap;
        for _ in 0..80 {
            m.step();
            let gap = m.max_alpha_gap();
            assert!(gap < prev_gap, "α gap must shrink every cycle");
            prev_gap = gap;
        }
        // Eq 17: decay is exponential — after 80 cycles the gap must be a
        // tiny fraction of the initial one.
        assert!(
            prev_gap < 0.01 * g0,
            "α gap after 80 cycles: {prev_gap} (from {g0})"
        );
    }

    #[test]
    fn rate_gap_decays_exponentially() {
        // Theorem 2: the rate gap dies at least as fast as (1−α*/2)^k.
        let p = params();
        let c = p.capacity_pps();
        let mut m = DiscreteAimd::new(p, &[c * 0.9, c * 0.1]);
        let a_star = m.alpha_star();
        let g0 = m.max_rate_gap_pps();
        let k = 40;
        for _ in 0..k {
            m.step();
        }
        let bound = g0 * (1.0 - a_star / 2.0).powi(k);
        assert!(
            m.max_rate_gap_pps() <= bound * 1.5,
            "gap {} should be ≤ ~bound {}",
            m.max_rate_gap_pps(),
            bound
        );
    }

    #[test]
    fn alpha_monotone_decreasing_to_alpha_star() {
        // Eq 19: α(T_0) > α(T_1) > … > α* > 0 when starting at α = 1.
        let p = params();
        let c = p.capacity_pps();
        let mut m = DiscreteAimd::new(p, &[c / 2.0, c / 2.0]);
        let a_star = m.alpha_star();
        assert!(a_star > 0.0);
        let mut prev = 1.0;
        for _ in 0..200 {
            m.step();
            let a = m.flows[0].alpha;
            assert!(a < prev + 1e-15, "α must decrease monotonically");
            assert!(a > a_star - 1e-9, "α must stay above α*");
            prev = a;
        }
        assert!(
            (prev - a_star) / a_star < 0.05,
            "α should approach α*: {prev} vs {a_star}"
        );
    }

    #[test]
    fn alpha_star_solves_eq42() {
        let p = params();
        let c = p.capacity_pps();
        let m = DiscreteAimd::new(p, &[c / 4.0; 4]);
        let a = m.alpha_star();
        let g = m.params.g;
        let dt = m.cycle_length(a).max(2.0);
        let rhs = (1.0 - g).powf(dt - 1.0) * ((1.0 - g) * a + g);
        assert!((a - rhs).abs() < 1e-10, "α* residual: {}", (a - rhs).abs());
    }

    #[test]
    fn cycle_length_grows_with_alpha() {
        // Eq 40 is affine increasing in α: deeper cuts need longer recovery.
        let p = params();
        let c = p.capacity_pps();
        let m = DiscreteAimd::new(p, &[c / 2.0; 2]);
        assert!(m.cycle_length(0.8) > m.cycle_length(0.2));
        assert!(m.cycle_length(0.0) >= 2.0);
    }

    #[test]
    fn buildup_time_decreases_with_flows() {
        // Eq 41: more flows fill K_max faster.
        let p = params();
        let c = p.capacity_pps();
        let t2 = DiscreteAimd::new(p.clone(), &[c / 2.0; 2]).buildup_time();
        let t16 = DiscreteAimd::new(p, &[c / 16.0; 16]).buildup_time();
        assert!(t16 < t2);
    }

    #[test]
    fn sawtooth_shape() {
        let p = params();
        let c = p.capacity_pps();
        let mut m = DiscreteAimd::new(p, &[c * 0.6, c * 0.4]);
        let saw = m.sawtooth(3);
        // Each cycle contributes 3 points: peak, post-cut, next-peak ramp.
        assert_eq!(saw.len(), 9);
        // Post-cut rate is below the peak for every flow.
        for chunk in saw.chunks(3) {
            for i in 0..2 {
                assert!(chunk[1].1[i] < chunk[0].1[i], "cut reduces rate");
                assert!(chunk[2].1[i] > chunk[1].1[i], "ramp increases rate");
            }
        }
    }

    #[test]
    fn converged_flows_stay_converged() {
        let p = params();
        let c = p.capacity_pps();
        let mut m = DiscreteAimd::new(p, &[c / 2.0, c / 2.0]);
        for _ in 0..50 {
            m.step();
        }
        assert!(m.max_rate_gap_pps() < 1e-6);
        assert!(m.max_alpha_gap() < 1e-12);
    }
}
