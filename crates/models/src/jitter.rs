//! Deterministic feedback-delay jitter (Figure 20).
//!
//! The paper injects "uniform random jitter to the feedback delay of DCQCN
//! (τ*) and TIMELY (τ′)". Inside an RK4 integrator, white per-evaluation
//! noise would be step-size dependent and irreproducible; instead we use a
//! **piecewise-constant** jitter process: the extra delay is constant over
//! windows of `interval_s` seconds, and the value in window `k` is a pure hash
//! of `(seed, k)`. The process is therefore a deterministic function of
//! time — independent of query order, step size, and evaluation count —
//! while still being "uniform random" across windows.

/// A piecewise-constant uniform jitter process on `[0, amplitude]`.
#[derive(Debug, Clone)]
pub struct Jitter {
    /// Maximum extra delay in seconds (uniform lower bound is 0).
    pub amplitude: f64,
    /// Resampling window in seconds.
    pub interval_s: f64,
    /// Seed for the per-window hash.
    pub seed: u64,
}

impl Jitter {
    /// Uniform jitter on `[0, amplitude]` seconds, resampled every
    /// `interval_s` seconds.
    pub fn uniform(amplitude_s: f64, interval_s: f64, seed: u64) -> Self {
        assert!(amplitude_s >= 0.0 && interval_s > 0.0);
        Jitter {
            amplitude: amplitude_s,
            interval_s,
            seed,
        }
    }

    /// The extra delay at time `t` (seconds). Negative `t` is allowed (the
    /// integrator may query slightly before the origin) and handled by
    /// flooring the window index.
    pub fn extra(&self, t: f64) -> f64 {
        let k = (t / self.interval_s).floor() as i64;
        let h = splitmix64(self.seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u * self.amplitude
    }

    /// Upper bound on the extra delay.
    pub fn max_extra(&self) -> f64 {
        self.amplitude
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_independent() {
        let j = Jitter::uniform(100e-6, 10e-6, 7);
        let a = j.extra(5e-6);
        let b = j.extra(42e-6);
        // Query again in reverse order.
        assert_eq!(j.extra(42e-6), b);
        assert_eq!(j.extra(5e-6), a);
    }

    #[test]
    fn constant_within_window() {
        let j = Jitter::uniform(100e-6, 10e-6, 1);
        let v = j.extra(20e-6);
        assert_eq!(j.extra(21e-6), v);
        assert_eq!(j.extra(29.9e-6), v);
        assert_ne!(j.extra(30.1e-6), v); // overwhelmingly likely
    }

    #[test]
    fn bounded_and_roughly_uniform() {
        let j = Jitter::uniform(100e-6, 1e-6, 3);
        let n = 10_000;
        let mut sum = 0.0;
        for k in 0..n {
            let v = j.extra(k as f64 * 1e-6);
            assert!((0.0..=100e-6).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 50e-6).abs() < 3e-6, "mean {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = Jitter::uniform(1.0, 1.0, 1);
        let b = Jitter::uniform(1.0, 1.0, 2);
        let same = (0..100)
            .filter(|&k| (a.extra(k as f64) - b.extra(k as f64)).abs() < 1e-12)
            .count();
        assert!(same < 3);
    }

    #[test]
    fn zero_amplitude_is_zero() {
        let j = Jitter::uniform(0.0, 1e-6, 9);
        for k in 0..100 {
            assert_eq!(j.extra(k as f64 * 1e-6), 0.0);
        }
    }

    #[test]
    fn negative_time_ok() {
        let j = Jitter::uniform(1e-4, 1e-6, 5);
        let v = j.extra(-3.5e-6);
        assert!((0.0..=1e-4).contains(&v));
    }
}
