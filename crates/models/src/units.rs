//! Unit conversions between human quantities and packet units.
//!
//! The fluid models operate in packets and seconds (see the crate docs). All
//! figures and parameter tables in the paper quote Gbps, KB and µs; these
//! helpers are the single place where the conversion happens.

/// Bits per byte.
pub const BITS_PER_BYTE: f64 = 8.0;

/// Convert a bandwidth in Gbps to packets/second for a given packet size.
pub fn gbps_to_pps(gbps: f64, packet_bytes: f64) -> f64 {
    assert!(gbps > 0.0 && packet_bytes > 0.0);
    gbps * 1e9 / (BITS_PER_BYTE * packet_bytes)
}

/// Convert a bandwidth in Mbps to packets/second.
pub fn mbps_to_pps(mbps: f64, packet_bytes: f64) -> f64 {
    gbps_to_pps(mbps / 1e3, packet_bytes)
}

/// Convert packets/second back to Gbps.
pub fn pps_to_gbps(pps: f64, packet_bytes: f64) -> f64 {
    pps * BITS_PER_BYTE * packet_bytes / 1e9
}

/// Convert kilobytes to packets.
pub fn kb_to_pkts(kb: f64, packet_bytes: f64) -> f64 {
    kb * 1000.0 / packet_bytes
}

/// Convert bytes to packets.
pub fn bytes_to_pkts(bytes: f64, packet_bytes: f64) -> f64 {
    bytes / packet_bytes
}

/// Convert packets to kilobytes.
pub fn pkts_to_kb(pkts: f64, packet_bytes: f64) -> f64 {
    pkts * packet_bytes / 1000.0
}

/// Convert microseconds to seconds.
pub fn us_to_s(us: f64) -> f64 {
    us * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_roundtrip() {
        let pps = gbps_to_pps(10.0, 1000.0);
        assert!((pps - 1.25e6).abs() < 1e-6);
        assert!((pps_to_gbps(pps, 1000.0) - 10.0).abs() < 1e-12);
        assert!((mbps_to_pps(40.0, 1000.0) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn size_roundtrip() {
        assert!((kb_to_pkts(200.0, 1000.0) - 200.0).abs() < 1e-12);
        assert!((pkts_to_kb(5.0, 1000.0) - 5.0).abs() < 1e-12);
        assert!((bytes_to_pkts(1500.0, 1500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_conversion() {
        assert!((us_to_s(55.0) - 55e-6).abs() < 1e-18);
    }
}
