//! Unit conversions between human quantities and packet units.
//!
//! The fluid models operate in packets and seconds (see the crate docs). All
//! figures and parameter tables in the paper quote Gbps, KB and µs; these
//! helpers are the single place where the conversion happens.

/// Bits per byte.
pub const BITS_PER_BYTE: f64 = 8.0;

/// Convert a bandwidth in Gbps to packets/second for a given packet size.
pub fn gbps_to_pps(gbps: f64, packet_bytes: f64) -> f64 {
    assert!(gbps > 0.0 && packet_bytes > 0.0);
    gbps * 1e9 / (BITS_PER_BYTE * packet_bytes)
}

/// Convert a bandwidth in Mbps to packets/second.
pub fn mbps_to_pps(mbps: f64, packet_bytes: f64) -> f64 {
    gbps_to_pps(mbps / 1e3, packet_bytes)
}

/// Convert packets/second back to Gbps.
pub fn pps_to_gbps(pps: f64, packet_bytes: f64) -> f64 {
    pps * BITS_PER_BYTE * packet_bytes / 1e9
}

/// Convert kilobytes to packets.
pub fn kb_to_pkts(kb: f64, packet_bytes: f64) -> f64 {
    kb * 1000.0 / packet_bytes
}

/// Convert bytes to packets.
pub fn bytes_to_pkts(bytes: f64, packet_bytes: f64) -> f64 {
    bytes / packet_bytes
}

/// Convert packets to kilobytes.
pub fn pkts_to_kb(pkts: f64, packet_bytes: f64) -> f64 {
    pkts * packet_bytes / 1000.0
}

/// Convert microseconds to seconds.
pub fn us_to_s(us: f64) -> f64 {
    us * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_roundtrip() {
        let pps = gbps_to_pps(10.0, 1000.0);
        assert!((pps - 1.25e6).abs() < 1e-6);
        assert!((pps_to_gbps(pps, 1000.0) - 10.0).abs() < 1e-12);
        assert!((mbps_to_pps(40.0, 1000.0) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn size_roundtrip() {
        assert!((kb_to_pkts(200.0, 1000.0) - 200.0).abs() < 1e-12);
        assert!((pkts_to_kb(5.0, 1000.0) - 5.0).abs() < 1e-12);
        assert!((bytes_to_pkts(1500.0, 1500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_conversion() {
        assert!((us_to_s(55.0) - 55e-6).abs() < 1e-18);
    }

    // Property tests, driven by the deterministic seeded SimRng (the
    // workspace has no external property-testing dependency by design).

    /// Log-uniform sample over `[lo, hi]` — exercises every magnitude.
    fn log_uniform(rng: &mut desim::SimRng, lo: f64, hi: f64) -> f64 {
        (rng.next_f64() * (hi.ln() - lo.ln()) + lo.ln()).exp()
    }

    #[test]
    fn prop_bandwidth_roundtrip_all_magnitudes() {
        let mut rng = desim::SimRng::new(0x5eed_0001);
        for _ in 0..10_000 {
            // 1 Kbps .. 10 Tbps; 64 B .. 64 KB packets.
            let gbps = log_uniform(&mut rng, 1e-6, 1e4);
            let pkt = log_uniform(&mut rng, 64.0, 65536.0);
            let back = pps_to_gbps(gbps_to_pps(gbps, pkt), pkt);
            assert!(
                (back - gbps).abs() <= 1e-12 * gbps,
                "gbps→pps→gbps drifted: {gbps} → {back} (pkt {pkt})"
            );
        }
    }

    #[test]
    fn prop_size_roundtrip_all_magnitudes() {
        let mut rng = desim::SimRng::new(0x5eed_0002);
        for _ in 0..10_000 {
            let kb = log_uniform(&mut rng, 1e-3, 1e9);
            let pkt = log_uniform(&mut rng, 64.0, 65536.0);
            let back = pkts_to_kb(kb_to_pkts(kb, pkt), pkt);
            assert!(
                (back - kb).abs() <= 1e-12 * kb,
                "kb→pkts→kb drifted: {kb} → {back} (pkt {pkt})"
            );
            let bytes = kb * 1000.0;
            let via_bytes = bytes_to_pkts(bytes, pkt);
            let via_kb = kb_to_pkts(kb, pkt);
            assert!(
                (via_bytes - via_kb).abs() <= 1e-9 * via_kb.max(1.0),
                "bytes and kb paths disagree: {via_bytes} vs {via_kb}"
            );
        }
    }

    #[test]
    fn prop_conversions_finite_under_extreme_valid_inputs() {
        // Paper-scale extremes: 100 Tbps fabrics down to dial-up, jumbo
        // frames down to minimum Ethernet, year-long down to picosecond
        // intervals — everything must stay finite and positive.
        let mut rng = desim::SimRng::new(0x5eed_0003);
        for _ in 0..10_000 {
            let gbps = log_uniform(&mut rng, 1e-9, 1e5);
            let pkt = log_uniform(&mut rng, 1.0, 1e6);
            let us = log_uniform(&mut rng, 1e-6, 3.2e13);
            for v in [
                gbps_to_pps(gbps, pkt),
                mbps_to_pps(gbps * 1e3, pkt),
                pps_to_gbps(gbps_to_pps(gbps, pkt), pkt),
                kb_to_pkts(gbps, pkt),
                pkts_to_kb(gbps, pkt),
                bytes_to_pkts(gbps, pkt),
                us_to_s(us),
            ] {
                assert!(v.is_finite() && v > 0.0, "non-finite/non-positive: {v}");
            }
        }
    }

    #[test]
    fn prop_monotone_in_bandwidth() {
        // More Gbps at the same packet size must always mean more pps.
        let mut rng = desim::SimRng::new(0x5eed_0004);
        for _ in 0..1_000 {
            let pkt = log_uniform(&mut rng, 64.0, 9000.0);
            let a = log_uniform(&mut rng, 1e-3, 1e3);
            let b = a * (1.0 + rng.next_f64());
            assert!(gbps_to_pps(b, pkt) > gbps_to_pps(a, pkt));
        }
    }
}
