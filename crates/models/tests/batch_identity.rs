//! Oracle tests for the batched lockstep DDE path: every protocol's
//! batch-lane kernel must be **bit-identical** to its scalar `DdeSystem`
//! path, and lane results must not depend on the batch width.
//!
//! Both properties fall out of the single-code-path design — the scalar
//! `rhs` delegates to `lane_rhs` at `(lane = 0, stride = 1)`, and per-lane
//! arithmetic only ever touches that lane's strided components — but these
//! tests pin them as executable contracts so a future "optimization" that
//! reorders lane arithmetic fails loudly.

use fluid::batch::{pack_lanes, try_integrate_dde_batch, LaneBatch, LaneSystem};
use fluid::dde::{integrate_dde_with_prehistory, DdeOptions, DdeSystem};
use fluid::Trace;
use models::dcqcn::{DcqcnFluid, DcqcnParams};
use models::pi::{DcqcnPiFluid, PatchedTimelyPiFluid};
use models::{PatchedTimelyFluid, PatchedTimelyParams, TimelyFluid, TimelyParams};

/// Every recorded knot of a trace, as raw bits: `t` then the state row.
fn trace_bits(tr: &Trace) -> Vec<u64> {
    let mut bits = Vec::with_capacity(tr.len() * (tr.dim() + 1));
    for (i, &t) in tr.times().iter().enumerate() {
        bits.push(t.to_bits());
        bits.extend(tr.state(i).iter().map(|v| v.to_bits()));
    }
    bits
}

/// Shared lockstep options: one step for all lanes (≤ every lane's smallest
/// delay), knots recorded every step, and a history horizon generous enough
/// that no in-run lookback can fall off the back (horizon ≥ duration +
/// slack, and the deepest lookback any model makes during `duration` is far
/// smaller than `duration` itself at these time scales).
fn shared_opts<M: LaneSystem>(models: &[M], duration_s: f64) -> DdeOptions {
    let min_delay = models
        .iter()
        .map(LaneSystem::min_delay)
        .fold(f64::INFINITY, f64::min);
    DdeOptions {
        step: (min_delay / 4.0).min(1e-6),
        record_every: 1,
        history_horizon_s: duration_s + 0.01,
    }
}

/// The oracle: integrate each model solo through the scalar path and as a
/// lane of one batch, under identical options and initial states, and
/// require bitwise-equal traces.
fn assert_lanes_match_scalar<M>(models: Vec<M>, x0s: Vec<Vec<f64>>, duration_s: f64)
where
    M: LaneSystem + DdeSystem + Clone,
{
    let opts = shared_opts(&models, duration_s);
    let scalar: Vec<Trace> = models
        .iter()
        .zip(&x0s)
        .map(|(m, x0)| {
            integrate_dde_with_prehistory(&mut m.clone(), x0, x0, 0.0, duration_s, &opts)
        })
        .collect();
    let packed = pack_lanes(&x0s);
    let mut batch = LaneBatch::new(models);
    let lanes = try_integrate_dde_batch(&mut batch, &packed, &packed, 0.0, duration_s, &opts)
        .expect("valid batch configuration");
    assert_eq!(lanes.len(), scalar.len());
    for (lane, (solo, x0)) in lanes.into_iter().zip(scalar.iter().zip(&x0s)) {
        let lane = lane.unwrap_or_else(|e| panic!("lane x0={x0:?} diverged: {e}"));
        assert_eq!(
            trace_bits(&lane),
            trace_bits(solo),
            "batch lane must match the scalar integration bit-for-bit"
        );
    }
}

/// Batch-width invariance: integrating the first `narrow` models as a small
/// batch must reproduce, bit-for-bit, the same lanes of the full batch.
fn assert_width_invariant<M>(models: Vec<M>, x0s: Vec<Vec<f64>>, narrow: usize, duration_s: f64)
where
    M: LaneSystem + Clone,
{
    let opts = shared_opts(&models, duration_s);
    let run = |ms: Vec<M>, xs: &[Vec<f64>]| -> Vec<Trace> {
        let packed = pack_lanes(xs);
        let mut batch = LaneBatch::new(ms);
        try_integrate_dde_batch(&mut batch, &packed, &packed, 0.0, duration_s, &opts)
            .expect("valid batch configuration")
            .into_iter()
            .map(|r| r.expect("lane diverged"))
            .collect()
    };
    let wide = run(models.clone(), &x0s);
    let thin = run(models[..narrow].to_vec(), &x0s[..narrow]);
    for (lane, (a, b)) in thin.iter().zip(&wide).enumerate() {
        assert_eq!(
            trace_bits(a),
            trace_bits(b),
            "lane {lane} must not depend on batch width"
        );
    }
}

// --- DCQCN -----------------------------------------------------------------

/// 16 DCQCN configs sharing flow count and derived step but sweeping the
/// RED profile (which the step derivation never reads).
fn dcqcn_models(b: usize) -> Vec<DcqcnFluid> {
    (0..b)
        .map(|i| {
            let mut p = DcqcnParams::default_40g();
            p.kmax_kb = 200.0 + 100.0 * i as f64;
            DcqcnFluid::new(p, 4)
        })
        .collect()
}

#[test]
fn dcqcn_batch_of_one_matches_simulate() {
    // The public entry points themselves: `simulate_batch` at B = 1 against
    // `simulate`, no shared scaffolding between the two call sites.
    let duration = 0.004;
    let mut scalar = DcqcnFluid::new(DcqcnParams::default_40g(), 4);
    let solo = scalar.simulate(duration);
    let batched = DcqcnFluid::simulate_batch(vec![scalar.clone()], duration)
        .pop()
        .unwrap()
        .expect("lane diverged");
    assert_eq!(trace_bits(&batched), trace_bits(&solo));
}

#[test]
fn dcqcn_batch_width_invariant_b4_vs_b16() {
    let duration = 0.003;
    let models = dcqcn_models(16);
    let wide = DcqcnFluid::simulate_batch(models.clone(), duration);
    let thin = DcqcnFluid::simulate_batch(models[..4].to_vec(), duration);
    for (lane, (a, b)) in thin.iter().zip(&wide).enumerate() {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            trace_bits(a),
            trace_bits(b),
            "DCQCN lane {lane} must not depend on batch width"
        );
    }
}

// --- TIMELY ----------------------------------------------------------------

fn timely_setup(b: usize) -> (Vec<TimelyFluid>, Vec<Vec<f64>>) {
    let models: Vec<TimelyFluid> = (0..b)
        .map(|_| TimelyFluid::new(TimelyParams::default_10g(), 4))
        .collect();
    let x0s = models
        .iter()
        .enumerate()
        .map(|(lane, m)| {
            let mut x0 = vec![0.0; m.state_dim()];
            // Distinct per-lane starting rates around the fair share.
            let r0 = m.params.capacity_pps() / m.n_flows as f64;
            for i in 0..m.n_flows {
                x0[m.rate_index(i)] = r0 * (0.8 + 0.05 * lane as f64);
            }
            x0
        })
        .collect();
    (models, x0s)
}

#[test]
fn timely_batch_lane_matches_scalar() {
    let (models, x0s) = timely_setup(3);
    assert_lanes_match_scalar(models, x0s, 0.002);
}

#[test]
fn timely_batch_width_invariant() {
    let (models, x0s) = timely_setup(16);
    assert_width_invariant(models, x0s, 4, 0.0015);
}

// --- patched TIMELY --------------------------------------------------------

fn patched_timely_setup(b: usize) -> (Vec<PatchedTimelyFluid>, Vec<Vec<f64>>) {
    let models: Vec<PatchedTimelyFluid> = (0..b)
        .map(|_| PatchedTimelyFluid::new(PatchedTimelyParams::default_10g(), 4))
        .collect();
    let x0s = models
        .iter()
        .enumerate()
        .map(|(lane, m)| {
            let mut x0 = vec![0.0; m.state_dim()];
            let r0 = m.params.base.capacity_pps() / m.n_flows as f64;
            for i in 0..m.n_flows {
                x0[m.rate_index(i)] = r0 * (0.85 + 0.04 * lane as f64);
            }
            x0
        })
        .collect();
    (models, x0s)
}

#[test]
fn patched_timely_batch_lane_matches_scalar() {
    let (models, x0s) = patched_timely_setup(3);
    assert_lanes_match_scalar(models, x0s, 0.002);
}

#[test]
fn patched_timely_batch_width_invariant() {
    let (models, x0s) = patched_timely_setup(16);
    assert_width_invariant(models, x0s, 4, 0.0015);
}

// --- DCQCN + PI ------------------------------------------------------------

fn dcqcn_pi_setup(b: usize) -> (Vec<DcqcnPiFluid>, Vec<Vec<f64>>) {
    let models: Vec<DcqcnPiFluid> = (0..b)
        .map(|i| {
            let params = DcqcnParams::default_40g();
            let gains = DcqcnPiFluid::default_gains(&params, 100.0 + 20.0 * i as f64);
            DcqcnPiFluid::new(params, gains, 4)
        })
        .collect();
    let x0s = models
        .iter()
        .map(|m| {
            let line = m.params.capacity_pps();
            let mut x0 = vec![0.0; m.state_dim()];
            for i in 0..m.n_flows {
                x0[m.rc_index(i)] = line;
                x0[m.rt_index(i)] = line;
                x0[m.alpha_index(i)] = 1.0;
            }
            x0
        })
        .collect();
    (models, x0s)
}

#[test]
fn dcqcn_pi_batch_lane_matches_scalar() {
    let (models, x0s) = dcqcn_pi_setup(3);
    assert_lanes_match_scalar(models, x0s, 0.002);
}

#[test]
fn dcqcn_pi_batch_width_invariant() {
    let (models, x0s) = dcqcn_pi_setup(16);
    assert_width_invariant(models, x0s, 4, 0.001);
}

// --- patched TIMELY + PI ---------------------------------------------------

fn patched_timely_pi_setup(b: usize) -> (Vec<PatchedTimelyPiFluid>, Vec<Vec<f64>>) {
    let models: Vec<PatchedTimelyPiFluid> = (0..b)
        .map(|_| {
            let params = PatchedTimelyParams::default_10g();
            let gains = PatchedTimelyPiFluid::default_gains(&params, 300.0);
            PatchedTimelyPiFluid::new(params, gains, 4)
        })
        .collect();
    let x0s = models
        .iter()
        .enumerate()
        .map(|(lane, m)| {
            let mut x0 = vec![0.0; m.state_dim()];
            let r0 = m.params.base.capacity_pps() / m.n_flows as f64;
            for i in 0..m.n_flows {
                x0[m.rate_index(i)] = r0 * (0.9 + 0.02 * lane as f64);
                x0[m.p_index(i)] = 0.3;
            }
            x0
        })
        .collect();
    (models, x0s)
}

#[test]
fn patched_timely_pi_batch_lane_matches_scalar() {
    let (models, x0s) = patched_timely_pi_setup(3);
    assert_lanes_match_scalar(models, x0s, 0.002);
}

#[test]
fn patched_timely_pi_batch_width_invariant() {
    let (models, x0s) = patched_timely_pi_setup(16);
    assert_width_invariant(models, x0s, 4, 0.001);
}

// --- divergence isolation --------------------------------------------------

/// A one-component exponential `x' = g·x`. Every protocol model projects
/// its state into a bounded box, so real lanes cannot trip the watchdog;
/// this synthetic lane is how the divergence contract is exercised (the CI
/// smoke uses the same `gain = 4000/s` convention).
#[derive(Clone)]
struct Exponential {
    gain_per_s: f64,
}

impl LaneSystem for Exponential {
    fn lane_dim(&self) -> usize {
        1
    }

    fn lane_rhs(
        &mut self,
        _t: f64,
        x: &[f64],
        lane: usize,
        stride: usize,
        _hist: &fluid::History,
        dxdt: &mut [f64],
    ) {
        let c = fluid::batch::lane_of(0, lane, stride);
        dxdt[c] = self.gain_per_s * x[c];
    }

    fn min_delay(&self) -> f64 {
        f64::INFINITY
    }
}

#[test]
fn poisoned_lane_fails_alone() {
    // A lane driven past the watchdog norm must come back as
    // `Err(Divergence)` while its batchmates' traces stay bit-identical to
    // a batch that never contained it.
    let duration = 0.01; // gain 4000/s crosses the 1e12 watchdog by ~6.9 ms
    let lanes = |gains: &[f64]| {
        let models: Vec<Exponential> = gains
            .iter()
            .map(|&g| Exponential { gain_per_s: g })
            .collect();
        let x0s: Vec<Vec<f64>> = gains.iter().map(|_| vec![1.0]).collect();
        let opts = DdeOptions {
            step: 1e-5,
            record_every: 1,
            history_horizon_s: 1e-3,
        };
        let packed = pack_lanes(&x0s);
        let mut batch = LaneBatch::new(models);
        try_integrate_dde_batch(&mut batch, &packed, &packed, 0.0, duration, &opts)
            .expect("valid batch configuration")
    };
    let mixed = lanes(&[-5.0, 4000.0, -9.0]);
    assert!(
        mixed[1].is_err(),
        "poisoned lane must report divergence, got Ok"
    );
    assert!(mixed[0].is_ok() && mixed[2].is_ok());
    let healthy = lanes(&[-5.0, -9.0]);
    assert_eq!(
        trace_bits(mixed[0].as_ref().unwrap()),
        trace_bits(healthy[0].as_ref().unwrap()),
        "healthy lane 0 must be unaffected by a diverging batchmate"
    );
    assert_eq!(
        trace_bits(mixed[2].as_ref().unwrap()),
        trace_bits(healthy[1].as_ref().unwrap()),
        "healthy lane 2 must be unaffected by a diverging batchmate"
    );
}
