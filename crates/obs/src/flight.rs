//! Causal flight recorder: a bounded ring of recent scheduling decisions.
//!
//! When a simulation dies with a `SimError` (a watchdog trip, a fault-plane
//! failure), counters and figures say *what* the end state was but not *how
//! the run got there*. The flight recorder is the post-mortem black box: a
//! bounded per-context ring of the most recent event-core operations, each
//! carrying a **scheduled-by back-pointer** to the entry whose dispatch
//! caused it, dumped as JSONL when an error site calls [`dump_on_error`].
//!
//! ## Causality
//!
//! `desim::event::EventQueue` records a `schedule` entry for every event it
//! accepts and a `dispatch` entry for every event it pops. While a dispatch
//! is being handled, its entry's sequence number is installed as the
//! thread-local *current cause* ([`set_cause`]); any `schedule` recorded
//! until the next dispatch back-points to it. Walking `by` links from the
//! final entries therefore reconstructs the causal chain that led to the
//! failure — which timer scheduled the packet whose delivery scheduled the
//! CNP that tripped the error.
//!
//! ## Determinism contract
//!
//! Entries are keyed `(ctx, seq)` exactly like [`crate::trace`] records:
//! contexts derive from `desim::par` job input indices, sequence numbers
//! count per context, timestamps are simulation time only, and back-pointers
//! reference sequence numbers *within the same context*. The export is
//! byte-identical across `SIM_THREADS` settings. The thread-local cause is
//! cleared around every parallel job ([`with_clean_cause`]) so causality
//! never leaks between jobs that happened to share a worker thread.
//!
//! Off by default: a disabled recording point costs one relaxed atomic load
//! and a branch.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default per-context ring capacity (entries). Post-mortems care about the
/// last few thousand decisions, not the whole run.
pub const DEFAULT_CAPACITY: usize = 1 << 12;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Sequence number of the dispatch entry currently being handled on
    /// this thread (within the thread's recording context), if any.
    static CAUSE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// One recorded flight entry.
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    t_s: f64,
    kind: &'static str,
    aux: f64,
    by: Option<u64>,
}

/// A bounded ring of entries for one context.
#[derive(Debug)]
struct ContextBuf {
    ring: VecDeque<Entry>,
    next_seq: u64,
    dropped: u64,
}

struct Sink {
    capacity: usize,
    contexts: BTreeMap<u64, ContextBuf>,
    dump_path: Option<PathBuf>,
    dump_reason: Option<String>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            capacity: DEFAULT_CAPACITY,
            contexts: BTreeMap::new(),
            dump_path: None,
            dump_reason: None,
        })
    })
}

fn with_sink<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    // Poisoning cannot corrupt the ring; recover rather than propagate.
    let mut guard = sink().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// Is the flight recorder enabled? One relaxed load on the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on with the default per-context ring capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Turn the recorder on with an explicit per-context ring capacity.
pub fn enable_with_capacity(capacity: usize) {
    with_sink(|s| s.capacity = capacity.max(1));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the recorder off (recordings become no-ops; the ring is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discard all recorded entries, per-context state and the dump path.
pub fn reset() {
    with_sink(|s| {
        s.contexts.clear();
        s.dump_path = None;
        s.dump_reason = None;
    });
}

/// Arm dump-on-error: when an error site calls [`dump_on_error`], the ring
/// is written as JSONL to `path`.
pub fn set_dump_path(path: PathBuf) {
    with_sink(|s| s.dump_path = Some(path));
}

/// The sequence number of the dispatch entry the current thread is handling
/// (the scheduled-by back-pointer new `schedule` entries should carry).
pub fn current_cause() -> Option<u64> {
    CAUSE.with(Cell::get)
}

/// Install `cause` as the current thread's dispatch-in-progress marker.
/// `desim::event::EventQueue::pop` calls this with each dispatch entry's
/// sequence number.
pub fn set_cause(cause: Option<u64>) {
    CAUSE.with(|c| c.set(cause));
}

/// Run `f` with no inherited cause, restoring the previous cause after.
/// `desim::par::par_map` wraps every job in this so causal chains never
/// cross job boundaries through worker-thread reuse.
pub fn with_clean_cause<R>(f: impl FnOnce() -> R) -> R {
    let prev = CAUSE.with(|c| c.replace(None));
    let out = f();
    CAUSE.with(|c| c.set(prev));
    out
}

/// Record an entry under the current context: `kind` labels the operation
/// (`schedule`, `dispatch`, `cancel`, `watchdog`, ...), `aux` carries one
/// kind-specific value (queue length, state norm), `by` the scheduled-by
/// back-pointer. Returns the entry's sequence number, or `None` when the
/// recorder is disabled.
#[inline]
pub fn record(t_s: f64, kind: &'static str, aux: f64, by: Option<u64>) -> Option<u64> {
    if !enabled() {
        return None;
    }
    Some(record_always(t_s, kind, aux, by))
}

fn record_always(t_s: f64, kind: &'static str, aux: f64, by: Option<u64>) -> u64 {
    let ctx = crate::trace::current_context();
    with_sink(|s| {
        let cap = s.capacity;
        let buf = s.contexts.entry(ctx).or_insert_with(|| ContextBuf {
            ring: VecDeque::with_capacity(cap.min(1024)),
            next_seq: 0,
            dropped: 0,
        });
        if buf.ring.len() == cap {
            buf.ring.pop_front();
            buf.dropped += 1;
        }
        let seq = buf.next_seq;
        buf.next_seq += 1;
        buf.ring.push_back(Entry {
            seq,
            t_s,
            kind,
            aux,
            by,
        });
        seq
    })
}

/// Total entries overwritten by ring wrap-around, summed over contexts.
pub fn dropped_entries() -> u64 {
    with_sink(|s| s.contexts.values().map(|c| c.dropped).sum())
}

/// Total entries currently buffered.
pub fn buffered_entries() -> u64 {
    with_sink(|s| s.contexts.values().map(|c| c.ring.len() as u64).sum())
}

/// Export the ring as JSONL ordered by `(ctx, seq)`:
///
/// ```json
/// {"ctx": 1, "seq": 42, "t_s": 0.00125, "kind": "schedule", "aux": 17.0, "by": 41}
/// ```
pub fn export_jsonl() -> String {
    use std::fmt::Write as _;
    with_sink(|s| {
        let mut out = String::new();
        for (ctx, buf) in &s.contexts {
            for e in &buf.ring {
                let _ = write!(out, "{{\"ctx\": {ctx}, \"seq\": {}, \"t_s\": ", e.seq);
                crate::push_f64(&mut out, e.t_s);
                out.push_str(", \"kind\": \"");
                out.push_str(e.kind);
                out.push_str("\", \"aux\": ");
                crate::push_f64(&mut out, e.aux);
                out.push_str(", \"by\": ");
                match e.by {
                    Some(by) => {
                        let _ = write!(out, "{by}");
                    }
                    None => out.push_str("null"),
                }
                out.push_str("}\n");
            }
        }
        out
    })
}

/// Dump the ring to the armed dump path, prefixed by a header line carrying
/// `reason`. Called by error sites (the fluid divergence watchdog, fault
/// drivers) at the moment a `SimError` is constructed. Returns the path
/// written, or `None` when the recorder is disabled, unarmed, or the write
/// failed (a post-mortem must never turn an error into a panic).
pub fn dump_on_error(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let path = with_sink(|s| s.dump_path.clone())?;
    let mut out = String::from("{\"kind\": \"flight_dump\", \"reason\": ");
    crate::push_str_lit(&mut out, reason);
    out.push_str("}\n");
    out.push_str(&export_jsonl());
    // simlint: allow(no-raw-fs-write) — post-mortem diagnostic sink: written while the process is already failing, best-effort by design, and obs sits below store so the atomic writer is out of reach
    std::fs::write(&path, out).ok()?;
    with_sink(|s| s.dump_reason = Some(reason.to_string()));
    Some(path)
}

/// The reason of the last successful [`dump_on_error`] since the recorder
/// was reset. Clean-exit writers check this so a post-mortem dump is never
/// overwritten by an end-of-run snapshot of the same path.
pub fn last_dump_reason() -> Option<String> {
    with_sink(|s| s.dump_reason.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Recorder state is process-global; tests that toggle it must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = serial();
        disable();
        reset();
        assert_eq!(record(1.0, "schedule", 0.0, None), None);
        assert_eq!(buffered_entries(), 0);
        assert!(dump_on_error("x").is_none());
    }

    #[test]
    fn causal_chain_back_pointers_export() {
        let _g = serial();
        reset();
        enable();
        let s0 = record(0.0, "schedule", 1.0, current_cause()).unwrap();
        let d0 = record(0.5, "dispatch", 1.0, Some(s0)).unwrap();
        set_cause(Some(d0));
        let s1 = record(0.5, "schedule", 2.0, current_cause()).unwrap();
        set_cause(None);
        disable();
        let out = export_jsonl();
        assert!(
            out.contains(&format!(
                "{{\"ctx\": 0, \"seq\": {s1}, \"t_s\": 0.5, \"kind\": \"schedule\", \
                 \"aux\": 2.0, \"by\": {d0}}}"
            )),
            "{out}"
        );
        assert!(out.contains("\"by\": null"), "root entry has no cause");
        reset();
    }

    #[test]
    fn with_clean_cause_isolates_and_restores() {
        let _g = serial();
        set_cause(Some(7));
        with_clean_cause(|| {
            assert_eq!(current_cause(), None, "jobs start causally clean");
            set_cause(Some(9));
        });
        assert_eq!(current_cause(), Some(7), "outer cause restored");
        set_cause(None);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let _g = serial();
        reset();
        enable_with_capacity(3);
        for i in 0..10 {
            record(i as f64, "schedule", 0.0, None);
        }
        disable();
        assert_eq!(buffered_entries(), 3);
        assert_eq!(dropped_entries(), 7);
        let out = export_jsonl();
        assert!(out.contains("\"seq\": 9"), "newest survives: {out}");
        assert!(!out.contains("\"seq\": 0,"), "oldest dropped: {out}");
        reset();
        with_sink(|s| s.capacity = DEFAULT_CAPACITY);
    }

    #[test]
    fn dump_on_error_writes_header_and_ring() {
        let _g = serial();
        reset();
        enable();
        record(0.25, "watchdog", 3.5e13, None);
        let dir = std::env::temp_dir().join("obs_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        set_dump_path(path.clone());
        let written = dump_on_error("numeric divergence in dde").unwrap();
        disable();
        assert_eq!(written, path);
        assert_eq!(
            last_dump_reason().as_deref(),
            Some("numeric divergence in dde"),
            "clean-exit writers must see that a post-mortem dump fired"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        let mut lines = body.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"kind\": \"flight_dump\", \"reason\": \"numeric divergence in dde\"}"
        );
        assert!(body.contains("\"kind\": \"watchdog\""), "{body}");
        std::fs::remove_file(&path).ok();
        reset();
    }
}
