//! Sim-time structured event tracing.
//!
//! Typed [`Event`]s are recorded into a **bounded ring buffer per context**
//! and exported as JSONL sorted by `(ctx, seq)`. The timestamp on every
//! record is *simulation* time in seconds — wall clock never appears — and a
//! context is single-threaded by construction (the main thread records under
//! context 0; `desim::par::par_map` jobs record under `1 + input index` via
//! [`with_context`]), so the export is byte-identical across `SIM_THREADS`
//! settings: same jobs, same per-job event order, same merge order.
//!
//! When a context's ring fills, the **oldest** events are overwritten (the
//! tail of a simulation is usually the interesting part); the number dropped
//! is reported per context by [`dropped_events`] and in the JSONL via each
//! record's monotonically increasing `seq` (a gap from 0 means truncation).

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default per-context ring capacity (events). Each event is a few tens of
/// bytes, so the worst case per context is a few MiB.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The recording context of the current thread; 0 = main/serial.
    static CONTEXT: Cell<u64> = const { Cell::new(0) };
}

/// A typed trace event. The variants are the event taxonomy from DESIGN.md
/// "Observability model"; all payload fields are copies, never references,
/// so recording can happen from any layer without lifetime coupling.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A packet was ECN-marked (egress or ingress CE mark).
    EcnMark {
        /// Flow the marked packet belongs to.
        flow: u64,
        /// Link whose queue triggered the mark.
        link: u64,
        /// Queue occupancy (bytes) at mark time.
        queue_bytes: u64,
    },
    /// The receiver emitted a CNP toward a flow's sender.
    CnpSent {
        /// Flow the CNP throttles.
        flow: u64,
    },
    /// A congestion-control update changed a flow's sending rate.
    RateUpdate {
        /// Flow whose rate changed.
        flow: u64,
        /// New rate (bits per second).
        rate_bps: f64,
    },
    /// PFC pause asserted on a link.
    PfcPause {
        /// Paused link.
        link: u64,
    },
    /// PFC pause released on a link.
    PfcResume {
        /// Resumed link.
        link: u64,
    },
    /// TIMELY (or Patched TIMELY) computed a normalized RTT gradient.
    GradientSample {
        /// The normalized gradient `rtt_diff / min_rtt`.
        gradient: f64,
        /// The raw RTT sample that produced it (seconds).
        rtt_s: f64,
    },
    /// One RK4 step of the DDE integrator completed.
    DdeStep {
        /// Step index within the integration (1-based).
        step: u64,
        /// State dimension.
        dim: u64,
    },
    /// `fluid::History` compacted its backing buffer (front-drain).
    HistoryCompaction {
        /// Rows physically dropped by the drain.
        dropped_rows: u64,
        /// Rows retained after the drain.
        retained_rows: u64,
    },
    /// Fault plane: a link went down (link-flap outage start).
    LinkDown {
        /// The downed link.
        link: u64,
    },
    /// Fault plane: a link came back up (link-flap outage end).
    LinkUp {
        /// The restored link.
        link: u64,
    },
    /// Fault plane: a loss window dropped a packet in flight.
    FaultDrop {
        /// Flow the dropped packet belonged to.
        flow: u64,
        /// Link the packet was traversing.
        link: u64,
        /// True if the dropped packet was a control packet (CNP).
        control: bool,
    },
    /// Fault plane: jitter/delay-spike added extra delivery delay.
    FaultDelay {
        /// Link the delayed packet was traversing.
        link: u64,
        /// Extra delay added (seconds).
        extra_s: f64,
    },
    /// Fault plane: a pause-storm tick forced a PFC-style pause on a link.
    FaultPause {
        /// The force-paused link.
        link: u64,
    },
    /// Fault plane: a windowed fault effect started or ended on a link.
    FaultWindow {
        /// The affected link.
        link: u64,
        /// Effect label: `data_loss`, `cnp_loss`, `jitter` or `delay_spike`.
        effect: &'static str,
        /// True at window start, false at window end.
        starting: bool,
    },
    /// Fault plane: a mid-run parameter perturbation was applied.
    ParamPerturbed {
        /// Perturbation target label (e.g. `red_kmax`, `cc_rate_increase`).
        param: &'static str,
        /// Multiplicative factor applied.
        scale: f64,
    },
    /// The fluid-core divergence watchdog tripped and aborted an
    /// integration with a structured error.
    WatchdogTrip {
        /// Failing step index (1-based).
        step: u64,
        /// Max-norm of the state at the trip (NaN serialized as `null`).
        state_norm: f64,
    },
}

impl Event {
    /// The `type` tag used in the JSONL export.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EcnMark { .. } => "EcnMark",
            Event::CnpSent { .. } => "CnpSent",
            Event::RateUpdate { .. } => "RateUpdate",
            Event::PfcPause { .. } => "PfcPause",
            Event::PfcResume { .. } => "PfcResume",
            Event::GradientSample { .. } => "GradientSample",
            Event::DdeStep { .. } => "DdeStep",
            Event::HistoryCompaction { .. } => "HistoryCompaction",
            Event::LinkDown { .. } => "LinkDown",
            Event::LinkUp { .. } => "LinkUp",
            Event::FaultDrop { .. } => "FaultDrop",
            Event::FaultDelay { .. } => "FaultDelay",
            Event::FaultPause { .. } => "FaultPause",
            Event::FaultWindow { .. } => "FaultWindow",
            Event::ParamPerturbed { .. } => "ParamPerturbed",
            Event::WatchdogTrip { .. } => "WatchdogTrip",
        }
    }

    /// Append the payload fields as `"key": value` JSON pairs.
    fn push_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Event::EcnMark {
                flow,
                link,
                queue_bytes,
            } => {
                let _ = write!(
                    out,
                    ", \"flow\": {flow}, \"link\": {link}, \"queue_bytes\": {queue_bytes}"
                );
            }
            Event::CnpSent { flow } => {
                let _ = write!(out, ", \"flow\": {flow}");
            }
            Event::RateUpdate { flow, rate_bps } => {
                let _ = write!(out, ", \"flow\": {flow}, \"rate_bps\": ");
                crate::push_f64(out, *rate_bps);
            }
            Event::PfcPause { link } => {
                let _ = write!(out, ", \"link\": {link}");
            }
            Event::PfcResume { link } => {
                let _ = write!(out, ", \"link\": {link}");
            }
            Event::GradientSample { gradient, rtt_s } => {
                out.push_str(", \"gradient\": ");
                crate::push_f64(out, *gradient);
                out.push_str(", \"rtt_s\": ");
                crate::push_f64(out, *rtt_s);
            }
            Event::DdeStep { step, dim } => {
                let _ = write!(out, ", \"step\": {step}, \"dim\": {dim}");
            }
            Event::HistoryCompaction {
                dropped_rows,
                retained_rows,
            } => {
                let _ = write!(
                    out,
                    ", \"dropped_rows\": {dropped_rows}, \"retained_rows\": {retained_rows}"
                );
            }
            Event::LinkDown { link } => {
                let _ = write!(out, ", \"link\": {link}");
            }
            Event::LinkUp { link } => {
                let _ = write!(out, ", \"link\": {link}");
            }
            Event::FaultDrop {
                flow,
                link,
                control,
            } => {
                let _ = write!(
                    out,
                    ", \"flow\": {flow}, \"link\": {link}, \"control\": {control}"
                );
            }
            Event::FaultDelay { link, extra_s } => {
                let _ = write!(out, ", \"link\": {link}, \"extra_s\": ");
                crate::push_f64(out, *extra_s);
            }
            Event::FaultPause { link } => {
                let _ = write!(out, ", \"link\": {link}");
            }
            Event::FaultWindow {
                link,
                effect,
                starting,
            } => {
                let _ = write!(
                    out,
                    ", \"link\": {link}, \"effect\": \"{effect}\", \"starting\": {starting}"
                );
            }
            Event::ParamPerturbed { param, scale } => {
                let _ = write!(out, ", \"param\": \"{param}\", \"scale\": ");
                crate::push_f64(out, *scale);
            }
            Event::WatchdogTrip { step, state_norm } => {
                let _ = write!(out, ", \"step\": {step}, \"state_norm\": ");
                crate::push_f64(out, *state_norm);
            }
        }
    }
}

/// One recorded event with its ordering key.
#[derive(Debug, Clone)]
struct Record {
    seq: u64,
    t_s: f64,
    event: Event,
}

/// A bounded ring of records for one context.
#[derive(Debug)]
struct ContextBuf {
    ring: VecDeque<Record>,
    next_seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct Sink {
    capacity: usize,
    contexts: BTreeMap<u64, ContextBuf>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            capacity: DEFAULT_CAPACITY,
            contexts: BTreeMap::new(),
        })
    })
}

fn with_sink<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    // Poisoning cannot corrupt the ring; recover rather than propagate.
    let mut guard = sink().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// Is tracing enabled? One relaxed load; this is the only cost a disabled
/// instrumentation point pays.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on with the default per-context ring capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Turn tracing on with an explicit per-context ring capacity (events).
pub fn enable_with_capacity(capacity: usize) {
    with_sink(|s| s.capacity = capacity.max(1));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off (recordings become no-ops; the buffer is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discard all recorded events and per-context sequence state.
pub fn reset() {
    with_sink(|s| s.contexts.clear());
}

/// Run `f` with the current thread's recording context set to `ctx`,
/// restoring the previous context afterwards. `desim::par::par_map` job
/// closures use `1 + input index` so per-job event streams merge in input
/// order regardless of which worker ran the job.
pub fn with_context<R>(ctx: u64, f: impl FnOnce() -> R) -> R {
    let prev = CONTEXT.with(|c| c.replace(ctx));
    let out = f();
    CONTEXT.with(|c| c.set(prev));
    out
}

/// The current thread's recording context id.
pub fn current_context() -> u64 {
    CONTEXT.with(|c| c.get())
}

/// Stride between sibling context namespaces when parallel fan-outs nest.
pub const CONTEXT_STRIDE: u64 = 1 << 16;

/// The deterministic recording context for parallel job `index` (0-based)
/// forked from `parent`. Top-level jobs (parent 0) get `1 + index`; nested
/// fan-outs land in disjoint ranges as long as every individual fan-out is
/// narrower than [`CONTEXT_STRIDE`] jobs. Used by `desim::par::par_map`,
/// which derives each job's context from its *input index*, so the merged
/// export is independent of worker count and scheduling.
pub fn child_context(parent: u64, index: u64) -> u64 {
    parent * CONTEXT_STRIDE + 1 + index
}

/// Record `event` at simulation time `t_s` (seconds) under the current
/// context. No-op when tracing is disabled.
#[inline]
pub fn record(t_s: f64, event: Event) {
    if !enabled() {
        return;
    }
    record_always(t_s, event);
}

/// The slow path of [`record`], out of line so the disabled branch stays
/// small at call sites.
fn record_always(t_s: f64, event: Event) {
    let ctx = current_context();
    with_sink(|s| {
        let cap = s.capacity;
        let buf = s.contexts.entry(ctx).or_insert_with(|| ContextBuf {
            ring: VecDeque::with_capacity(cap.min(1024)),
            next_seq: 0,
            dropped: 0,
        });
        if buf.ring.len() == cap {
            buf.ring.pop_front();
            buf.dropped += 1;
        }
        let seq = buf.next_seq;
        buf.next_seq += 1;
        buf.ring.push_back(Record { seq, t_s, event });
    });
}

/// Total events overwritten by ring wrap-around, summed over contexts.
pub fn dropped_events() -> u64 {
    with_sink(|s| s.contexts.values().map(|c| c.dropped).sum())
}

/// Total events currently buffered.
pub fn buffered_events() -> u64 {
    with_sink(|s| s.contexts.values().map(|c| c.ring.len() as u64).sum())
}

/// Export the buffered trace as JSONL: one record per line, ordered by
/// `(ctx, seq)`, each line of the form
/// `{"ctx": 0, "seq": 3, "t_s": 0.00125, "type": "EcnMark", ...payload}`.
pub fn export_jsonl() -> String {
    use std::fmt::Write as _;
    with_sink(|s| {
        let mut out = String::new();
        for (ctx, buf) in &s.contexts {
            for r in &buf.ring {
                let _ = write!(out, "{{\"ctx\": {ctx}, \"seq\": {}, \"t_s\": ", r.seq);
                crate::push_f64(&mut out, r.t_s);
                out.push_str(", \"type\": \"");
                out.push_str(r.event.kind());
                out.push('"');
                r.event.push_fields(&mut out);
                out.push_str("}\n");
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Trace state is process-global; tests that toggle it must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_record_is_a_no_op() {
        let _g = serial();
        disable();
        reset();
        record(1.0, Event::CnpSent { flow: 1 });
        assert_eq!(buffered_events(), 0);
        assert!(export_jsonl().is_empty());
    }

    #[test]
    fn records_export_in_ctx_seq_order_with_sim_time() {
        let _g = serial();
        reset();
        enable();
        record(0.5, Event::CnpSent { flow: 7 });
        with_context(2, || {
            record(
                0.25,
                Event::RateUpdate {
                    flow: 7,
                    rate_bps: 5e9,
                },
            )
        });
        record(
            0.75,
            Event::EcnMark {
                flow: 1,
                link: 3,
                queue_bytes: 42,
            },
        );
        disable();
        let out = export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // ctx 0 first (both its events, in record order), then ctx 2.
        assert_eq!(
            lines[0],
            "{\"ctx\": 0, \"seq\": 0, \"t_s\": 0.5, \"type\": \"CnpSent\", \"flow\": 7}"
        );
        assert_eq!(
            lines[1],
            "{\"ctx\": 0, \"seq\": 1, \"t_s\": 0.75, \"type\": \"EcnMark\", \
             \"flow\": 1, \"link\": 3, \"queue_bytes\": 42}"
        );
        assert_eq!(
            lines[2],
            "{\"ctx\": 2, \"seq\": 0, \"t_s\": 0.25, \"type\": \"RateUpdate\", \
             \"flow\": 7, \"rate_bps\": 5000000000.0}"
        );
        reset();
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let _g = serial();
        reset();
        enable_with_capacity(2);
        for i in 0..5u64 {
            record(i as f64, Event::CnpSent { flow: i });
        }
        disable();
        assert_eq!(buffered_events(), 2);
        assert_eq!(dropped_events(), 3);
        let out = export_jsonl();
        // The newest two survive, with their original seq numbers.
        assert!(out.contains("\"seq\": 3"), "{out}");
        assert!(out.contains("\"seq\": 4"), "{out}");
        assert!(!out.contains("\"seq\": 0,"), "{out}");
        reset();
        with_sink(|s| s.capacity = DEFAULT_CAPACITY);
    }

    #[test]
    fn child_contexts_are_disjoint_across_nesting() {
        // Two sibling top-level jobs with nested fan-outs of up to
        // CONTEXT_STRIDE-1 jobs never collide.
        let a = child_context(0, 0);
        let b = child_context(0, 1);
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_ne!(
            child_context(a, CONTEXT_STRIDE - 2),
            child_context(b, 0),
            "sibling namespaces must not overlap"
        );
        assert_eq!(child_context(a, 0), CONTEXT_STRIDE + 1);
    }

    #[test]
    fn context_nesting_restores() {
        let _g = serial();
        assert_eq!(current_context(), 0);
        with_context(5, || {
            assert_eq!(current_context(), 5);
            with_context(9, || assert_eq!(current_context(), 9));
            assert_eq!(current_context(), 5);
        });
        assert_eq!(current_context(), 0);
    }

    #[test]
    fn all_event_kinds_serialize() {
        let _g = serial();
        reset();
        enable();
        let events = [
            Event::EcnMark {
                flow: 0,
                link: 0,
                queue_bytes: 0,
            },
            Event::CnpSent { flow: 0 },
            Event::RateUpdate {
                flow: 0,
                rate_bps: 1.5,
            },
            Event::PfcPause { link: 2 },
            Event::PfcResume { link: 2 },
            Event::GradientSample {
                gradient: -0.25,
                rtt_s: 60e-6,
            },
            Event::DdeStep { step: 1, dim: 21 },
            Event::HistoryCompaction {
                dropped_rows: 10,
                retained_rows: 90,
            },
            Event::LinkDown { link: 3 },
            Event::LinkUp { link: 3 },
            Event::FaultDrop {
                flow: 1,
                link: 3,
                control: true,
            },
            Event::FaultDelay {
                link: 3,
                extra_s: 25e-6,
            },
            Event::FaultPause { link: 3 },
            Event::FaultWindow {
                link: 3,
                effect: "data_loss",
                starting: true,
            },
            Event::ParamPerturbed {
                param: "red_kmax",
                scale: 0.25,
            },
            Event::WatchdogTrip {
                step: 512,
                state_norm: 3.1e13,
            },
        ];
        for e in events.iter().cloned() {
            record(0.0, e);
        }
        disable();
        let out = export_jsonl();
        for e in &events {
            assert!(out.contains(e.kind()), "missing {}: {out}", e.kind());
        }
        // Every line is a JSON object with balanced braces.
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        reset();
    }
}
