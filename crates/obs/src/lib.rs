//! # obs — zero-cost, deterministic instrumentation
//!
//! The simulator's observability layer (DESIGN.md "Observability model"):
//!
//! * [`metrics`] — a process-global [`metrics::Registry`] of named counters,
//!   gauges and fixed-bucket histograms with a deterministic, name-sorted
//!   JSON snapshot;
//! * [`trace`] — sim-time structured event tracing: typed [`Event`]s
//!   recorded into a bounded per-context ring buffer and exported as JSONL
//!   keyed by *simulation* time only (never wall clock), so traces are
//!   byte-identical across `SIM_THREADS` settings;
//! * [`span`] — wall-clock span timers for bench-phase attribution
//!   (integrate / locate / compact / event-dispatch). This is the **only**
//!   module in the sim layer allowed to read the wall clock (simlint exempts
//!   `crates/obs/src/span.rs` from the `wall-clock` rule, exactly as
//!   `desim/src/par.rs` is exempt from `thread-spawn`);
//! * [`timeseries`] — windowed, downsampled time-series plus log-bucketed
//!   streaming histograms (HDR-style) so queue/rate trajectories and FCT
//!   percentiles at incast scale cost O(windows + buckets), not O(samples);
//! * [`flight`] — the causal flight recorder: a bounded per-context ring of
//!   recent event-core operations with scheduled-by back-pointers, dumped as
//!   JSONL when a `SimError` site calls [`flight::dump_on_error`].
//!
//! Everything is **off by default**. A disabled instrumentation point costs
//! one relaxed atomic load and a predictable branch — no locks, no
//! allocation, no clock reads — which keeps the overhead on the hot DDE and
//! packet paths under the 1% bench budget. Figure binaries enable the layer
//! via `--trace <path>` / `--metrics <path>` (see `bench::obs_cli`).
//!
//! ## Determinism contract
//!
//! * Trace events carry simulation time (`t_s`, seconds) and are ordered by
//!   `(context, seq)` where `seq` is the record order *within* a context and
//!   a context never spans threads — `desim::par::par_map` jobs each record
//!   under their own context id (input index), so the exported JSONL is
//!   independent of worker count and scheduling.
//! * Counters are commutative sums of per-event increments; their totals do
//!   not depend on thread interleaving.
//! * Gauges are last-write-wins and must only be set from deterministic
//!   (serial or per-context) code.
//! * Wall-clock readings never enter traces or metrics — spans live in a
//!   separate accumulator drained only by the bench harness.

#![deny(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use span::Phase;
pub use trace::Event;

use std::fmt::Write as _;

/// Append `x` to `out` in the workspace JSON convention: shortest
/// round-trip formatting with a forced `.0` for integral values, `null` for
/// non-finite values (matching `ecn_delay_core::json`).
pub(crate) fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let start = out.len();
        let _ = write!(out, "{x}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Append a JSON string literal (the instrumentation layer only uses
/// identifier-like names, but escape defensively).
pub(crate) fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_formatting_matches_core_json_convention() {
        let mut s = String::new();
        push_f64(&mut s, 1.0);
        assert_eq!(s, "1.0");
        s.clear();
        push_f64(&mut s, 0.25);
        assert_eq!(s, "0.25");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, 2.5e-7);
        assert_eq!(s, "0.00000025");
    }

    #[test]
    fn string_escaping() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
