//! Named counters, gauges and fixed-bucket histograms.
//!
//! The registry is process-global and off by default: every recording call
//! first checks a relaxed [`AtomicBool`], so disabled instrumentation costs
//! one load and a branch. When enabled, updates take a single global mutex —
//! acceptable because metrics-enabled runs are diagnostic, not benchmarked.
//!
//! Counter totals are commutative sums and therefore independent of thread
//! interleaving; the JSON snapshot sorts every section by name (`BTreeMap`),
//! so a metrics file is byte-identical across `SIM_THREADS` settings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metrics collection enabled? One relaxed load; inlined at call sites so
/// the disabled path is branch-predictable and lock-free.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metrics collection on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn metrics collection off (recordings become no-ops again).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// A fixed-bucket histogram: `counts[i]` counts observations `v` with
/// `bounds[i-1] < v <= bounds[i]` (first bucket: `v <= bounds[0]`); the
/// final slot counts overflow (`v > bounds.last()`) and non-finite values.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bucket bounds, strictly increasing; values equal to a bound
    /// fall in that bound's bucket (upper-inclusive, Prometheus-style).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// The bucket index `value` falls into (upper-inclusive bounds; the last
    /// index is the overflow bucket, which also absorbs NaN).
    pub fn bucket_index(bounds: &[f64], value: f64) -> usize {
        bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len())
    }

    fn observe(&mut self, value: f64) {
        let i = Self::bucket_index(&self.bounds, value);
        self.counts[i] += 1;
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold `other`'s counts into `self`. Merging is only meaningful when
    /// both histograms share the exact same bucket bounds (compared by bit
    /// pattern — merging across rounding-different bounds would silently
    /// misattribute counts); otherwise an error naming the mismatch is
    /// returned and `self` is left untouched.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        let same_bounds = self.bounds.len() == other.bounds.len()
            && self
                .bounds
                .iter()
                .zip(&other.bounds)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same_bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        Ok(())
    }
}

/// The metric store behind the global registry: name-sorted maps so the
/// snapshot is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    // Poisoning cannot corrupt a counter map; recover rather than propagate.
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// Add `delta` to the named counter (registered on first use). No-op when
/// metrics are disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| *r.counters.entry(name).or_insert(0) += delta);
}

/// Increment the named counter by one. No-op when metrics are disabled.
#[inline]
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Set the named gauge (last write wins; call only from deterministic
/// serial or per-context code). No-op when metrics are disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name, value);
    });
}

/// Record `value` into the named fixed-bucket histogram. The bucket bounds
/// are fixed by the first observation; later calls reuse the registered
/// bounds. No-op when metrics are disabled.
#[inline]
pub fn histogram_observe(name: &'static str, bounds: &'static [f64], value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    });
}

/// Read a counter's current value (0 if never touched). Works regardless of
/// the enabled flag — used by tests and the figure binaries' summaries.
pub fn counter_value(name: &str) -> u64 {
    with_registry(|r| r.counters.get(name).copied().unwrap_or(0))
}

/// Clear all registered metrics (the enabled flag is left untouched).
pub fn reset() {
    with_registry(|r| {
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
    });
}

/// Render the registry as a deterministic JSON document: three name-sorted
/// sections (`counters`, `gauges`, `histograms`), 2-space indentation.
pub fn snapshot_json() -> String {
    with_registry(|r| {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &r.counters {
            push_key(&mut out, &mut first, name);
            out.push_str(&v.to_string());
        }
        close_section(&mut out, first);
        out.push_str(",\n  \"gauges\": {");
        first = true;
        for (name, v) in &r.gauges {
            push_key(&mut out, &mut first, name);
            crate::push_f64(&mut out, *v);
        }
        close_section(&mut out, first);
        out.push_str(",\n  \"histograms\": {");
        first = true;
        for (name, h) in &r.histograms {
            push_key(&mut out, &mut first, name);
            out.push_str("{\"bounds\": [");
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                crate::push_f64(&mut out, *b);
            }
            out.push_str("], \"counts\": [");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str("], \"total\": ");
            out.push_str(&h.total().to_string());
            out.push('}');
        }
        close_section(&mut out, first);
        out.push_str("\n}\n");
        out
    })
}

fn push_key(out: &mut String, first: &mut bool, name: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n    ");
    crate::push_str_lit(out, name);
    out.push_str(": ");
}

fn close_section(out: &mut String, was_empty: bool) {
    if was_empty {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Metrics state is process-global; tests that toggle it must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = serial();
        disable();
        reset();
        counter_inc("test.noop");
        gauge_set("test.noop_gauge", 1.0);
        assert_eq!(counter_value("test.noop"), 0);
        assert!(!snapshot_json().contains("test.noop"));
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorts() {
        let _g = serial();
        reset();
        enable();
        counter_add("test.b", 2);
        counter_inc("test.a");
        counter_inc("test.b");
        gauge_set("test.g", 0.5);
        disable();
        assert_eq!(counter_value("test.a"), 1);
        assert_eq!(counter_value("test.b"), 3);
        let snap = snapshot_json();
        let a = snap.find("test.a").unwrap();
        let b = snap.find("test.b").unwrap();
        assert!(a < b, "sorted by name:\n{snap}");
        assert!(snap.contains("\"test.g\": 0.5"), "{snap}");
        reset();
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        // Satellite: bucket boundary assignment. Bounds [1, 10, 100]:
        //   bucket 0: v <= 1, bucket 1: 1 < v <= 10, bucket 2: 10 < v <= 100,
        //   bucket 3 (overflow): v > 100 and non-finite.
        const B: &[f64] = &[1.0, 10.0, 100.0];
        assert_eq!(Histogram::bucket_index(B, -5.0), 0);
        assert_eq!(Histogram::bucket_index(B, 1.0), 0, "boundary is inclusive");
        assert_eq!(Histogram::bucket_index(B, 1.0 + 1e-12), 1);
        assert_eq!(Histogram::bucket_index(B, 10.0), 1);
        assert_eq!(Histogram::bucket_index(B, 100.0), 2);
        assert_eq!(Histogram::bucket_index(B, 100.1), 3);
        assert_eq!(Histogram::bucket_index(B, f64::INFINITY), 3);
        assert_eq!(Histogram::bucket_index(B, f64::NAN), 3, "NaN -> overflow");
        assert_eq!(
            Histogram::bucket_index(&[], 7.0),
            0,
            "no bounds: overflow only"
        );
    }

    #[test]
    fn histogram_observe_counts_and_total() {
        let _g = serial();
        reset();
        enable();
        const B: &[f64] = &[1.0, 2.0];
        for v in [0.5, 1.0, 1.5, 2.0, 3.0] {
            histogram_observe("test.h", B, v);
        }
        disable();
        let snap = snapshot_json();
        assert!(
            snap.contains("\"bounds\": [1.0, 2.0], \"counts\": [2, 2, 1], \"total\": 5"),
            "{snap}"
        );
        reset();
    }

    #[test]
    fn histogram_merge_sums_counts_bucketwise() {
        const B: &[f64] = &[1.0, 2.0];
        let mut a = Histogram::new(B);
        let mut b = Histogram::new(B);
        a.observe(0.5);
        a.observe(1.5);
        b.observe(1.5);
        b.observe(3.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counts, vec![1, 2, 1]);
        assert_eq!(a.total(), 4);
        // The merged-from histogram is unchanged.
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        // Different length.
        let b = Histogram::new(&[1.0]);
        assert!(a.merge(&b).is_err());
        // Same length, bit-different bound.
        let c = Histogram::new(&[1.0, 2.0 + 1e-12]);
        let err = a.merge(&c).unwrap_err();
        assert!(err.contains("bounds mismatch"), "{err}");
        // A failed merge leaves the target untouched.
        assert_eq!(a.counts, vec![1, 0, 0]);
    }

    #[test]
    fn empty_snapshot_is_valid_shape() {
        let _g = serial();
        reset();
        let snap = snapshot_json();
        assert_eq!(
            snap,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
    }
}
