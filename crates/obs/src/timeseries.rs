//! Deterministic windowed time-series and streaming log-bucketed histograms.
//!
//! The trajectory layer of the telemetry model (DESIGN.md §8.8): where
//! [`crate::metrics`] records scalar totals and [`crate::trace`] records raw
//! events, this module records *dynamics* — per-link queue depth, arrival and
//! departure rates, ECN mark rates, pause state, per-flow sending rates —
//! without ever storing one point per event. Two collectors:
//!
//! * **windowed series** — each sample lands in a fixed-width simulation-time
//!   window keyed by `floor(t_s / window_s)`; per window only
//!   `(count, sum, min, max, last)` are kept, so a 10M-event run costs
//!   O(windows), not O(events);
//! * **log-bucketed streaming histograms** — HDR-style: a sample's bucket is
//!   the top bits of its `f64` representation (exponent plus
//!   [`SUB_BITS`] mantissa bits), pure integer math, ≤2.3 % relative bucket
//!   width. Quantiles cost O(buckets) regardless of sample count, which is
//!   what makes FCT percentiles affordable at 1024-flow incast scale.
//!
//! ## Determinism contract
//!
//! Everything is keyed by `(name, key, context)` where the context is the
//! same per-job recording context [`crate::trace`] uses (`desim::par`
//! derives it from the job's *input index*), so the JSONL export is sorted,
//! windowed in simulation time only, and byte-identical across
//! `SIM_THREADS` settings. Bucket assignment is bit-exact integer
//! arithmetic — no `log2` calls whose libm rounding could differ.
//!
//! Off by default: a disabled sampling point costs one relaxed atomic load
//! and a branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Mantissa bits that subdivide each power-of-two bucket: 32 sub-buckets
/// per octave, ≤2.3 % relative width.
pub const SUB_BITS: u32 = 5;
/// Right-shift turning a positive finite `f64`'s bits into its bucket id.
const BUCKET_SHIFT: u32 = 52 - SUB_BITS;
/// Windows retained per series before new *windows* (not samples into
/// existing windows) are dropped and counted.
pub const MAX_WINDOWS: usize = 1 << 16;

/// Is time-series recording enabled? One relaxed load on the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn time-series recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn time-series recording off (sampling becomes a no-op again).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// One aggregated window of a series.
#[derive(Debug, Clone, Copy)]
struct Agg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

/// A windowed series: fixed window width in simulation seconds, windows
/// keyed by index so late or out-of-order samples still land correctly.
#[derive(Debug)]
struct Series {
    window_s: f64,
    windows: BTreeMap<u64, Agg>,
    dropped: u64,
}

/// A streaming log-bucketed histogram over positive finite samples.
///
/// The bucket of a value is the top `11 + SUB_BITS` bits of its IEEE-754
/// representation; for positive floats, integer bit order equals numeric
/// order, so buckets are monotone in the value. Non-positive samples are
/// counted in a dedicated zero bucket (quantile value 0.0) and non-finite
/// samples in an overflow bucket ranked above everything.
#[derive(Debug, Default, Clone)]
pub struct LogHistogram {
    buckets: BTreeMap<u16, u64>,
    zero: u64,
    non_finite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: BTreeMap::new(),
            zero: 0,
            non_finite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket id of a positive finite value: exponent plus the top
    /// mantissa bits, taken straight from the bit pattern.
    pub fn bucket_of(value: f64) -> u16 {
        (value.to_bits() >> BUCKET_SHIFT) as u16
    }

    /// The lower edge of a bucket (the smallest value mapping into it).
    pub fn bucket_lo(bucket: u16) -> f64 {
        f64::from_bits((bucket as u64) << BUCKET_SHIFT)
    }

    /// Record one sample.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            self.non_finite += 1;
            return;
        }
        if value > 0.0 {
            *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += 1;
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        } else {
            self.zero += 1;
            self.min = self.min.min(0.0);
            self.max = self.max.max(0.0);
        }
    }

    /// Fold `other`'s samples into `self`. Log-bucketed histograms share a
    /// universal bucket layout, so merge never fails (unlike the
    /// fixed-bound [`crate::metrics::Histogram::merge`]).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.non_finite += other.non_finite;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded, including zero and non-finite ones.
    pub fn count(&self) -> u64 {
        self.zero + self.non_finite + self.buckets.values().sum::<u64>()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest-rank over the buckets,
    /// reporting a bucket's lower edge (≤2.3 % below the true value).
    /// Non-finite samples rank above every bucket and report as `None`
    /// only when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based; q = 0 means the first sample.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = self.zero;
        if rank <= cum {
            return Some(0.0);
        }
        for (&b, &n) in &self.buckets {
            cum += n;
            if rank <= cum {
                return Some(Self::bucket_lo(b));
            }
        }
        Some(f64::INFINITY)
    }

    /// Minimum finite sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.min.is_finite()).then_some(self.min)
    }

    /// Maximum finite sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.max.is_finite()).then_some(self.max)
    }
}

/// The recorder state: series and histograms keyed `(name, key, context)`
/// so the export iterates in sorted order.
#[derive(Default)]
struct State {
    series: BTreeMap<(&'static str, u64, u64), Series>,
    hists: BTreeMap<(&'static str, u64, u64), LogHistogram>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    // Poisoning cannot corrupt the aggregates; recover rather than propagate.
    let mut guard = state().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// Discard all recorded series and histograms (the enabled flag is kept).
pub fn reset() {
    with_state(|s| {
        s.series.clear();
        s.hists.clear();
    });
}

/// Record `value` at simulation time `t_s` into the series `(name, key)`
/// under the current trace context. `window_s` fixes the series' window
/// width on first touch (later calls reuse it). No-op when disabled.
#[inline]
pub fn sample(name: &'static str, key: u64, window_s: f64, t_s: f64, value: f64) {
    if !enabled() {
        return;
    }
    sample_always(name, key, window_s, t_s, value);
}

fn sample_always(name: &'static str, key: u64, window_s: f64, t_s: f64, value: f64) {
    let ctx = crate::trace::current_context();
    with_state(|s| {
        let series = s.series.entry((name, key, ctx)).or_insert_with(|| Series {
            window_s: if window_s > 0.0 { window_s } else { 0.0 },
            windows: BTreeMap::new(),
            dropped: 0,
        });
        let w = if series.window_s > 0.0 && t_s > 0.0 {
            (t_s / series.window_s) as u64
        } else {
            0
        };
        if let Some(agg) = series.windows.get_mut(&w) {
            agg.count += 1;
            agg.sum += value;
            agg.min = agg.min.min(value);
            agg.max = agg.max.max(value);
            agg.last = value;
        } else if series.windows.len() < MAX_WINDOWS {
            series.windows.insert(
                w,
                Agg {
                    count: 1,
                    sum: value,
                    min: value,
                    max: value,
                    last: value,
                },
            );
        } else {
            series.dropped += 1;
        }
    });
}

/// Record `value` into the log-bucketed histogram `(name, key)` under the
/// current trace context. No-op when disabled.
#[inline]
pub fn observe(name: &'static str, key: u64, value: f64) {
    if !enabled() {
        return;
    }
    observe_always(name, key, value);
}

fn observe_always(name: &'static str, key: u64, value: f64) {
    let ctx = crate::trace::current_context();
    with_state(|s| {
        s.hists
            .entry((name, key, ctx))
            .or_insert_with(LogHistogram::new)
            .observe(value);
    });
}

/// Total windows currently buffered across all series.
pub fn buffered_windows() -> u64 {
    with_state(|s| s.series.values().map(|x| x.windows.len() as u64).sum())
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(x) => crate::push_f64(out, x),
        None => out.push_str("null"),
    }
}

/// Export everything as JSONL, sorted by `(name, key, ctx)`. Three line
/// kinds (`series` header, `win` per window, `hist` per histogram), each
/// carrying its full identity so lines filter and diff independently:
///
/// ```json
/// {"kind": "series", "name": "...", "key": 0, "ctx": 1, "window_s": 0.001, "windows": 4, "dropped": 0}
/// {"kind": "win", "name": "...", "key": 0, "ctx": 1, "w": 17, "t_s": 0.017, "count": 3, "mean": 1.5, "min": 1.0, "max": 2.0, "last": 2.0}
/// {"kind": "hist", "name": "...", "key": 0, "ctx": 1, "count": 9, "zero": 0, "non_finite": 0, "min": ..., "max": ..., "p50": ..., "p90": ..., "p99": ..., "p999": ...}
/// ```
pub fn export_jsonl() -> String {
    use std::fmt::Write as _;
    with_state(|s| {
        let mut out = String::new();
        for (&(name, key, ctx), series) in &s.series {
            let _ = write!(out, "{{\"kind\": \"series\", \"name\": ");
            crate::push_str_lit(&mut out, name);
            let _ = write!(out, ", \"key\": {key}, \"ctx\": {ctx}, \"window_s\": ");
            crate::push_f64(&mut out, series.window_s);
            let _ = writeln!(
                out,
                ", \"windows\": {}, \"dropped\": {}}}",
                series.windows.len(),
                series.dropped
            );
            for (&w, agg) in &series.windows {
                let _ = write!(out, "{{\"kind\": \"win\", \"name\": ");
                crate::push_str_lit(&mut out, name);
                let _ = write!(
                    out,
                    ", \"key\": {key}, \"ctx\": {ctx}, \"w\": {w}, \"t_s\": "
                );
                crate::push_f64(&mut out, w as f64 * series.window_s);
                let _ = write!(out, ", \"count\": {}, \"mean\": ", agg.count);
                crate::push_f64(&mut out, agg.sum / agg.count as f64);
                out.push_str(", \"min\": ");
                crate::push_f64(&mut out, agg.min);
                out.push_str(", \"max\": ");
                crate::push_f64(&mut out, agg.max);
                out.push_str(", \"last\": ");
                crate::push_f64(&mut out, agg.last);
                out.push_str("}\n");
            }
        }
        for (&(name, key, ctx), h) in &s.hists {
            let _ = write!(out, "{{\"kind\": \"hist\", \"name\": ");
            crate::push_str_lit(&mut out, name);
            let _ = write!(
                out,
                ", \"key\": {key}, \"ctx\": {ctx}, \"count\": {}, \"zero\": {}, \"non_finite\": {}",
                h.count(),
                h.zero,
                h.non_finite
            );
            out.push_str(", \"min\": ");
            push_opt_f64(&mut out, h.min());
            out.push_str(", \"max\": ");
            push_opt_f64(&mut out, h.max());
            for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)] {
                let _ = write!(out, ", \"{label}\": ");
                push_opt_f64(&mut out, h.quantile(q));
            }
            out.push_str("}\n");
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Recorder state is process-global; tests that toggle it must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_sampling_is_a_no_op() {
        let _g = serial();
        disable();
        reset();
        sample("test.ts_noop", 0, 1.0, 0.5, 1.0);
        observe("test.ts_noop", 0, 1.0);
        assert_eq!(buffered_windows(), 0);
        assert!(export_jsonl().is_empty());
    }

    #[test]
    fn windows_aggregate_count_sum_min_max_last() {
        let _g = serial();
        reset();
        enable();
        // Window width 1 s: t = 0.1, 0.7 land in window 0; t = 1.2 in 1.
        sample("test.ts_a", 3, 1.0, 0.1, 10.0);
        sample("test.ts_a", 3, 1.0, 0.7, 2.0);
        sample("test.ts_a", 3, 1.0, 1.2, 5.0);
        disable();
        let out = export_jsonl();
        assert!(
            out.contains(
                "{\"kind\": \"win\", \"name\": \"test.ts_a\", \"key\": 3, \"ctx\": 0, \
                 \"w\": 0, \"t_s\": 0.0, \"count\": 2, \"mean\": 6.0, \"min\": 2.0, \
                 \"max\": 10.0, \"last\": 2.0}"
            ),
            "{out}"
        );
        assert!(
            out.contains("\"w\": 1, \"t_s\": 1.0, \"count\": 1"),
            "{out}"
        );
        assert!(
            out.contains("\"kind\": \"series\", \"name\": \"test.ts_a\""),
            "{out}"
        );
        reset();
    }

    #[test]
    fn log_histogram_buckets_are_monotone_and_tight() {
        // Positive-float bit order equals numeric order, so bucket ids are
        // monotone; sub-buckets split each octave linearly into 32, so the
        // widest bucket (at an octave's bottom edge) spans 1/32 = 3.125% of
        // its lower bound.
        let mut prev = 0u16;
        for i in 1..400 {
            let v = (i as f64) * 0.37;
            let b = LogHistogram::bucket_of(v);
            assert!(b >= prev, "buckets monotone in value");
            prev = b;
            let lo = LogHistogram::bucket_lo(b);
            let hi = LogHistogram::bucket_lo(b + 1);
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            assert!(
                hi / lo <= 1.0 + 1.0 / 32.0,
                "bucket wider than 1/32: {lo}..{hi}"
            );
        }
    }

    #[test]
    fn log_histogram_quantiles_approximate_exact_ranks() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.03, "p50 = {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.03, "p99 = {p99}");
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
        // q = 0 is the minimum's bucket; q = 1 the maximum's.
        assert!(h.quantile(0.0).unwrap() <= 1.0);
        assert!(h.quantile(1.0).unwrap() <= 1000.0);
    }

    #[test]
    fn log_histogram_zero_and_non_finite_are_separated() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(4.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(0.0), Some(0.0), "zero bucket ranks first");
        assert_eq!(
            h.quantile(1.0),
            Some(f64::INFINITY),
            "non-finite ranks last"
        );
        assert!(LogHistogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn log_histogram_merge_sums_everything() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [1.0, 2.0, 0.0] {
            a.observe(v);
        }
        for v in [2.0, 400.0] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), Some(400.0));
        assert_eq!(
            a.quantile(1.0),
            Some(LogHistogram::bucket_lo(LogHistogram::bucket_of(400.0)))
        );
    }

    #[test]
    fn window_cap_drops_new_windows_and_counts() {
        let _g = serial();
        reset();
        enable();
        for i in 0..(MAX_WINDOWS as u64 + 5) {
            sample("test.ts_cap", 0, 1.0, i as f64 + 0.5, 1.0);
        }
        disable();
        let out = export_jsonl();
        assert!(
            out.contains(&format!("\"windows\": {MAX_WINDOWS}, \"dropped\": 5")),
            "{out}"
        );
        reset();
    }

    #[test]
    fn export_lines_sorted_and_ctx_tagged() {
        let _g = serial();
        reset();
        enable();
        crate::trace::with_context(2, || sample("test.ts_b", 0, 1.0, 0.0, 1.0));
        sample("test.ts_b", 0, 1.0, 0.0, 1.0);
        observe("test.ts_hist", 1, 2.5);
        disable();
        let out = export_jsonl();
        let ctx0 = out.find("\"ctx\": 0").unwrap();
        let ctx2 = out.find("\"ctx\": 2").unwrap();
        assert!(ctx0 < ctx2, "sorted by (name, key, ctx):\n{out}");
        assert!(
            out.contains("\"kind\": \"hist\", \"name\": \"test.ts_hist\", \"key\": 1"),
            "{out}"
        );
        reset();
    }
}
