//! Wall-clock span timers for bench-phase attribution.
//!
//! This module is the **only** sim-layer surface allowed to read the wall
//! clock: simlint's `wall-clock` rule exempts `crates/obs/src/span.rs`
//! specifically (the analogue of `desim/src/par.rs` for `thread-spawn`).
//! Sim crates call [`enter`] with a [`Phase`]; the `Instant` reads happen
//! in here, and only when spans are explicitly enabled by the bench
//! harness. Wall-clock durations never flow into traces, metrics or any
//! simulation decision — they are drained by `bench::harness` into
//! `BENCH_*.json` rows only.
//!
//! Phases may nest (a `Locate` or `Compact` span runs inside an
//! `Integrate` span), so per-phase totals are not disjoint; they attribute
//! where time is spent, not a partition of it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The bench phases spans can attribute time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// DDE integration step loop (RK4 stages + projection).
    Integrate,
    /// History knot lookup (`History::locate` / `eval_all`).
    Locate,
    /// History buffer compaction (`History::trim_before` drain).
    Compact,
    /// Packet-engine event dispatch (`Engine::handle`).
    EventDispatch,
}

/// All phases, in display order.
pub const PHASES: [Phase; 4] = [
    Phase::Integrate,
    Phase::Locate,
    Phase::Compact,
    Phase::EventDispatch,
];

impl Phase {
    /// The name used in `BENCH_*.json` span rows.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Integrate => "integrate",
            Phase::Locate => "locate",
            Phase::Compact => "compact",
            Phase::EventDispatch => "event_dispatch",
        }
    }
}

/// Per-phase accumulators: (total nanoseconds, span count).
struct Slot {
    ns: AtomicU64,
    count: AtomicU64,
}

impl Slot {
    // Exists solely as a repeat-element initializer for the TOTALS array;
    // each array slot is a distinct atomic, never this const itself.
    #[allow(clippy::declare_interior_mutable_const)]
    const NEW: Slot = Slot {
        ns: AtomicU64::new(0),
        count: AtomicU64::new(0),
    };
}

static TOTALS: [Slot; PHASES.len()] = [Slot::NEW; PHASES.len()];

/// Are spans enabled? One relaxed load on the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span timing on (bench harness only).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span timing off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// An RAII phase timer; records elapsed wall time on drop. Inert (no clock
/// read at all) when spans are disabled.
#[must_use = "a span guard records on drop; binding it to _ discards the span immediately"]
pub struct SpanGuard {
    phase: Phase,
    start: Option<Instant>,
}

/// Start timing `phase`. The returned guard attributes the elapsed wall
/// time to the phase when it goes out of scope.
#[inline]
pub fn enter(phase: Phase) -> SpanGuard {
    SpanGuard {
        phase,
        start: enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            let slot = &TOTALS[self.phase as usize];
            slot.ns.fetch_add(ns, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A plain wall-clock stopwatch for result-side annotations (e.g. per-cell
/// `wall_ms` in `results/ext_incast.json`). Lives here because span.rs is
/// the one sim-layer file allowed to read the clock; callers elsewhere stay
/// clean under simlint's `wall-clock` rule. Readings must never feed back
/// into simulation state or byte-compared outputs — determinism gates scrub
/// or skip them.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start a stopwatch now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Drain the accumulators: returns `(phase, span count, total ns)` for every
/// phase with at least one span, resetting the totals to zero.
pub fn drain() -> Vec<(Phase, u64, u64)> {
    let mut out = Vec::new();
    for phase in PHASES {
        let slot = &TOTALS[phase as usize];
        let count = slot.count.swap(0, Ordering::Relaxed);
        let ns = slot.ns.swap(0, Ordering::Relaxed);
        if count > 0 {
            out.push((phase, count, ns));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Span state is process-global; tests that toggle it must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        disable();
        drain();
        {
            let _s = enter(Phase::Integrate);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn enabled_spans_accumulate_counts_and_time() {
        let _g = serial();
        drain();
        enable();
        for _ in 0..3 {
            let _s = enter(Phase::Locate);
        }
        {
            let _s = enter(Phase::Compact);
        }
        disable();
        let rows = drain();
        let locate = rows.iter().find(|r| r.0 == Phase::Locate).unwrap();
        assert_eq!(locate.1, 3);
        let compact = rows.iter().find(|r| r.0 == Phase::Compact).unwrap();
        assert_eq!(compact.1, 1);
        // Drain resets.
        assert!(drain().is_empty());
    }

    #[test]
    fn stopwatch_elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["integrate", "locate", "compact", "event_dispatch"]);
    }
}
