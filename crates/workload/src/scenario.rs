//! Scenario generation: the Figure 13 dumbbell workload.
//!
//! "The topology consists of 20 nodes — 10 senders and 10 receivers. All
//! traffic flows across the bottleneck link between the two switches […]
//! The traffic consists of long and short-lived flows, between pairs of
//! randomly selected sender and receiver nodes."

use crate::arrivals::PoissonArrivals;
use crate::flowsize::FlowSizeDist;
use desim::{SimRng, SimTime};

/// One generated flow (engine-agnostic description).
#[derive(Debug, Clone, Copy)]
pub struct FlowDescriptor {
    /// Index into the sender host list.
    pub sender_index: usize,
    /// Index into the receiver host list.
    pub receiver_index: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Start time.
    pub start: SimTime,
}

/// Configuration for the FCT case study.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of sender/receiver pairs (10 in Figure 13).
    pub n_pairs: usize,
    /// Load factor; 1.0 ≡ `base_rate_bps` of offered load.
    pub load_factor: f64,
    /// Offered load at factor 1.0 (8 Gbps in the paper).
    pub base_rate_bps: f64,
    /// Simulated horizon for flow arrivals (seconds).
    pub horizon_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_pairs: 10,
            load_factor: 0.8,
            base_rate_bps: 8e9,
            horizon_s: 1.0,
            seed: 1,
        }
    }
}

/// Generate the flow list: Poisson arrivals, sizes from `dist`, uniformly
/// random sender→receiver pairs.
pub fn generate_flows(
    cfg: &ScenarioConfig,
    dist: &FlowSizeDist,
    rng: &mut SimRng,
) -> Vec<FlowDescriptor> {
    let arrivals = PoissonArrivals::for_load(cfg.load_factor, cfg.base_rate_bps, dist.mean_bytes());
    let times = arrivals.times(cfg.horizon_s, rng);
    times
        .into_iter()
        .map(|start| FlowDescriptor {
            sender_index: rng.next_below(cfg.n_pairs as u64) as usize,
            receiver_index: rng.next_below(cfg.n_pairs as u64) as usize,
            size_bytes: dist.sample(rng),
            start,
        })
        .collect()
}

/// The realized offered load (bits/s) of a flow list over the horizon —
/// used by tests to confirm calibration.
pub fn offered_load_bps(flows: &[FlowDescriptor], horizon_s: f64) -> f64 {
    let bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
    bytes as f64 * 8.0 / horizon_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_close_to_target() {
        let cfg = ScenarioConfig {
            horizon_s: 20.0,
            load_factor: 0.8,
            ..Default::default()
        };
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(5);
        let flows = generate_flows(&cfg, &dist, &mut rng);
        let load = offered_load_bps(&flows, cfg.horizon_s);
        let target = 0.8 * 8e9;
        assert!(
            (load - target).abs() / target < 0.15,
            "offered {load:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn endpoints_in_range_and_spread() {
        let cfg = ScenarioConfig {
            horizon_s: 5.0,
            ..Default::default()
        };
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(6);
        let flows = generate_flows(&cfg, &dist, &mut rng);
        assert!(flows.len() > 100);
        let mut seen_senders = [false; 10];
        for f in &flows {
            assert!(f.sender_index < 10 && f.receiver_index < 10);
            seen_senders[f.sender_index] = true;
        }
        assert!(seen_senders.iter().all(|&s| s), "all senders used");
    }

    #[test]
    fn arrivals_sorted() {
        let cfg = ScenarioConfig::default();
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(7);
        let flows = generate_flows(&cfg, &dist, &mut rng);
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ScenarioConfig::default();
        let dist = FlowSizeDist::web_search();
        let a = generate_flows(&cfg, &dist, &mut SimRng::new(42));
        let b = generate_flows(&cfg, &dist, &mut SimRng::new(42));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.size_bytes, y.size_bytes);
            assert_eq!(x.start, y.start);
            assert_eq!(x.sender_index, y.sender_index);
        }
    }

    #[test]
    fn higher_load_more_flows() {
        let dist = FlowSizeDist::web_search();
        let lo = generate_flows(
            &ScenarioConfig {
                load_factor: 0.2,
                horizon_s: 10.0,
                ..Default::default()
            },
            &dist,
            &mut SimRng::new(1),
        );
        let hi = generate_flows(
            &ScenarioConfig {
                load_factor: 0.8,
                horizon_s: 10.0,
                ..Default::default()
            },
            &dist,
            &mut SimRng::new(1),
        );
        assert!(hi.len() > lo.len() * 3);
    }
}
