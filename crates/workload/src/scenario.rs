//! Scenario generation: the Figure 13 dumbbell workload.
//!
//! "The topology consists of 20 nodes — 10 senders and 10 receivers. All
//! traffic flows across the bottleneck link between the two switches […]
//! The traffic consists of long and short-lived flows, between pairs of
//! randomly selected sender and receiver nodes."

use crate::arrivals::PoissonArrivals;
use crate::flowsize::FlowSizeDist;
use desim::{SimRng, SimTime};
use faults::FaultSchedule;

/// One generated flow (engine-agnostic description).
#[derive(Debug, Clone, Copy)]
pub struct FlowDescriptor {
    /// Index into the sender host list.
    pub sender_index: usize,
    /// Index into the receiver host list.
    pub receiver_index: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Start time.
    pub start: SimTime,
}

/// Configuration for the FCT case study.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of sender/receiver pairs (10 in Figure 13).
    pub n_pairs: usize,
    /// Load factor; 1.0 ≡ `base_rate_bps` of offered load.
    pub load_factor: f64,
    /// Offered load at factor 1.0 (8 Gbps in the paper).
    pub base_rate_bps: f64,
    /// Simulated horizon for flow arrivals (seconds).
    pub horizon_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_pairs: 10,
            load_factor: 0.8,
            base_rate_bps: 8e9,
            horizon_s: 1.0,
            seed: 1,
        }
    }
}

/// Generate the flow list: Poisson arrivals, sizes from `dist`, uniformly
/// random sender→receiver pairs.
pub fn generate_flows(
    cfg: &ScenarioConfig,
    dist: &FlowSizeDist,
    rng: &mut SimRng,
) -> Vec<FlowDescriptor> {
    let arrivals = PoissonArrivals::for_load(cfg.load_factor, cfg.base_rate_bps, dist.mean_bytes());
    let times = arrivals.times(cfg.horizon_s, rng);
    times
        .into_iter()
        .map(|start| FlowDescriptor {
            sender_index: rng.next_below(cfg.n_pairs as u64) as usize,
            receiver_index: rng.next_below(cfg.n_pairs as u64) as usize,
            size_bytes: dist.sample(rng),
            start,
        })
        .collect()
}

/// Canned degradation modes a scenario can run under — the workload-level
/// hook into the [`faults`] plane. Each profile names one failure story
/// from the paper's operating regime (lost feedback, measurement noise,
/// PFC storms from a slow receiver, a routing detour) and compiles to a
/// seeded [`FaultSchedule`] via [`fault_schedule`]. Severities are fixed
/// per profile so a `(profile, seed)` pair is a complete, reproducible
/// description of the degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults: compiles to an empty schedule, which the engine treats
    /// as bit-identical to running with no schedule at all.
    Baseline,
    /// 2 % Bernoulli loss of data packets on the data link.
    DataLoss,
    /// 50 % Bernoulli loss of CNPs on the control (feedback) link — the
    /// congestion signal thins out while the queue keeps growing.
    CnpLoss,
    /// Exponential per-packet extra delay (mean 20 µs) on the data link —
    /// RTT measurement noise, the input delay-based schemes trust most.
    RttJitter,
    /// Periodic forced pauses (30 % duty at 1 ms period) on the data link,
    /// emulating PFC storms from a slow receiver.
    PauseStorm,
    /// Constant 150 µs extra one-way delay on the data link — a routing
    /// detour that shifts the RTT baseline without adding noise.
    DelaySpike,
}

impl FaultProfile {
    /// Every profile, baseline first — the row set of a degradation matrix.
    pub fn all() -> [FaultProfile; 6] {
        [
            FaultProfile::Baseline,
            FaultProfile::DataLoss,
            FaultProfile::CnpLoss,
            FaultProfile::RttJitter,
            FaultProfile::PauseStorm,
            FaultProfile::DelaySpike,
        ]
    }

    /// Stable label used in figure output and results JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultProfile::Baseline => "baseline",
            FaultProfile::DataLoss => "data-loss",
            FaultProfile::CnpLoss => "cnp-loss",
            FaultProfile::RttJitter => "rtt-jitter",
            FaultProfile::PauseStorm => "pause-storm",
            FaultProfile::DelaySpike => "delay-spike",
        }
    }
}

/// Compile a [`FaultProfile`] into a seeded [`FaultSchedule`] for a run of
/// `horizon_s` seconds. The fault window covers the middle 60 % of the
/// horizon (`[0.2·h, 0.8·h)`), leaving a clean ramp-up and a recovery tail
/// so before/during/after behaviour is all visible in one run.
///
/// `data_link` is the link carrying the flows' data packets (typically the
/// bottleneck); `ctrl_link` is the link carrying the feedback (CNP) path.
/// Only the [`FaultProfile::CnpLoss`] profile targets `ctrl_link`.
pub fn fault_schedule(
    profile: FaultProfile,
    seed: u64,
    data_link: usize,
    ctrl_link: usize,
    horizon_s: f64,
) -> FaultSchedule {
    let start = 0.2 * horizon_s;
    let dur = 0.6 * horizon_s;
    let s = FaultSchedule::new(seed);
    match profile {
        FaultProfile::Baseline => s,
        FaultProfile::DataLoss => s.packet_loss(start, data_link, 0.02, dur),
        FaultProfile::CnpLoss => s.cnp_loss(start, ctrl_link, 0.5, dur),
        FaultProfile::RttJitter => s.rtt_jitter(start, data_link, 20e-6, dur),
        FaultProfile::PauseStorm => s.pause_storm(start, data_link, 1e-3, 0.3, dur),
        FaultProfile::DelaySpike => s.delay_spike(start, data_link, 150e-6, dur),
    }
}

/// The realized offered load (bits/s) of a flow list over the horizon —
/// used by tests to confirm calibration.
pub fn offered_load_bps(flows: &[FlowDescriptor], horizon_s: f64) -> f64 {
    let bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
    bytes as f64 * 8.0 / horizon_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_close_to_target() {
        let cfg = ScenarioConfig {
            horizon_s: 20.0,
            load_factor: 0.8,
            ..Default::default()
        };
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(5);
        let flows = generate_flows(&cfg, &dist, &mut rng);
        let load = offered_load_bps(&flows, cfg.horizon_s);
        let target = 0.8 * 8e9;
        assert!(
            (load - target).abs() / target < 0.15,
            "offered {load:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn endpoints_in_range_and_spread() {
        let cfg = ScenarioConfig {
            horizon_s: 5.0,
            ..Default::default()
        };
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(6);
        let flows = generate_flows(&cfg, &dist, &mut rng);
        assert!(flows.len() > 100);
        let mut seen_senders = [false; 10];
        for f in &flows {
            assert!(f.sender_index < 10 && f.receiver_index < 10);
            seen_senders[f.sender_index] = true;
        }
        assert!(seen_senders.iter().all(|&s| s), "all senders used");
    }

    #[test]
    fn arrivals_sorted() {
        let cfg = ScenarioConfig::default();
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(7);
        let flows = generate_flows(&cfg, &dist, &mut rng);
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ScenarioConfig::default();
        let dist = FlowSizeDist::web_search();
        let a = generate_flows(&cfg, &dist, &mut SimRng::new(42));
        let b = generate_flows(&cfg, &dist, &mut SimRng::new(42));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.size_bytes, y.size_bytes);
            assert_eq!(x.start, y.start);
            assert_eq!(x.sender_index, y.sender_index);
        }
    }

    #[test]
    fn fault_profiles_compile_to_valid_schedules() {
        for profile in FaultProfile::all() {
            let s = fault_schedule(profile, 7, 9, 8, 0.1);
            assert!(
                s.validate(10).is_ok(),
                "profile {} must validate",
                profile.label()
            );
            if profile == FaultProfile::Baseline {
                assert!(s.is_empty(), "baseline is the empty schedule");
            } else {
                assert_eq!(s.len(), 1, "{} is a single windowed event", profile.label());
                // Window sits strictly inside the horizon: clean ramp-up
                // before, recovery tail after.
                let ev = &s.events[0];
                assert!(ev.at_s > 0.0 && ev.at_s < 0.1);
            }
        }
    }

    #[test]
    fn fault_schedules_are_deterministic_and_distinct() {
        let a = fault_schedule(FaultProfile::RttJitter, 7, 9, 8, 0.1);
        let b = fault_schedule(FaultProfile::RttJitter, 7, 9, 8, 0.1);
        assert_eq!(
            a, b,
            "same (profile, seed, links, horizon) -> same schedule"
        );
        let profiles = FaultProfile::all();
        for (i, &p) in profiles.iter().enumerate() {
            for &q in &profiles[i + 1..] {
                assert_ne!(
                    fault_schedule(p, 7, 9, 8, 0.1),
                    fault_schedule(q, 7, 9, 8, 0.1),
                    "{} vs {} must differ",
                    p.label(),
                    q.label()
                );
            }
        }
    }

    #[test]
    fn cnp_loss_targets_the_control_link() {
        let s = fault_schedule(FaultProfile::CnpLoss, 1, 9, 8, 0.1);
        assert_eq!(s.events[0].kind.link(), Some(8));
        let s = fault_schedule(FaultProfile::DataLoss, 1, 9, 8, 0.1);
        assert_eq!(s.events[0].kind.link(), Some(9));
    }

    #[test]
    fn higher_load_more_flows() {
        let dist = FlowSizeDist::web_search();
        let lo = generate_flows(
            &ScenarioConfig {
                load_factor: 0.2,
                horizon_s: 10.0,
                ..Default::default()
            },
            &dist,
            &mut SimRng::new(1),
        );
        let hi = generate_flows(
            &ScenarioConfig {
                load_factor: 0.8,
                horizon_s: 10.0,
                ..Default::default()
            },
            &dist,
            &mut SimRng::new(1),
        );
        assert!(hi.len() > lo.len() * 3);
    }
}
