//! Flow-completion-time statistics (Figures 14 and 15).

use desim::stats::Samples;

/// A completed flow for FCT accounting.
#[derive(Debug, Clone, Copy)]
pub struct FctSample {
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Completion time in seconds.
    pub fct_s: f64,
}

/// FCT statistics with the paper's small-flow cut (pFabric convention:
/// "we define small flows as flows that send fewer than 100KB").
#[derive(Debug, Clone)]
pub struct FctStats {
    /// The small-flow threshold in bytes (100 KB by default).
    pub small_threshold_bytes: u64,
    all: Vec<FctSample>,
}

impl Default for FctStats {
    fn default() -> Self {
        Self::new(100_000)
    }
}

impl FctStats {
    /// New collector with the given small-flow threshold.
    pub fn new(small_threshold_bytes: u64) -> Self {
        FctStats {
            small_threshold_bytes,
            all: Vec::new(),
        }
    }

    /// Record one completed flow.
    pub fn push(&mut self, size_bytes: u64, fct_s: f64) {
        assert!(fct_s >= 0.0 && fct_s.is_finite());
        self.all.push(FctSample { size_bytes, fct_s });
    }

    /// Number of completions recorded.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    fn small_samples(&self) -> Samples {
        let mut s = Samples::new();
        for r in &self.all {
            if r.size_bytes < self.small_threshold_bytes {
                s.push(r.fct_s);
            }
        }
        s
    }

    /// Median FCT of small flows (seconds).
    pub fn small_median(&self) -> Option<f64> {
        self.small_samples().median()
    }

    /// 90th-percentile FCT of small flows (seconds).
    pub fn small_p90(&self) -> Option<f64> {
        self.small_samples().quantile(0.9)
    }

    /// 99th-percentile FCT of small flows (seconds).
    pub fn small_p99(&self) -> Option<f64> {
        self.small_samples().quantile(0.99)
    }

    /// Number of small-flow completions.
    pub fn small_count(&self) -> usize {
        self.all
            .iter()
            .filter(|r| r.size_bytes < self.small_threshold_bytes)
            .count()
    }

    /// CDF of small-flow FCTs (Figure 15).
    pub fn small_cdf(&self) -> Vec<(f64, f64)> {
        self.small_samples().cdf()
    }

    /// Mean FCT over all flows.
    pub fn overall_mean(&self) -> Option<f64> {
        if self.all.is_empty() {
            return None;
        }
        Some(self.all.iter().map(|r| r.fct_s).sum::<f64>() / self.all.len() as f64)
    }

    /// Per-flow normalized slowdown statistics against an ideal transfer
    /// time `size·8/line_rate` — an extension metric beyond the paper.
    pub fn slowdowns(&self, line_rate_bps: f64) -> Samples {
        let mut s = Samples::new();
        for r in &self.all {
            let ideal = r.size_bytes as f64 * 8.0 / line_rate_bps;
            if ideal > 0.0 {
                s.push(r.fct_s / ideal);
            }
        }
        s
    }

    /// The raw records.
    pub fn records(&self) -> &[FctSample] {
        &self.all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_flow_filtering() {
        let mut s = FctStats::default();
        s.push(50_000, 1.0); // small
        s.push(200_000, 10.0); // big
        s.push(99_999, 3.0); // small
        s.push(100_000, 7.0); // not small (strictly fewer than 100 KB)
        assert_eq!(s.small_count(), 2);
        assert!((s.small_median().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn p90_of_uniform_ladder() {
        let mut s = FctStats::default();
        for k in 1..=100 {
            s.push(1_000, k as f64);
        }
        let p90 = s.small_p90().unwrap();
        assert!((p90 - 90.1).abs() < 0.5, "p90 {p90}");
    }

    #[test]
    fn cdf_shape() {
        let mut s = FctStats::default();
        for k in 1..=4 {
            s.push(1_000, k as f64);
        }
        let cdf = s.small_cdf();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[3], (4.0, 1.0));
    }

    #[test]
    fn slowdown_never_below_one_for_feasible_fcts() {
        let mut s = FctStats::default();
        s.push(1_000_000, 0.001); // 1 MB in 1 ms at 10 Gbps → slowdown 1.25
        let mut sl = s.slowdowns(10e9);
        assert!(sl.quantile(0.0).unwrap() > 1.0);
    }

    #[test]
    fn empty_stats() {
        let s = FctStats::default();
        assert!(s.is_empty());
        assert!(s.small_median().is_none());
        assert!(s.overall_mean().is_none());
    }
}
