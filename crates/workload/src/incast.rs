//! Incast generation: many synchronized senders converging on one receiver.
//!
//! The canonical datacenter stress pattern behind the paper's scale claims
//! (§5–6): a partition/aggregate fan-in where N senders fire a fixed-size
//! response at one aggregator within a tight window. The last-hop link is
//! instantly oversubscribed N:1, so the scenario exercises exactly the
//! machinery this repo models — PFC back-pressure, ECN marking depth, and
//! the congestion control's recovery tail.
//!
//! The generator is purely descriptive (it emits [`FlowDescriptor`]s over a
//! host index space) and fully deterministic: every choice — receiver,
//! sender order, per-flow stagger — derives from the config seed via
//! [`SimRng`], never from ambient randomness. Sender counts may exceed the
//! host count: flow `i` is sourced from the `i mod (hosts − 1)`-th entry of
//! a seeded permutation of the non-receiver hosts, so a 1024-sender incast
//! runs fine on a 128-host k=8 fat-tree (8 flows per host).

use crate::scenario::FlowDescriptor;
use desim::{SimRng, SimTime};

/// Configuration for one incast burst.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Number of flows converging on the receiver. May exceed the host
    /// count; hosts are then reused round-robin.
    pub n_senders: usize,
    /// Bytes each sender ships (the partition/aggregate response size).
    pub bytes_per_sender: u64,
    /// Burst epoch: earliest flow start (seconds).
    pub start_s: f64,
    /// Stagger window (seconds): each flow starts at `start_s + U[0, w)`,
    /// modelling request-fanout skew. `0.0` fires all flows at the epoch.
    pub stagger_s: f64,
    /// Seed for receiver choice, sender permutation, and stagger draws.
    pub seed: u64,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            n_senders: 32,
            bytes_per_sender: 64_000,
            start_s: 0.0,
            stagger_s: 10e-6,
            seed: 1,
        }
    }
}

/// The generated burst: a receiver index and the flows aimed at it.
///
/// Indices index a single host list (e.g. the hosts returned by
/// `Topology::fat_tree`); `receiver_index` on each [`FlowDescriptor`] always
/// equals [`IncastBurst::receiver`].
#[derive(Debug, Clone)]
pub struct IncastBurst {
    /// Host index every flow converges on.
    pub receiver: usize,
    /// The flows, in start-time order (ties broken by generation order).
    pub flows: Vec<FlowDescriptor>,
}

/// Generate an incast burst over `n_hosts` hosts.
///
/// # Panics
///
/// Panics if `n_hosts < 2` (an incast needs a receiver and at least one
/// distinct sender) or `n_senders == 0`.
pub fn generate_incast(cfg: &IncastConfig, n_hosts: usize) -> IncastBurst {
    assert!(n_hosts >= 2, "incast needs at least 2 hosts, got {n_hosts}");
    assert!(cfg.n_senders > 0, "incast needs at least one sender");
    let mut rng = SimRng::new(cfg.seed);
    let receiver = rng.next_below(n_hosts as u64) as usize;

    // Seeded Fisher–Yates permutation of the non-receiver hosts: sender
    // spread over the topology is uniform but reproducible.
    let mut pool: Vec<usize> = (0..n_hosts).filter(|&h| h != receiver).collect();
    for i in (1..pool.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        pool.swap(i, j);
    }

    let mut flows: Vec<FlowDescriptor> = (0..cfg.n_senders)
        .map(|i| {
            let jitter = if cfg.stagger_s > 0.0 {
                rng.next_f64() * cfg.stagger_s
            } else {
                0.0
            };
            FlowDescriptor {
                sender_index: pool[i % pool.len()],
                receiver_index: receiver,
                size_bytes: cfg.bytes_per_sender,
                start: SimTime::from_secs_f64(cfg.start_s + jitter),
            }
        })
        .collect();
    // Start-time order with a stable tie-break so downstream flow ids are
    // reproducible regardless of the stagger draw.
    flows.sort_by(|a, b| {
        a.start
            .cmp(&b.start)
            .then(a.sender_index.cmp(&b.sender_index))
    });
    IncastBurst { receiver, flows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = IncastConfig::default();
        let a = generate_incast(&cfg, 16);
        let b = generate_incast(&cfg, 16);
        assert_eq!(a.receiver, b.receiver);
        assert_eq!(a.flows.len(), b.flows.len());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x.sender_index, y.sender_index);
            assert_eq!(x.start, y.start);
        }
    }

    #[test]
    fn senders_never_equal_receiver_and_spread() {
        let cfg = IncastConfig {
            n_senders: 15,
            ..Default::default()
        };
        let burst = generate_incast(&cfg, 16);
        let mut seen = [false; 16];
        for f in &burst.flows {
            assert_ne!(f.sender_index, burst.receiver);
            assert_eq!(f.receiver_index, burst.receiver);
            assert!(f.sender_index < 16);
            seen[f.sender_index] = true;
        }
        // 15 flows over 15 candidate hosts: the permutation uses each once.
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn oversubscribed_sender_count_wraps_evenly() {
        // 1024 flows on 128 hosts: every non-receiver host sources
        // exactly 1024 / 127 or 1024 / 127 + 1 flows.
        let cfg = IncastConfig {
            n_senders: 1024,
            ..Default::default()
        };
        let burst = generate_incast(&cfg, 128);
        assert_eq!(burst.flows.len(), 1024);
        let mut counts = vec![0usize; 128];
        for f in &burst.flows {
            counts[f.sender_index] += 1;
        }
        assert_eq!(counts[burst.receiver], 0);
        for (h, &c) in counts.iter().enumerate() {
            if h != burst.receiver {
                assert!((8..=9).contains(&c), "host {h} sources {c} flows");
            }
        }
    }

    #[test]
    fn stagger_bounds_and_sorted() {
        let cfg = IncastConfig {
            n_senders: 64,
            start_s: 1e-3,
            stagger_s: 50e-6,
            ..Default::default()
        };
        let burst = generate_incast(&cfg, 32);
        for f in &burst.flows {
            let t = f.start.as_secs_f64();
            assert!((1e-3..1e-3 + 50e-6).contains(&t), "start {t} out of window");
        }
        for w in burst.flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn zero_stagger_is_synchronized() {
        let cfg = IncastConfig {
            n_senders: 8,
            stagger_s: 0.0,
            ..Default::default()
        };
        let burst = generate_incast(&cfg, 16);
        for f in &burst.flows {
            assert_eq!(f.start, SimTime::ZERO);
        }
    }
}
