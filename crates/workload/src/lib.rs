//! # workload — traffic generation and FCT metrics
//!
//! The paper's FCT case study (§5.1, Figures 13–16) uses "long and
//! short-lived flows, between pairs of randomly selected sender and receiver
//! nodes. The flow size distribution is derived from the traffic
//! distribution reported in \[2\] (DCTCP). The interarrival time of flows is
//! picked from an exponential distribution. The load on the bottleneck link
//! is varied by changing the mean of the distribution." This crate
//! implements exactly that generation model:
//!
//! * [`flowsize`] — empirical flow-size CDFs (the DCTCP web-search
//!   distribution, the data-mining distribution, and custom tables) with
//!   log-linear interpolation and exact mean computation;
//! * [`arrivals`] — Poisson arrival processes calibrated to a target load
//!   on a bottleneck link;
//! * [`incast`] — synchronized fan-in bursts (N senders → one receiver)
//!   for the datacenter-scale fat-tree scenarios;
//! * [`scenario`] — random sender/receiver pairing on the Figure 13
//!   dumbbell, flow-list generation, and canned [`FaultProfile`]s that
//!   compile to seeded `faults` schedules for degradation studies;
//! * [`fct`] — flow-completion-time statistics: the paper's median and
//!   90th-percentile small-flow metrics (small = < 100 KB, following
//!   pFabric) and full CDFs for Figure 15.

#![deny(missing_docs)]

pub mod arrivals;
pub mod fct;
pub mod flowsize;
pub mod incast;
pub mod scenario;

pub use arrivals::PoissonArrivals;
pub use fct::FctStats;
pub use flowsize::FlowSizeDist;
pub use incast::{generate_incast, IncastBurst, IncastConfig};
pub use scenario::{fault_schedule, generate_flows, FaultProfile, FlowDescriptor, ScenarioConfig};
