//! Poisson flow arrivals calibrated to a bottleneck load.
//!
//! "The interarrival time of flows is picked from an exponential
//! distribution. The load on the bottleneck link is varied by changing the
//! mean of the distribution" (§5.1). With mean flow size `S̄` bytes and a
//! target of `load × base_rate` bits/s on the bottleneck, the arrival rate
//! is `λ = load × base_rate / (8·S̄)` flows per second. The paper's load
//! factor 1 corresponds to 8 Gbps on the 10 Gbps bottleneck.

use desim::{SimRng, SimTime};

/// A Poisson arrival process.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean interarrival time in seconds.
    pub mean_interarrival_s: f64,
}

impl PoissonArrivals {
    /// Directly from a rate (flows/second).
    pub fn with_rate(lambda: f64) -> Self {
        assert!(lambda > 0.0);
        PoissonArrivals {
            mean_interarrival_s: 1.0 / lambda,
        }
    }

    /// Calibrated so that flows of mean size `mean_flow_bytes` produce
    /// `load_factor × base_rate_bps` bits/s of offered load. The paper's
    /// scaling: `base_rate_bps = 8 Gbps` on the 10 Gbps bottleneck, and
    /// "load factor of 1 corresponds to an average of 8 Gbps".
    pub fn for_load(load_factor: f64, base_rate_bps: f64, mean_flow_bytes: f64) -> Self {
        assert!(load_factor > 0.0 && base_rate_bps > 0.0 && mean_flow_bytes > 0.0);
        let lambda = load_factor * base_rate_bps / (8.0 * mean_flow_bytes);
        Self::with_rate(lambda)
    }

    /// The arrival rate in flows/second.
    pub fn rate_hz(&self) -> f64 {
        1.0 / self.mean_interarrival_s
    }

    /// Generate arrival times in `[0, horizon_s)`.
    pub fn times(&self, horizon_s: f64, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(self.mean_interarrival_s);
            if t >= horizon_s {
                break;
            }
            out.push(SimTime::from_secs_f64(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_calibration() {
        // load 1.0 on 8 Gbps with 1 MB flows → 1000 flows/s.
        let a = PoissonArrivals::for_load(1.0, 8e9, 1e6);
        assert!((a.rate_hz() - 1000.0).abs() < 1e-9);
        // Half load → half rate.
        let a2 = PoissonArrivals::for_load(0.5, 8e9, 1e6);
        assert!((a2.rate_hz() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_rate_matches() {
        let a = PoissonArrivals::with_rate(2_000.0);
        let mut rng = SimRng::new(3);
        let times = a.times(10.0, &mut rng);
        let rate = times.len() as f64 / 10.0;
        assert!(
            (rate - 2_000.0).abs() / 2_000.0 < 0.05,
            "empirical rate {rate}"
        );
    }

    #[test]
    fn times_sorted_within_horizon() {
        let a = PoissonArrivals::with_rate(500.0);
        let mut rng = SimRng::new(9);
        let times = a.times(2.0, &mut rng);
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(times.iter().all(|t| t.as_secs_f64() < 2.0));
    }

    #[test]
    fn interarrival_cv_is_one() {
        // Exponential interarrivals have coefficient of variation 1.
        let a = PoissonArrivals::with_rate(1_000.0);
        let mut rng = SimRng::new(21);
        let times = a.times(50.0, &mut rng);
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "CV {cv}");
    }
}
