//! Empirical flow-size distributions.
//!
//! The web-search distribution is the DCTCP \[2\] measurement as digitized in
//! the public pFabric/ProjecToR-era traffic generators; the data-mining
//! distribution comes from the same lineage. Sizes between knots are
//! interpolated log-linearly (flow sizes span five orders of magnitude, so
//! linear interpolation would skew small sizes).

use desim::SimRng;

/// An empirical CDF over flow sizes: `(size_bytes, cumulative_prob)` knots.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    knots: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Build from `(size_bytes, cumulative_probability)` knots. The knots
    /// must be strictly increasing in both coordinates and end at
    /// probability 1.
    pub fn from_cdf(knots: &[(f64, f64)]) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        for w in knots.windows(2) {
            assert!(
                w[1].0 > w[0].0 && w[1].1 >= w[0].1,
                "CDF knots must increase"
            );
        }
        // simlint: allow(panic) — knot count validated non-empty above
        let last = knots.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at probability 1");
        assert!(knots[0].0 > 0.0, "sizes must be positive");
        FlowSizeDist {
            knots: knots.to_vec(),
        }
    }

    /// The DCTCP web-search workload \[2\]: ~60 % of flows under 100 KB but
    /// >90 % of bytes from flows over 1 MB. Mean ≈ 1.1 MB.
    pub fn web_search() -> Self {
        Self::from_cdf(&[
            (6_000.0, 0.15),
            (13_000.0, 0.30),
            (19_000.0, 0.40),
            (33_000.0, 0.53),
            (53_000.0, 0.60),
            (133_000.0, 0.70),
            (667_000.0, 0.80),
            (1_333_000.0, 0.90),
            (3_333_000.0, 0.95),
            (6_667_000.0, 0.98),
            (20_000_000.0, 1.00),
        ])
    }

    /// The data-mining workload (pFabric): even heavier tail — >80 % of
    /// flows under 10 KB, the largest flows reach 1 GB.
    pub fn data_mining() -> Self {
        Self::from_cdf(&[
            (100.0, 0.10),
            (180.0, 0.20),
            (250.0, 0.30),
            (560.0, 0.40),
            (900.0, 0.50),
            (1_100.0, 0.60),
            (1_870.0, 0.70),
            (3_160.0, 0.80),
            (10_000.0, 0.90),
            (400_000.0, 0.95),
            (3_160_000.0, 0.98),
            (100_000_000.0, 0.999),
            (1_000_000_000.0, 1.00),
        ])
    }

    /// Sample one flow size in bytes (≥ 1).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        self.quantile(u).round().max(1.0) as u64
    }

    /// The size at cumulative probability `u` (log-linear interpolation).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.knots[0];
        if u <= first.1 {
            // Interpolate from a nominal minimum of 1 byte.
            let frac = u / first.1;
            return (frac * first.0.ln()).exp().max(1.0);
        }
        for w in self.knots.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return s1;
                }
                let frac = (u - p0) / (p1 - p0);
                return (s0.ln() + frac * (s1.ln() - s0.ln())).exp();
            }
        }
        // simlint: allow(panic) — knots validated non-empty at construction
        self.knots.last().unwrap().0
    }

    /// Exact mean of the interpolated distribution, by numerical quadrature
    /// over the quantile function (10k panels is plenty for calibration).
    pub fn mean_bytes(&self) -> f64 {
        let n = 10_000;
        let mut acc = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            acc += self.quantile(u);
        }
        acc / n as f64
    }

    /// Fraction of flows strictly smaller than `bytes`.
    pub fn fraction_below(&self, bytes: f64) -> f64 {
        // Invert by bisection on the quantile (monotone).
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.quantile(mid) < bytes {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_hits_knots() {
        let d = FlowSizeDist::web_search();
        assert!((d.quantile(0.15) - 6_000.0).abs() < 1.0);
        assert!((d.quantile(0.90) - 1_333_000.0).abs() < 1.0);
        assert!((d.quantile(1.0) - 20_000_000.0).abs() < 1.0);
    }

    #[test]
    fn quantile_monotone() {
        let d = FlowSizeDist::web_search();
        let mut prev = 0.0;
        for k in 0..=1000 {
            let q = d.quantile(k as f64 / 1000.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn web_search_mean_plausible() {
        // The DCTCP search distribution has mean around 1 MB.
        let mean = FlowSizeDist::web_search().mean_bytes();
        assert!(
            (0.5e6..2.5e6).contains(&mean),
            "web-search mean {mean:.0} out of expected range"
        );
    }

    #[test]
    fn web_search_small_flow_fraction() {
        // Roughly 60+ % of flows are "small" (< 100 KB) — this drives the
        // Figure 14 metric.
        let d = FlowSizeDist::web_search();
        let frac = d.fraction_below(100_000.0);
        assert!(
            (0.55..0.75).contains(&frac),
            "small-flow fraction {frac:.3}"
        );
    }

    #[test]
    fn sampling_matches_cdf() {
        let d = FlowSizeDist::web_search();
        let mut rng = SimRng::new(7);
        let n = 100_000;
        let below = (0..n).filter(|_| d.sample(&mut rng) < 33_000).count() as f64 / n as f64;
        // CDF at 33 KB is 0.53.
        assert!((below - 0.53).abs() < 0.01, "empirical {below}");
    }

    #[test]
    fn sample_mean_matches_quadrature() {
        let d = FlowSizeDist::web_search();
        let mut rng = SimRng::new(11);
        let n = 300_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let exact = d.mean_bytes();
        assert!(
            (emp - exact).abs() / exact < 0.05,
            "empirical {emp:.0} vs exact {exact:.0}"
        );
    }

    #[test]
    fn data_mining_heavier_tail() {
        let ws = FlowSizeDist::web_search();
        let dm = FlowSizeDist::data_mining();
        // Data mining has more tiny flows and a bigger max.
        assert!(dm.fraction_below(10_000.0) > ws.fraction_below(10_000.0));
        assert!(dm.quantile(1.0) > ws.quantile(1.0));
    }

    #[test]
    #[should_panic(expected = "CDF must end")]
    fn incomplete_cdf_rejected() {
        FlowSizeDist::from_cdf(&[(10.0, 0.5), (20.0, 0.9)]);
    }
}
