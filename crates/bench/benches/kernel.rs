//! Benchmarks for the discrete-event kernel: event-queue throughput under
//! FIFO, random and timer-heavy (cancel/re-arm) loads, wheel-specific
//! stress rows (cancellation churn, far-future cascades), and the
//! end-to-end `netsim/events_per_sec_*` scale probe measured on a fat-tree
//! incast.

use bench::harness::{bench, black_box, record_value, write_report};
use desim::{EventQueue, SimDuration, SimRng, SimTime};
use ecn_delay_core::experiments::ext_incast::report_digest;
use ecn_delay_core::scenarios::{fat_tree_incast, Protocol};
use netsim::EngineConfig;
use workload::IncastConfig;

fn main() {
    bench("event_queue/push_pop_fifo_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    bench("event_queue/push_pop_random_10k", || {
        let mut rng = SimRng::new(1);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    bench("event_queue/timer_rearm_10k", || {
        // The DCQCN pattern: schedule, cancel, re-schedule.
        let mut q = EventQueue::new();
        let mut pending = Vec::new();
        for i in 0..10_000u64 {
            if let Some(id) = pending.pop() {
                q.cancel(id);
            }
            pending.push(q.schedule(SimTime::from_nanos(i + 100), i));
            if i % 3 == 0 {
                q.pop();
            }
        }
        while q.pop().is_some() {}
    });

    bench("event_queue/wheel_cancel_heavy_10k", || {
        // Half the scheduled events die before firing — the incast pattern
        // where per-flow timeouts are cancelled by earlier completions.
        // Exercises the slot-local lazy unlink instead of tombstone sets.
        let mut rng = SimRng::new(3);
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(10_000);
        for i in 0..10_000u64 {
            ids.push(q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i));
        }
        for id in ids.iter().step_by(2) {
            q.cancel(*id);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    bench("event_queue/wheel_far_future_10k", || {
        // Timestamps spread over ~70 s force entries into the upper wheel
        // levels and make every pop window cascade batches down — the
        // worst case for the hierarchical layout (the heap was insensitive
        // to time magnitude, the wheel pays per level crossed).
        let mut rng = SimRng::new(5);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(rng.next_below(1 << 36)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    // End-to-end scale probe: a 256:1 incast on a k=4 fat-tree, the CI
    // smoke scenario. The run is deterministic, so `events` is identical
    // every iteration and the events/sec rate follows from the median
    // wall-clock of the measured runs.
    let incast = IncastConfig {
        n_senders: 256,
        bytes_per_sender: 16_000,
        start_s: 0.0,
        stagger_s: 10e-6,
        seed: 1,
    };
    let run_incast = || {
        let mut cfg = EngineConfig::default();
        cfg.rate_trace_window = None;
        let (mut eng, _bottleneck) = fat_tree_incast(
            Protocol::Dcqcn,
            4,
            &incast,
            10e9,
            SimDuration::from_micros(1),
            cfg,
        );
        eng.run(SimTime::from_millis(30))
    };
    let baseline = run_incast();
    let rec = bench("netsim/incast_k4_n256_dcqcn", || {
        let report = run_incast();
        debug_assert_eq!(report_digest(&report), report_digest(&baseline));
        black_box(report.events_processed)
    });
    let events = baseline.events_processed;
    record_value(
        "netsim/events_per_sec_incast_k4_n256",
        u128::from(events) * 1_000_000_000 / rec.median_ns.max(1),
        events as usize,
    );

    bench("rng_next_f64_1k", || {
        let mut rng = SimRng::new(7);
        let mut acc = 0.0;
        for _ in 0..1_000 {
            acc += rng.next_f64();
        }
        black_box(acc)
    });

    bench("par_map_overhead_64jobs", || {
        black_box(desim::par::par_map((0u64..64).collect(), |i| i * i).len())
    });

    // Store fast path: open + keyed hit lookup, the per-cell cost a resumed
    // sweep pays for every already-computed cell.
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let root = std::env::temp_dir().join(format!(
            "bench_store_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let st = store::Store::open(&root).expect("open bench store");
        let key = st.key("bench/kernel", "{\"cell\": 1}").expect("key");
        st.put(&key, &[0xa5u8; 4096]).expect("seed record");
        bench("store/open_hit_lookup_4k", || {
            let st = store::Store::open(&root).expect("open");
            let key = st.key("bench/kernel", "{\"cell\": 1}").expect("key");
            black_box(st.get(&key).map(|b| b.len()))
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    write_report("BENCH_kernel.json");
}
