//! Benchmarks for the discrete-event kernel: event-queue throughput under
//! FIFO, random and timer-heavy (cancel/re-arm) loads.

use bench::harness::{bench, black_box, write_report};
use desim::{EventQueue, SimRng, SimTime};

fn main() {
    bench("event_queue/push_pop_fifo_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    bench("event_queue/push_pop_random_10k", || {
        let mut rng = SimRng::new(1);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    bench("event_queue/timer_rearm_10k", || {
        // The DCQCN pattern: schedule, cancel, re-schedule.
        let mut q = EventQueue::new();
        let mut pending = Vec::new();
        for i in 0..10_000u64 {
            if let Some(id) = pending.pop() {
                q.cancel(id);
            }
            pending.push(q.schedule(SimTime::from_nanos(i + 100), i));
            if i % 3 == 0 {
                q.pop();
            }
        }
        while q.pop().is_some() {}
    });

    bench("rng_next_f64_1k", || {
        let mut rng = SimRng::new(7);
        let mut acc = 0.0;
        for _ in 0..1_000 {
            acc += rng.next_f64();
        }
        black_box(acc)
    });

    bench("par_map_overhead_64jobs", || {
        black_box(desim::par::par_map((0u64..64).collect(), |i| i * i).len())
    });

    write_report("BENCH_kernel.json");
}
