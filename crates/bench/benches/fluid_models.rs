//! Benchmarks for the fluid models: DDE integration speed of the DCQCN and
//! patched-TIMELY systems, fixed-point solving, and phase-margin
//! computation (the inner loops of Figures 3 and 11).

use bench::harness::{bench, black_box, record_spans, record_value, write_report};
use control::JacobianCache;
use ecn_delay_core::experiments::fig3;
use models::dcqcn::{DcqcnFluid, DcqcnParams};
use models::patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};

fn main() {
    {
        let m = DcqcnFluid::new(DcqcnParams::default_40g(), 10);
        bench("dcqcn_fixed_point", || black_box(m.fixed_point().p_star));
    }

    {
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let m = DcqcnFluid::new(p, 10);
        bench("dcqcn_phase_margin_n10", || {
            black_box(m.margin_report().phase_margin_deg)
        });
    }

    bench("dcqcn_dde_integrate_2flows_10ms", || {
        let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 2);
        black_box(m.simulate(0.01).len())
    });

    bench("patched_timely_dde_integrate_2flows_10ms", || {
        let mut m = PatchedTimelyFluid::new(PatchedTimelyParams::default_10g(), 2);
        black_box(m.simulate(0.01).len())
    });

    {
        let m = PatchedTimelyFluid::new(PatchedTimelyParams::default_10g(), 16);
        bench("patched_timely_phase_margin_n16", || {
            black_box(m.margin_report().phase_margin_deg)
        });
    }

    // The N-flow hot path the History flat buffer targets: one eval_all per
    // delayed time across 31 state components.
    bench("dcqcn_dde_integrate_10flows_10ms", || {
        let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 10);
        black_box(m.simulate(0.01).len())
    });

    // Batched lockstep integration: 16 DCQCN configurations (a RED-profile
    // sweep) advance as lanes of one SoA state block. The comparison row is
    // 16 × `dcqcn_dde_integrate_10flows_10ms`; the batch target is ≥3× that.
    {
        let batch_models = || -> Vec<DcqcnFluid> {
            (0..16)
                .map(|i| {
                    let mut p = DcqcnParams::default_40g();
                    p.kmax_kb = 200.0 + 50.0 * f64::from(i);
                    DcqcnFluid::new(p, 10)
                })
                .collect()
        };
        let rec = bench("dcqcn_dde_integrate_batch16_10ms", || {
            black_box(DcqcnFluid::simulate_batch(batch_models(), 0.01).len())
        });
        // Derived throughput row: lane-steps per wall-clock second (16 lanes
        // × the lockstep step count), from the median batch time.
        let params = DcqcnParams::default_40g();
        let step = (params.feedback_delay_s() / 4.0).min(1e-6);
        let lane_steps = (0.01 / step).ceil() as u128 * 16;
        record_value(
            "fluid/lane_steps_per_sec_batch16",
            lane_steps * 1_000_000_000 / rec.median_ns.max(1),
            16,
        );
    }

    // The margin-grid hot path with the cross-grid-point Jacobian cache: one
    // cache serves a whole delay sweep at fixed N (the fig3 panel-(a)
    // grouping), so only the first point pays the central-difference cost.
    bench("margin_grid_jacobian_cache", || {
        let mut cache: JacobianCache<models::dcqcn::DcqcnLinParts> = JacobianCache::new(0.0, 64);
        let mut stable = 0usize;
        for &d in &[4.0, 20.0, 50.0, 85.0, 100.0] {
            let mut p = DcqcnParams::default_40g();
            p.feedback_delay_us = d;
            let m = DcqcnFluid::new(p, 10);
            stable += usize::from(m.margin_report_cached(&mut cache).is_stable());
        }
        black_box(stable)
    });

    // Sweep-level benchmark: the Figure 3 margin grid (reduced) through the
    // deterministic parallel executor, as run by CI.
    let quick_cfg = || fig3::Fig3Config {
        flow_counts: vec![2, 10, 64],
        delays_us: vec![4.0, 85.0],
        r_ai_mbps: vec![10.0],
        kmax_kb: vec![200.0],
        panel_bc_delay_us: 85.0,
    };
    bench("fig3_margin_grid_quick", || {
        black_box(fig3::run(&quick_cfg()).by_delay.len())
    });

    // Observability overhead guard: the two benches above repeated with the
    // full obs layer recording (metrics + trace). The driver compares these
    // against their plain counterparts; the *plain* runs above double as the
    // "disabled ≤ 1%" check against the pre-obs baseline in
    // BENCH_fluid.json, since instrumentation is compiled in but off there.
    obs::metrics::reset();
    obs::metrics::enable();
    obs::trace::reset();
    obs::trace::enable();
    bench("dcqcn_dde_integrate_10flows_10ms/obs_on", || {
        obs::trace::reset();
        let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 10);
        black_box(m.simulate(0.01).len())
    });
    bench("fig3_margin_grid_quick/obs_on", || {
        obs::trace::reset();
        black_box(fig3::run(&quick_cfg()).by_delay.len())
    });
    obs::trace::disable();
    obs::trace::reset();
    obs::metrics::disable();
    obs::metrics::reset();

    // Wall-clock phase attribution: rerun the 10-flow DDE with span timers
    // on and splice the per-phase totals into the report.
    obs::span::enable();
    {
        let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 10);
        black_box(m.simulate(0.01).len());
    }
    obs::span::disable();
    record_spans("dcqcn_dde_integrate_10flows_10ms");

    write_report("BENCH_fluid.json");
}
