//! Criterion benchmarks for the fluid models: DDE integration speed of the
//! DCQCN and patched-TIMELY systems, fixed-point solving, and phase-margin
//! computation (the inner loops of Figures 3 and 11).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use models::dcqcn::{DcqcnFluid, DcqcnParams};
use models::patched_timely::{PatchedTimelyFluid, PatchedTimelyParams};

fn bench_fluid(c: &mut Criterion) {
    c.bench_function("dcqcn_fixed_point", |b| {
        let m = DcqcnFluid::new(DcqcnParams::default_40g(), 10);
        b.iter(|| black_box(m.fixed_point().p_star))
    });

    c.bench_function("dcqcn_phase_margin_n10", |b| {
        let mut p = DcqcnParams::default_40g();
        p.feedback_delay_us = 85.0;
        let m = DcqcnFluid::new(p, 10);
        b.iter(|| black_box(m.margin_report().phase_margin_deg))
    });

    c.bench_function("dcqcn_dde_integrate_2flows_10ms", |b| {
        b.iter(|| {
            let mut m = DcqcnFluid::new(DcqcnParams::default_40g(), 2);
            black_box(m.simulate(0.01).len())
        })
    });

    c.bench_function("patched_timely_dde_integrate_2flows_10ms", |b| {
        b.iter(|| {
            let mut m = PatchedTimelyFluid::new(PatchedTimelyParams::default_10g(), 2);
            black_box(m.simulate(0.01).len())
        })
    });

    c.bench_function("patched_timely_phase_margin_n16", |b| {
        let m = PatchedTimelyFluid::new(PatchedTimelyParams::default_10g(), 16);
        b.iter(|| black_box(m.margin_report().phase_margin_deg))
    });
}

criterion_group!(benches, bench_fluid);
criterion_main!(benches);
