//! Benchmarks for the packet-level simulator: events/second on the
//! validation topology with each protocol (the inner loop of the FCT
//! experiments), plus the fault plane's cost — an installed-but-empty
//! schedule must stay within noise of the no-schedule baseline, and an
//! active loss+jitter schedule shows the price of injection itself.

use bench::harness::{bench, black_box, write_report};
use desim::{SimDuration, SimTime};
use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
use faults::FaultSchedule;
use netsim::EngineConfig;

fn main() {
    let run_cfg = |proto: Protocol, n: usize, dur_ms: u64, cfg: EngineConfig| {
        let (mut eng, _b) =
            single_switch_longlived(proto, n, 10e9, SimDuration::from_micros(1), cfg);
        let report = eng.run(SimTime::from_millis(dur_ms));
        report.data_packets
    };
    let run =
        |proto: Protocol, n: usize, dur_ms: u64| run_cfg(proto, n, dur_ms, EngineConfig::default());

    bench("dcqcn_4flows_5ms_10g", || {
        black_box(run(Protocol::Dcqcn, 4, 5))
    });
    bench("timely_4flows_5ms_10g", || {
        black_box(run(Protocol::Timely, 4, 5))
    });
    bench("patched_timely_4flows_5ms_10g", || {
        black_box(run(Protocol::PatchedTimely, 4, 5))
    });

    // Zero-fault overhead: an installed empty schedule takes the fault
    // plane's fast path (no per-delivery work beyond one bool check), so
    // this row must track dcqcn_4flows_5ms_10g within noise.
    bench("dcqcn_4flows_5ms_faults_zero", || {
        let mut cfg = EngineConfig::default();
        cfg.faults = Some(FaultSchedule::new(7));
        black_box(run_cfg(Protocol::Dcqcn, 4, 5, cfg))
    });
    // Active faults: a 2 % loss window plus RTT jitter covering most of the
    // run — per-delivery coin flips and extra-delay sampling engaged.
    bench("dcqcn_4flows_5ms_faults_active", || {
        let mut cfg = EngineConfig::default();
        cfg.faults = Some(
            FaultSchedule::new(7)
                .packet_loss(0.001, 9, 0.02, 0.003)
                .rtt_jitter(0.001, 9, 10e-6, 0.003),
        );
        black_box(run_cfg(Protocol::Dcqcn, 4, 5, cfg))
    });

    write_report("BENCH_packet.json");
}
