//! Criterion benchmarks for the packet-level simulator: events/second on
//! the validation topology with each protocol (the inner loop of the FCT
//! experiments).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desim::{SimDuration, SimTime};
use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
use netsim::EngineConfig;

fn bench_packet_sim(c: &mut Criterion) {
    let run = |proto: Protocol, n: usize, dur_ms: u64| {
        let (mut eng, _b) = single_switch_longlived(
            proto,
            n,
            10e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_millis(dur_ms));
        report.data_packets
    };

    c.bench_function("dcqcn_4flows_5ms_10g", |b| {
        b.iter(|| black_box(run(Protocol::Dcqcn, 4, 5)))
    });
    c.bench_function("timely_4flows_5ms_10g", |b| {
        b.iter(|| black_box(run(Protocol::Timely, 4, 5)))
    });
    c.bench_function("patched_timely_4flows_5ms_10g", |b| {
        b.iter(|| black_box(run(Protocol::PatchedTimely, 4, 5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_packet_sim
}
criterion_main!(benches);
