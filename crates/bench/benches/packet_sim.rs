//! Benchmarks for the packet-level simulator: events/second on the
//! validation topology with each protocol (the inner loop of the FCT
//! experiments).

use bench::harness::{bench, black_box, write_report};
use desim::{SimDuration, SimTime};
use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
use netsim::EngineConfig;

fn main() {
    let run = |proto: Protocol, n: usize, dur_ms: u64| {
        let (mut eng, _b) = single_switch_longlived(
            proto,
            n,
            10e9,
            SimDuration::from_micros(1),
            EngineConfig::default(),
        );
        let report = eng.run(SimTime::from_millis(dur_ms));
        report.data_packets
    };

    bench("dcqcn_4flows_5ms_10g", || {
        black_box(run(Protocol::Dcqcn, 4, 5))
    });
    bench("timely_4flows_5ms_10g", || {
        black_box(run(Protocol::Timely, 4, 5))
    });
    bench("patched_timely_4flows_5ms_10g", || {
        black_box(run(Protocol::PatchedTimely, 4, 5))
    });

    write_report("BENCH_packet.json");
}
