//! Minimal std-only micro-benchmark harness.
//!
//! The container builds offline, so instead of criterion the `[[bench]]`
//! targets (compiled with `harness = false`) use this module: fixed warmup,
//! adaptive iteration count targeting a wall-clock budget per benchmark,
//! and a one-line `min / mean` report. Timing benchmarks live outside the
//! simulator crates, so wall-clock reads are allowed here (the simulator
//! itself is forbidden from `Instant::now` by `xtask lint`).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion used.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Run `f` repeatedly and print `name: min .. mean per iteration`.
///
/// Two warmup calls, then batches until ~0.5 s of measured time or 200
/// iterations, whichever comes first. Honors `BENCH_FAST=1` to run a
/// single measured iteration (used by CI smoke runs).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let fast = std::env::var_os("BENCH_FAST").is_some();
    let (budget, max_iters) = if fast {
        (Duration::ZERO, 1)
    } else {
        (Duration::from_millis(500), 200)
    };
    for _ in 0..if fast { 0 } else { 2 } {
        std_black_box(f());
    }
    let mut times = Vec::new();
    let mut total = Duration::ZERO;
    while times.is_empty() || (total < budget && times.len() < max_iters) {
        let start = Instant::now();
        std_black_box(f());
        let dt = start.elapsed();
        total += dt;
        times.push(dt);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let mean = total / times.len() as u32;
    println!(
        "{name:<44} min {:>12} mean {:>12} ({} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        times.len()
    );
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
