//! Minimal std-only micro-benchmark harness.
//!
//! The container builds offline, so instead of criterion the `[[bench]]`
//! targets (compiled with `harness = false`) use this module: fixed warmup,
//! adaptive iteration count targeting a wall-clock budget per benchmark,
//! and a one-line `min / median / mean` report. Timing benchmarks live
//! outside the simulator crates, so wall-clock reads are allowed here (the
//! simulator itself is forbidden from `Instant::now` by `xtask lint`).
//!
//! Every [`bench`] call is also recorded in a process-global registry;
//! [`write_report`] serializes the registry to a machine-readable JSON
//! baseline (`BENCH_fluid.json` / `BENCH_packet.json` / `BENCH_kernel.json`
//! at the repo root). Each record carries the git commit it was measured
//! at, so successive runs build up a per-commit performance history:
//!
//! ```json
//! [
//!   {"name": "...", "min_ns": 1, "mean_ns": 2, "median_ns": 1,
//!    "iters": 100, "sha": "abcdef0"}
//! ]
//! ```

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion used.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured benchmark, as serialized into `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name as passed to [`bench`].
    pub name: String,
    /// Fastest iteration (nanoseconds).
    pub min_ns: u128,
    /// Mean over all measured iterations (nanoseconds).
    pub mean_ns: u128,
    /// Median over all measured iterations (nanoseconds).
    pub median_ns: u128,
    /// Number of measured iterations.
    pub iters: usize,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Run `f` repeatedly and print `name: min / median / mean per iteration`;
/// the measurement is also appended to the in-process registry consumed by
/// [`write_report`].
///
/// Two warmup calls, then batches until ~0.5 s of measured time or 200
/// iterations, whichever comes first. Honors `BENCH_FAST=1` to skip warmup
/// and run a single measured iteration (used by CI smoke runs).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let fast = std::env::var_os("BENCH_FAST").is_some();
    let (budget, max_iters, warmups) = if fast {
        (Duration::ZERO, 1, 0)
    } else {
        (Duration::from_millis(500), 200, 2)
    };
    for _ in 0..warmups {
        std_black_box(f());
    }
    let mut times = Vec::new();
    let mut total = Duration::ZERO;
    while times.is_empty() || (total < budget && times.len() < max_iters) {
        let start = Instant::now();
        std_black_box(f());
        let dt = start.elapsed();
        total += dt;
        times.push(dt);
    }
    times.sort_unstable();
    let min = times.first().copied().unwrap_or_default();
    let median = times[times.len() / 2];
    let mean = total / times.len() as u32;
    println!(
        "{name:<44} min {:>12} med {:>12} mean {:>12} ({} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        times.len()
    );
    let rec = Record {
        name: name.to_string(),
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        median_ns: median.as_nanos(),
        iters: times.len(),
    };
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(rec);
}

/// Drain the `obs::span` per-phase wall-clock accumulators into the bench
/// registry as `<prefix>/span:<phase>` rows, so [`write_report`] splices
/// per-phase attribution into the same `BENCH_*.json` schema. For a span
/// row, `min/mean/median` all carry the *average* nanoseconds per span and
/// `iters` the span count (spans are aggregated, not sampled). Call after a
/// bench that ran with `obs::span::enable()`.
pub fn record_spans(prefix: &str) {
    for (phase, count, total_ns) in obs::span::drain() {
        let avg = u128::from(total_ns) / u128::from(count.max(1));
        let rec = Record {
            name: format!("{prefix}/span:{}", phase.name()),
            min_ns: avg,
            mean_ns: avg,
            median_ns: avg,
            iters: count as usize,
        };
        println!(
            "{:<44} avg {:>12} over {} spans (total {})",
            rec.name,
            fmt_ns(Duration::from_nanos(total_ns / count.max(1))),
            count,
            fmt_ns(Duration::from_nanos(total_ns)),
        );
        RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(rec);
    }
}

/// Append every measurement taken so far to `file` (e.g.
/// `"BENCH_fluid.json"`), creating it if absent, and clear the registry.
/// The file is a JSON array of records; existing entries (from earlier
/// commits) are preserved by splicing before the closing bracket, so no
/// JSON parser is needed.
pub fn write_report(file: &str) {
    let records: Vec<Record> = std::mem::take(
        &mut RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    if records.is_empty() {
        return;
    }
    let sha = git_sha();
    let entries: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": {:?}, \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"iters\": {}, \"sha\": {:?}}}",
                r.name, r.min_ns, r.mean_ns, r.median_ns, r.iters, sha
            )
        })
        .collect();
    let path = report_path(file);
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let body = match existing.trim_end().strip_suffix(']') {
        // Splice new entries before the closing bracket of the existing
        // array (an empty array `[]` degenerates to a fresh one).
        Some(head) if head.trim_end().ends_with(['}']) => {
            format!("{},\n{}\n]\n", head.trim_end(), entries.join(",\n"))
        }
        _ => format!("[\n{}\n]\n", entries.join(",\n")),
    };
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("bench report -> {}", path.display());
}

/// Resolve `file` relative to the workspace root (where `Cargo.lock`
/// lives), so `cargo bench` run from any crate directory appends to the
/// same baseline files.
fn report_path(file: &str) -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(file);
        }
        if !dir.pop() {
            return std::path::PathBuf::from(file);
        }
    }
}

/// Short git commit hash, or `"unknown"` outside a repository.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
