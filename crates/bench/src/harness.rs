//! Minimal std-only micro-benchmark harness.
//!
//! The container builds offline, so instead of criterion the `[[bench]]`
//! targets (compiled with `harness = false`) use this module: fixed warmup,
//! adaptive iteration count targeting a wall-clock budget per benchmark,
//! and a one-line `min / median / mean` report. Timing benchmarks live
//! outside the simulator crates, so wall-clock reads are allowed here (the
//! simulator itself is forbidden from `Instant::now` by `xtask lint`).
//!
//! Every [`bench`] call is also recorded in a process-global registry;
//! [`write_report`] serializes the registry to a machine-readable JSON
//! baseline (`BENCH_fluid.json` / `BENCH_packet.json` / `BENCH_kernel.json`
//! at the repo root). Each record carries the git commit it was measured
//! at, so successive runs build up a per-commit performance history:
//!
//! ```json
//! [
//!   {"name": "...", "min_ns": 1, "mean_ns": 2, "median_ns": 1,
//!    "iters": 100, "sha": "abcdef0"}
//! ]
//! ```

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion used.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured benchmark, as serialized into `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name as passed to [`bench`].
    pub name: String,
    /// Fastest iteration (nanoseconds).
    pub min_ns: u128,
    /// Mean over all measured iterations (nanoseconds).
    pub mean_ns: u128,
    /// Median over all measured iterations (nanoseconds).
    pub median_ns: u128,
    /// Number of measured iterations.
    pub iters: usize,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Run `f` repeatedly and print `name: min / median / mean per iteration`;
/// the measurement is also appended to the in-process registry consumed by
/// [`write_report`], and returned so callers can derive follow-up rows
/// (e.g. an events-per-second rate from the median) via [`record_value`].
///
/// Two warmup calls, then batches until ~0.5 s of measured time or 200
/// iterations, whichever comes first. Honors `BENCH_FAST=1` to skip warmup
/// and run a single measured iteration (used by CI smoke runs).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Record {
    let fast = std::env::var_os("BENCH_FAST").is_some();
    let (budget, max_iters, warmups) = if fast {
        (Duration::ZERO, 1, 0)
    } else {
        (Duration::from_millis(500), 200, 2)
    };
    for _ in 0..warmups {
        std_black_box(f());
    }
    let mut times = Vec::new();
    let mut total = Duration::ZERO;
    while times.is_empty() || (total < budget && times.len() < max_iters) {
        let start = Instant::now();
        std_black_box(f());
        let dt = start.elapsed();
        total += dt;
        times.push(dt);
    }
    times.sort_unstable();
    let min = times.first().copied().unwrap_or_default();
    let median = times[times.len() / 2];
    let mean = total / times.len() as u32;
    println!(
        "{name:<44} min {:>12} med {:>12} mean {:>12} ({} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        times.len()
    );
    let rec = Record {
        name: name.to_string(),
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        median_ns: median.as_nanos(),
        iters: times.len(),
    };
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(rec.clone());
    rec
}

/// Record a derived scalar as a report row: `value` is stored in the
/// `min/mean/median` columns verbatim and `count` in `iters`. Used for
/// rows that are not wall-clock samples — e.g. `netsim/events_per_sec_*`,
/// where the value is a rate computed from a measured run and its event
/// count (see the bench-row schema note in README).
pub fn record_value(name: &str, value: u128, count: usize) {
    println!("{name:<44} value {value} (n = {count})");
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Record {
            name: name.to_string(),
            min_ns: value,
            mean_ns: value,
            median_ns: value,
            iters: count,
        });
}

/// Drain the `obs::span` per-phase wall-clock accumulators into the bench
/// registry as `<prefix>/span:<phase>` rows, so [`write_report`] splices
/// per-phase attribution into the same `BENCH_*.json` schema. For a span
/// row, `min/mean/median` all carry the *average* nanoseconds per span and
/// `iters` the span count (spans are aggregated, not sampled). Call after a
/// bench that ran with `obs::span::enable()`.
pub fn record_spans(prefix: &str) {
    for (phase, count, total_ns) in obs::span::drain() {
        let avg = u128::from(total_ns) / u128::from(count.max(1));
        let rec = Record {
            name: format!("{prefix}/span:{}", phase.name()),
            min_ns: avg,
            mean_ns: avg,
            median_ns: avg,
            iters: count as usize,
        };
        println!(
            "{:<44} avg {:>12} over {} spans (total {})",
            rec.name,
            fmt_ns(Duration::from_nanos(total_ns / count.max(1))),
            count,
            fmt_ns(Duration::from_nanos(total_ns)),
        );
        RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(rec);
    }
}

/// Write every measurement taken so far to `file` (e.g.
/// `"BENCH_fluid.json"`), creating it if absent, and clear the registry.
/// The file is a JSON array of records, one per line. Rows from earlier
/// commits are preserved; an existing row whose `(name, sha)` matches a
/// new measurement is **replaced** rather than duplicated, so re-running a
/// bench at the same commit updates its rows in place and the file stays
/// one row per `(name, sha)` — the property trajectory tooling keys on.
pub fn write_report(file: &str) {
    let records: Vec<Record> = std::mem::take(
        &mut RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    if records.is_empty() {
        return;
    }
    let sha = git_sha();
    let entries: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": {:?}, \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"iters\": {}, \"sha\": {:?}}}",
                r.name, r.min_ns, r.mean_ns, r.median_ns, r.iters, sha
            )
        })
        .collect();
    let path = report_path(file);
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
    let body = merge_report(&existing, &names, &sha, &entries);
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("bench report -> {}", path.display());
}

/// Merge `new_lines` (records measured at `sha`, named `new_names`
/// pairwise) into an existing one-row-per-line report: existing rows keep
/// their position and formatting unless their `(name, sha)` matches a new
/// record, in which case the old row is dropped and the fresh measurement
/// appended at the end. No JSON parser needed — rows are recognized by
/// their `"name"`/`"sha"` string fields.
fn merge_report(existing: &str, new_names: &[&str], sha: &str, new_lines: &[String]) -> String {
    let kept: Vec<&str> = existing
        .lines()
        .filter(|line| line.trim_start().starts_with('{'))
        .filter(|line| {
            !(string_field(line, "sha") == Some(sha)
                && string_field(line, "name").is_some_and(|n| new_names.contains(&n)))
        })
        .map(|line| line.trim_end().trim_end_matches(','))
        .collect();
    let all: Vec<String> = kept
        .into_iter()
        .map(str::to_string)
        .chain(new_lines.iter().cloned())
        .collect();
    format!("[\n{}\n]\n", all.join(",\n"))
}

/// Extract the value of a `"key": "value"` string field from a single-line
/// JSON object. Sufficient for the report rows this module itself writes
/// (names never contain escaped quotes).
fn string_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Resolve `file` relative to the workspace root (where `Cargo.lock`
/// lives), so `cargo bench` run from any crate directory appends to the
/// same baseline files.
fn report_path(file: &str) -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(file);
        }
        if !dir.pop() {
            return std::path::PathBuf::from(file);
        }
    }
}

/// Short git commit hash, or `"unknown"` outside a repository.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, ns: u64, sha: &str) -> String {
        format!(
            "  {{\"name\": {name:?}, \"min_ns\": {ns}, \"mean_ns\": {ns}, \"median_ns\": {ns}, \"iters\": 1, \"sha\": {sha:?}}}"
        )
    }

    #[test]
    fn merge_replaces_rows_keyed_by_name_and_sha() {
        let existing = format!(
            "[\n{},\n{},\n{}\n]\n",
            row("a", 1, "old1"),
            row("a", 2, "new1"),
            row("b", 3, "new1")
        );
        let fresh = vec![row("a", 9, "new1")];
        let merged = merge_report(&existing, &["a"], "new1", &fresh);
        // The old-commit row and the other-name row survive; the stale
        // same-(name, sha) row is gone; the fresh row is appended.
        assert_eq!(
            merged,
            format!(
                "[\n{},\n{},\n{}\n]\n",
                row("a", 1, "old1"),
                row("b", 3, "new1"),
                row("a", 9, "new1")
            )
        );
    }

    #[test]
    fn merge_collapses_preexisting_duplicates_of_rerecorded_rows() {
        // A file that already carries duplicate (name, sha) rows (the bug
        // this keying fixes) converges to one row once re-recorded.
        let existing = format!("[\n{},\n{}\n]\n", row("a", 1, "s"), row("a", 2, "s"));
        let fresh = vec![row("a", 3, "s")];
        let merged = merge_report(&existing, &["a"], "s", &fresh);
        assert_eq!(merged, format!("[\n{}\n]\n", row("a", 3, "s")));
    }

    #[test]
    fn merge_into_missing_or_empty_file_builds_fresh_array() {
        let fresh = vec![row("a", 1, "s")];
        assert_eq!(
            merge_report("", &["a"], "s", &fresh),
            format!("[\n{}\n]\n", row("a", 1, "s"))
        );
        assert_eq!(
            merge_report("[]\n", &["a"], "s", &fresh),
            format!("[\n{}\n]\n", row("a", 1, "s"))
        );
    }

    #[test]
    fn string_field_extracts_name_and_sha() {
        let line = row("event_queue/wheel_x", 5, "abc1234");
        assert_eq!(string_field(&line, "name"), Some("event_queue/wheel_x"));
        assert_eq!(string_field(&line, "sha"), Some("abc1234"));
        assert_eq!(string_field(&line, "nope"), None);
    }
}
