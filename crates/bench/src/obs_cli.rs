//! `--trace` / `--metrics` / `--timeseries` / `--flight` support shared by
//! every figure binary.
//!
//! All flags are **off by default** — a figure run without them never
//! enables the `obs` layer, so the hot paths pay only the disabled-check
//! load. With `--trace`, sim-time events captured during the run are written
//! as JSONL (sorted by `(ctx, seq)`; byte-identical across `SIM_THREADS`
//! settings). With `--metrics`, the deterministic name-sorted counter /
//! gauge / histogram snapshot is written as JSON. With `--timeseries`, the
//! windowed series and streaming log-histograms are written as JSONL
//! (`kind: series | win | hist` lines, ordered by `(name, key, ctx)` —
//! render or diff them with `simreport`). With `--flight <path>`, the
//! causal flight recorder is armed: the bounded ring records
//! schedule/dispatch/cancel entries with scheduled-by back-pointers, and on
//! a `SimError` (e.g. a divergence watchdog trip) the ring is dumped to
//! `path` as JSONL, headed by a `{"kind": "flight_dump", "reason": ...}`
//! line. On a clean run `finish` writes the same dump so the recorder is
//! inspectable without a failure.
//!
//! `all_figures` interprets `--trace`/`--metrics` as *directories* and fans
//! them out per child figure (`<dir>/<fig>_trace.jsonl`,
//! `<dir>/<fig>_metrics.json`).

use std::path::PathBuf;

/// Parsed observability flags for a figure binary.
pub struct ObsCli {
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    timeseries_path: Option<PathBuf>,
    flight_path: Option<PathBuf>,
}

/// Parse `--trace` / `--metrics` from the process arguments and enable the
/// corresponding `obs` subsystems (resetting any prior state so the output
/// reflects exactly this run). Unknown arguments are ignored — figure
/// binaries take no other flags.
pub fn init() -> ObsCli {
    let mut argv = std::env::args().skip(1);
    let mut trace_path = None;
    let mut metrics_path = None;
    let mut timeseries_path = None;
    let mut flight_path = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace" => {
                trace_path = Some(PathBuf::from(
                    argv.next().expect("--trace requires a file path"),
                ));
            }
            "--metrics" => {
                metrics_path = Some(PathBuf::from(
                    argv.next().expect("--metrics requires a file path"),
                ));
            }
            "--timeseries" => {
                timeseries_path = Some(PathBuf::from(
                    argv.next().expect("--timeseries requires a file path"),
                ));
            }
            "--flight" => {
                flight_path = Some(PathBuf::from(
                    argv.next().expect("--flight requires a file path"),
                ));
            }
            _ => {}
        }
    }
    if trace_path.is_some() {
        obs::trace::reset();
        obs::trace::enable();
    }
    if metrics_path.is_some() {
        obs::metrics::reset();
        obs::metrics::enable();
    }
    if timeseries_path.is_some() {
        obs::timeseries::reset();
        obs::timeseries::enable();
    }
    if let Some(p) = &flight_path {
        obs::flight::reset();
        obs::flight::enable();
        // Arm dump-on-error immediately: if the run dies with a SimError the
        // black box lands at the requested path even though `finish` (which
        // also writes it on clean exit) never runs.
        obs::flight::set_dump_path(p.clone());
    }
    ObsCli {
        trace_path,
        metrics_path,
        timeseries_path,
        flight_path,
    }
}

impl ObsCli {
    /// True when any flag was given (instrumentation is recording).
    pub fn active(&self) -> bool {
        self.trace_path.is_some()
            || self.metrics_path.is_some()
            || self.timeseries_path.is_some()
            || self.flight_path.is_some()
    }

    /// Disable recording and write the requested artifacts.
    pub fn finish(self) {
        if let Some(p) = &self.trace_path {
            obs::trace::disable();
            let jsonl = obs::trace::export_jsonl();
            std::fs::write(p, &jsonl).unwrap_or_else(|e| panic!("write {}: {e}", p.display()));
            let dropped = obs::trace::dropped_events();
            println!(
                "trace -> {} ({} events{})",
                p.display(),
                jsonl.lines().count(),
                if dropped > 0 {
                    format!(", {dropped} dropped by ring wrap")
                } else {
                    String::new()
                }
            );
        }
        if let Some(p) = &self.metrics_path {
            obs::metrics::disable();
            std::fs::write(p, obs::metrics::snapshot_json())
                .unwrap_or_else(|e| panic!("write {}: {e}", p.display()));
            println!("metrics -> {}", p.display());
        }
        if let Some(p) = &self.timeseries_path {
            obs::timeseries::disable();
            let jsonl = obs::timeseries::export_jsonl();
            std::fs::write(p, &jsonl).unwrap_or_else(|e| panic!("write {}: {e}", p.display()));
            println!(
                "timeseries -> {} ({} lines)",
                p.display(),
                jsonl.lines().count()
            );
        }
        if let Some(p) = &self.flight_path {
            // A SimError mid-run already dumped a post-mortem to this path;
            // never overwrite that with an end-of-run snapshot.
            if let Some(reason) = obs::flight::last_dump_reason() {
                obs::flight::disable();
                println!("flight -> {} (post-mortem dump: {reason})", p.display());
            } else {
                let jsonl = format!(
                    "{{\"kind\": \"flight_dump\", \"reason\": \"clean exit\"}}\n{}",
                    obs::flight::export_jsonl()
                );
                obs::flight::disable();
                std::fs::write(p, &jsonl).unwrap_or_else(|e| panic!("write {}: {e}", p.display()));
                println!(
                    "flight -> {} ({} lines)",
                    p.display(),
                    jsonl.lines().count()
                );
            }
        }
    }

    /// For analysis-only figures (frequency-domain sweeps that never touch
    /// the packet engine): when instrumentation is on, additionally run a
    /// short fully-instrumented packet-level DCQCN scenario at the paper's
    /// validation operating point (10 long-lived flows through one switch),
    /// so the trace/metrics show the ECN-mark / CNP / rate-update cadence
    /// the frequency-domain analysis summarizes. A no-op when neither flag
    /// was given.
    pub fn dcqcn_companion_run(&self) {
        if !self.active() {
            return;
        }
        use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
        let (mut eng, _bottleneck) = single_switch_longlived(
            Protocol::Dcqcn,
            10,
            10e9,
            desim::SimDuration::from_micros(20),
            netsim::EngineConfig::default(),
        );
        let _ = eng.run(desim::SimTime::from_millis(4));
        println!("instrumented DCQCN companion run: 10 flows, 10 Gbps, 4 ms");
    }
}
