//! Telemetry rendering, run diffing and the bench regression sentinel —
//! the library behind the `simreport` binary.
//!
//! Everything here is line-oriented: the workspace's JSON artifacts are
//! deliberately written one object per line (`BENCH_*.json` rows, trace /
//! time-series / flight JSONL), so a handful of string-field extractors
//! replace a JSON parser (the container builds offline; no serde).
//!
//! Three capabilities:
//!
//! * [`render_timeseries`] — turn a `--timeseries` JSONL export into text
//!   tables and sparklines;
//! * [`diff_jsonl`] — compare two JSONL exports line by line and localize
//!   the first diverging `(ctx, seq)` event, turning CI's byte-identity
//!   `cmp` gates into an actual divergence debugger;
//! * [`bench_check`] — compare fresh `BENCH_*.json` rows against the
//!   `(name, sha)` history and flag median regressions beyond a threshold.

use std::fmt::Write as _;

/// Extract the value of a `"key": "value"` string field from a single-line
/// JSON object (names in this workspace never contain escaped quotes).
pub fn string_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extract a numeric `"key": <number>` field from a single-line JSON
/// object. Accepts integers, floats and scientific notation; `null` and a
/// missing key both yield `None`.
pub fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract an unsigned integer field (truncating helper over [`num_field`]).
pub fn int_field(line: &str, key: &str) -> Option<u64> {
    num_field(line, key).map(|v| v as u64)
}

/// Render `values` as a unicode sparkline (8 block levels, min..max scaled;
/// a flat series renders as a run of the lowest block).
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '?'
            } else if span > 0.0 {
                BLOCKS[(((v - lo) / span) * 7.0).round() as usize]
            } else {
                BLOCKS[0]
            }
        })
        .collect()
}

/// Render a `--timeseries` JSONL export as text: one sparkline block per
/// `(name, key, ctx)` series (window means, decimated to `width` columns)
/// and one table row per histogram line.
pub fn render_timeseries(jsonl: &str, width: usize) -> String {
    let mut out = String::new();
    let width = width.max(8);
    // Collect window means per series, in file order (already sorted by
    // (name, key, ctx) at export).
    let mut cur: Option<(String, Vec<f64>)> = None;
    let flush = |out: &mut String, cur: &mut Option<(String, Vec<f64>)>| {
        if let Some((head, means)) = cur.take() {
            let step = (means.len() / width).max(1);
            let decimated: Vec<f64> = means.iter().copied().step_by(step).collect();
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &m in &means {
                lo = lo.min(m);
                hi = hi.max(m);
            }
            let _ = writeln!(
                out,
                "{head} [{} windows, mean {lo:.4}..{hi:.4}]\n  {}",
                means.len(),
                sparkline(&decimated)
            );
        }
    };
    for line in jsonl.lines() {
        match string_field(line, "kind") {
            Some("series") => {
                flush(&mut out, &mut cur);
                let name = string_field(line, "name").unwrap_or("?");
                let key = int_field(line, "key").unwrap_or(0);
                let ctx = int_field(line, "ctx").unwrap_or(0);
                let window = num_field(line, "window_s").unwrap_or(0.0);
                cur = Some((
                    format!("series {name} key={key} ctx={ctx} window={window}s"),
                    Vec::new(),
                ));
            }
            Some("win") => {
                if let (Some((_, means)), Some(mean)) = (cur.as_mut(), num_field(line, "mean")) {
                    means.push(mean);
                }
            }
            Some("hist") => {
                flush(&mut out, &mut cur);
                let name = string_field(line, "name").unwrap_or("?");
                let key = int_field(line, "key").unwrap_or(0);
                let ctx = int_field(line, "ctx").unwrap_or(0);
                let _ = writeln!(
                    out,
                    "hist   {name} key={key} ctx={ctx}  n={}  p50={}  p90={}  p99={}  max={}",
                    int_field(line, "count").unwrap_or(0),
                    fmt_opt(num_field(line, "p50")),
                    fmt_opt(num_field(line, "p90")),
                    fmt_opt(num_field(line, "p99")),
                    fmt_opt(num_field(line, "max")),
                );
            }
            _ => {}
        }
    }
    flush(&mut out, &mut cur);
    out
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// Where two JSONL exports first diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// `(ctx, seq)` of the diverging event, when both fields are present on
    /// either line (trace and flight exports carry them; time-series lines
    /// carry `ctx` only, reported with seq 0).
    pub ctx_seq: Option<(u64, u64)>,
    /// The line from the first file (empty if it ended early).
    pub a: String,
    /// The line from the second file (empty if it ended early).
    pub b: String,
}

/// Compare two JSONL exports line by line; `None` means byte-identical.
/// On a mismatch, the first diverging line is localized and, where the
/// lines carry `(ctx, seq)` keys, translated into event coordinates — the
/// debugger behind CI's `cmp` identity gates.
pub fn diff_jsonl(a: &str, b: &str) -> Option<Divergence> {
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut n = 0;
    loop {
        n += 1;
        match (la.next(), lb.next()) {
            (None, None) => return None,
            (x, y) => {
                let (x, y) = (x.unwrap_or(""), y.unwrap_or(""));
                if x != y {
                    let keyed = if x.is_empty() { y } else { x };
                    let ctx_seq =
                        int_field(keyed, "ctx").map(|c| (c, int_field(keyed, "seq").unwrap_or(0)));
                    return Some(Divergence {
                        line: n,
                        ctx_seq,
                        a: x.to_string(),
                        b: y.to_string(),
                    });
                }
            }
        }
    }
}

/// One benchmark's verdict from [`bench_check`].
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// Benchmark name.
    pub name: String,
    /// Fresh median (ns, or raw value for `record_value` rows).
    pub fresh: f64,
    /// Baseline: median of the other-sha rows' medians (None: no history).
    pub baseline: Option<f64>,
    /// Signed change vs baseline in percent (positive = slower/lower-rate).
    pub delta_pct: Option<f64>,
    /// True when the change exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// Is a bench row higher-is-better? Rate rows (`*per_sec*`) are; wall-time
/// rows are lower-is-better.
fn higher_is_better(name: &str) -> bool {
    name.contains("per_sec")
}

/// The bench regression sentinel. `content` is a `BENCH_*.json` report
/// (one row per line, `(name, sha)` keyed — see `harness::write_report`);
/// `fresh_sha` selects the rows under test (defaulting to the sha of the
/// file's last row, i.e. the most recent measurement); `threshold_pct` is
/// the allowed median change in percent. Every fresh-sha row is compared
/// against the median of its name's other-sha history: wall-time rows fail
/// when `fresh > baseline * (1 + t)`, rate rows when
/// `fresh < baseline / (1 + t)`. Rows without history pass (first
/// measurement). Returns one [`CheckRow`] per fresh row, name order.
pub fn bench_check(content: &str, fresh_sha: Option<&str>, threshold_pct: f64) -> Vec<CheckRow> {
    let rows: Vec<(&str, &str, f64)> = content
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .filter_map(|l| {
            Some((
                string_field(l, "name")?,
                string_field(l, "sha")?,
                num_field(l, "median_ns")?,
            ))
        })
        .collect();
    let Some(fresh_sha) = fresh_sha.or_else(|| rows.last().map(|r| r.1)) else {
        return Vec::new();
    };
    let t = threshold_pct / 100.0;
    let mut out: Vec<CheckRow> = rows
        .iter()
        .filter(|(_, sha, _)| *sha == fresh_sha)
        .map(|&(name, _, fresh)| {
            let mut history: Vec<f64> = rows
                .iter()
                .filter(|(n, sha, _)| *n == name && *sha != fresh_sha)
                .map(|&(_, _, m)| m)
                .collect();
            history.sort_by(f64::total_cmp);
            let baseline = (!history.is_empty()).then(|| history[history.len() / 2]);
            let (delta_pct, regressed) = match baseline {
                Some(b) if b > 0.0 => {
                    let delta = if higher_is_better(name) {
                        // Positive delta = rate dropped = bad.
                        (b - fresh) / b * 100.0
                    } else {
                        (fresh - b) / b * 100.0
                    };
                    (Some(delta), delta > t * 100.0)
                }
                _ => (None, false),
            };
            CheckRow {
                name: name.to_string(),
                fresh,
                baseline,
                delta_pct,
                regressed,
            }
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Render [`bench_check`] rows as a table, worst regressions called out.
pub fn render_check(rows: &[CheckRow], threshold_pct: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>14} {:>14} {:>9}  verdict",
        "benchmark", "fresh", "baseline", "delta"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<52} {:>14.0} {:>14} {:>9}  {}",
            r.name,
            r.fresh,
            match r.baseline {
                Some(b) => format!("{b:.0}"),
                None => "-".to_string(),
            },
            match r.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None => "-".to_string(),
            },
            if r.regressed {
                "REGRESSED"
            } else if r.baseline.is_none() {
                "new"
            } else {
                "ok"
            }
        );
    }
    let bad = rows.iter().filter(|r| r.regressed).count();
    let _ = writeln!(
        out,
        "{} rows, {} regressed (threshold {threshold_pct}%)",
        rows.len(),
        bad
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, median: u64, sha: &str) -> String {
        format!(
            "  {{\"name\": {name:?}, \"min_ns\": {median}, \"mean_ns\": {median}, \"median_ns\": {median}, \"iters\": 3, \"sha\": {sha:?}}}"
        )
    }

    fn report(rows: &[String]) -> String {
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    #[test]
    fn field_extractors_handle_ints_floats_and_missing() {
        let line = "{\"name\": \"x\", \"median_ns\": 1500, \"mean\": 2.5e-3, \"by\": null}";
        assert_eq!(string_field(line, "name"), Some("x"));
        assert_eq!(num_field(line, "median_ns"), Some(1500.0));
        assert_eq!(num_field(line, "mean"), Some(2.5e-3));
        assert_eq!(num_field(line, "by"), None, "null is not a number");
        assert_eq!(num_field(line, "absent"), None);
        assert_eq!(int_field(line, "median_ns"), Some(1500));
    }

    #[test]
    fn sparkline_scales_and_handles_flat() {
        let s = sparkline(&[0.0, 3.0, 7.0]);
        assert_eq!(s, "▁▄█");
        assert_eq!(sparkline(&[2.0, 2.0]), "▁▁", "flat series is lowest block");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn bench_check_fails_synthetic_20pct_regression() {
        // Acceptance criterion: a 20% median regression at a 15% threshold
        // must fail; wall-time rows regress upward, rate rows downward.
        let content = report(&[
            row("kernel/pop", 1000, "old1"),
            row("kernel/pop", 1000, "old2"),
            row("netsim/events_per_sec_x", 5000, "old1"),
            row("kernel/pop", 1200, "new1"),
            row("netsim/events_per_sec_x", 4000, "new1"),
        ]);
        let rows = bench_check(&content, Some("new1"), 15.0);
        assert_eq!(rows.len(), 2);
        let pop = rows.iter().find(|r| r.name == "kernel/pop").unwrap();
        assert!(pop.regressed, "+20% wall time must regress: {pop:?}");
        let rate = rows.iter().find(|r| r.name.contains("per_sec")).unwrap();
        assert!(rate.regressed, "-20% rate must regress: {rate:?}");
    }

    #[test]
    fn bench_check_passes_identical_and_improved_rows() {
        let content = report(&[
            row("kernel/pop", 1000, "old1"),
            row("netsim/events_per_sec_x", 5000, "old1"),
            row("kernel/pop", 1000, "new1"),
            row("netsim/events_per_sec_x", 6000, "new1"),
            row("kernel/brand_new", 42, "new1"),
        ]);
        let rows = bench_check(&content, Some("new1"), 15.0);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| !r.regressed), "{rows:?}");
        let fresh = rows.iter().find(|r| r.name == "kernel/brand_new").unwrap();
        assert!(fresh.baseline.is_none(), "no history: passes as new");
    }

    #[test]
    fn bench_check_defaults_fresh_sha_to_last_row() {
        let content = report(&[row("a", 100, "old"), row("a", 200, "new")]);
        let rows = bench_check(&content, None, 15.0);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].regressed, "100 -> 200 ns at 15%: {rows:?}");
        assert_eq!(rows[0].baseline, Some(100.0));
    }

    #[test]
    fn bench_check_baseline_is_median_of_history() {
        // History medians 100/110/300 -> baseline 110 (robust to one
        // outlier commit), so a fresh 120 is +9.1%, under a 15% gate.
        let content = report(&[
            row("a", 100, "s1"),
            row("a", 300, "s2"),
            row("a", 110, "s3"),
            row("a", 120, "new"),
        ]);
        let rows = bench_check(&content, Some("new"), 15.0);
        assert_eq!(rows[0].baseline, Some(110.0));
        assert!(!rows[0].regressed);
    }

    #[test]
    fn diff_jsonl_localizes_first_diverging_event() {
        let a = "{\"ctx\": 1, \"seq\": 0, \"v\": 1}\n{\"ctx\": 1, \"seq\": 1, \"v\": 2}\n";
        let b = "{\"ctx\": 1, \"seq\": 0, \"v\": 1}\n{\"ctx\": 1, \"seq\": 1, \"v\": 9}\n";
        let d = diff_jsonl(a, b).unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.ctx_seq, Some((1, 1)));
        assert_eq!(diff_jsonl(a, a), None, "identical inputs do not diverge");
    }

    #[test]
    fn diff_jsonl_reports_truncation() {
        let a = "{\"ctx\": 3, \"seq\": 7}\n";
        let d = diff_jsonl(a, "").unwrap();
        assert_eq!(d.line, 1);
        assert_eq!(d.ctx_seq, Some((3, 7)), "keys read from the longer side");
        assert!(d.b.is_empty());
    }

    #[test]
    fn render_timeseries_emits_sparkline_and_hist_rows() {
        let jsonl = "\
{\"kind\": \"series\", \"name\": \"q\", \"key\": 0, \"ctx\": 1, \"window_s\": 0.001, \"windows\": 3, \"dropped\": 0}
{\"kind\": \"win\", \"name\": \"q\", \"key\": 0, \"ctx\": 1, \"w\": 0, \"t_s\": 0.0, \"count\": 1, \"mean\": 1.0, \"min\": 1.0, \"max\": 1.0, \"last\": 1.0}
{\"kind\": \"win\", \"name\": \"q\", \"key\": 0, \"ctx\": 1, \"w\": 1, \"t_s\": 0.001, \"count\": 1, \"mean\": 5.0, \"min\": 5.0, \"max\": 5.0, \"last\": 5.0}
{\"kind\": \"hist\", \"name\": \"fct\", \"key\": 0, \"ctx\": 1, \"count\": 9, \"zero\": 0, \"non_finite\": 0, \"min\": 1.0, \"max\": 9.0, \"p50\": 5.0, \"p90\": 8.0, \"p99\": 9.0, \"p999\": 9.0}
";
        let text = render_timeseries(jsonl, 40);
        assert!(text.contains("series q key=0 ctx=1"), "{text}");
        assert!(text.contains('▁') && text.contains('█'), "{text}");
        assert!(
            text.contains("hist   fct") && text.contains("p99=9.0000"),
            "{text}"
        );
    }
}
