//! # bench — figure regeneration binaries and criterion benchmarks
//!
//! Every table and figure in the paper's evaluation has a binary here that
//! regenerates its data series:
//!
//! ```text
//! cargo run -p bench --release --bin fig2    # fluid vs packet (DCQCN)
//! cargo run -p bench --release --bin fig3    # phase margins (a/b/c)
//! cargo run -p bench --release --bin fig4    # stability grid
//! cargo run -p bench --release --bin fig5    # packet-level instability
//! cargo run -p bench --release --bin fig6    # discrete AIMD + Theorem 2
//! cargo run -p bench --release --bin fig8    # fluid vs packet (TIMELY)
//! cargo run -p bench --release --bin fig9    # TIMELY multi-equilibria
//! cargo run -p bench --release --bin fig10   # burst pacing
//! cargo run -p bench --release --bin fig11   # patched TIMELY margins
//! cargo run -p bench --release --bin fig12   # patched TIMELY traces
//! cargo run -p bench --release --bin fig14   # FCT vs load
//! cargo run -p bench --release --bin fig15   # FCT CDF at load 0.8
//! cargo run -p bench --release --bin fig16   # bottleneck queue at 0.8
//! cargo run -p bench --release --bin fig17   # ingress vs egress marking
//! cargo run -p bench --release --bin fig18   # DCQCN + PI
//! cargo run -p bench --release --bin fig19   # patched TIMELY + PI
//! cargo run -p bench --release --bin fig20   # feedback jitter
//! cargo run -p bench --release --bin eq14    # p* table
//! cargo run -p bench --release --bin all_figures
//! ```
//!
//! Each binary prints the paper's series to stdout and writes JSON under
//! `results/`. Benchmarks (`cargo bench`, driven by [`harness`]) measure
//! the substrate: event-queue throughput, DDE integration speed, and
//! packet-simulation rates.
//!
//! Every binary additionally accepts `--trace <path>` and
//! `--metrics <path>` (both off by default; see [`obs_cli`]) to export the
//! run's sim-time event trace as JSONL and its counter/gauge/histogram
//! snapshot as JSON. `all_figures` treats both as directories and fans
//! them out per child figure.
//!
//! `--store <dir>` / `--no-store` (see [`store_cli`]) make any figure run
//! resumable: results are cached in a crash-safe content-addressed store
//! keyed by the figure's canonical config, and a rerun with the same spec
//! is served byte-identically from disk. `all_figures` forwards both flags
//! to every child.

#![warn(missing_docs)]

pub mod harness;
pub mod obs_cli;
pub mod report;
pub mod store_cli;

use std::path::PathBuf;

/// Directory where figure binaries drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ECN_DELAY_RESULTS").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Pretty-print a separator + title for a figure's console output.
pub fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Format a `(x, y)` series compactly for the console: decimated to at most
/// `max_points` rows.
pub fn print_series(name: &str, series: &[(f64, f64)], max_points: usize) {
    println!("-- {name} ({} points)", series.len());
    if series.is_empty() {
        return;
    }
    let step = (series.len() / max_points.max(1)).max(1);
    for (i, (x, y)) in series.iter().enumerate() {
        if i % step == 0 || i == series.len() - 1 {
            println!("   {x:12.6}  {y:14.4}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_default() {
        let d = results_dir();
        assert!(d.components().count() >= 1);
    }
}
