//! Extension: PI AQM at the packet level (the paper's future work).

use ecn_delay_core::experiments::ext_pi_packet::{run, ExtPiPacketConfig};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Extension: packet-level DCQCN + PI AQM vs RED");
    let cfg = ExtPiPacketConfig {
        duration_s: 0.25,
        ..Default::default()
    };
    let store = bench::store_cli::init(
        "ext_pi_packet",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:>6} {:>18} {:>18} {:>18}",
        "N", "RED queue (KB)", "PI queue (KB)", "PI worst rate err"
    );
    for p in &res.panels {
        println!(
            "{:>6} {:>18.1} {:>18.1} {:>18.3}",
            p.n_flows, p.red_tail_queue_kb, p.pi_tail_queue_kb, p.pi_worst_rate_error
        );
    }
    println!(
        "\nRED's operating queue drifts with N (Eq 14); PI pins it at q_ref = {} KB.",
        res.q_ref_kb
    );
    let path = bench::results_dir().join("ext_pi_packet.json");
    write_json(&path, &res).expect("write results");
    println!("results -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
