//! Figure 18: DCQCN with PI marking — pinned queue and fair rates.

use ecn_delay_core::experiments::fig18::{run, Fig18Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 18: DCQCN + PI controller (q_ref = 100 KB)");
    let res = run(&Fig18Config::default());
    println!(
        "{:>6} {:>16} {:>22}",
        "N", "tail queue (KB)", "worst rate error"
    );
    for p in &res.panels {
        println!(
            "{:>6} {:>16.1} {:>22.4}",
            p.n_flows, p.tail_queue_kb, p.worst_rate_error
        );
    }
    println!("\nqueue pinned at q_ref for every N — fair AND fixed delay (ECN can).");
    let path = bench::results_dir().join("fig18.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    obs.finish();
}
