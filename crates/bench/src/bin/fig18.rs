//! Figure 18: DCQCN with PI marking — pinned queue and fair rates.

use ecn_delay_core::experiments::fig18::{run, Fig18Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 18: DCQCN + PI controller (q_ref = 100 KB)");
    let cfg = Fig18Config::default();
    let store = bench::store_cli::init(
        "fig18",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:>6} {:>16} {:>22}",
        "N", "tail queue (KB)", "worst rate error"
    );
    for p in &res.panels {
        println!(
            "{:>6} {:>16.1} {:>22.4}",
            p.n_flows, p.tail_queue_kb, p.worst_rate_error
        );
    }
    println!("\nqueue pinned at q_ref for every N — fair AND fixed delay (ECN can).");
    let path = bench::results_dir().join("fig18.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
