//! Extension: ECN-before-PFC vs PFC-only.

use ecn_delay_core::experiments::ext_pfc::{run, ExtPfcConfig};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Extension: ECN-before-PFC vs PFC-only (4 flows, 10 Gbps)");
    let cfg = ExtPfcConfig::default();
    let store = bench::store_cli::init(
        "ext_pfc",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:<16} {:>8} {:>14} {:>16} {:>14}",
        "config", "pauses", "paused (s)", "max queue (KB)", "goodput (Gbps)"
    );
    for o in &res.outcomes {
        println!(
            "{:<16} {:>8} {:>14.6} {:>16.1} {:>14.2}",
            o.label, o.pauses, o.paused_s, o.max_queue_kb, o.goodput_gbps
        );
    }
    println!("\nwith ECN marking below the PFC threshold, end-to-end control reacts");
    println!("first and PFC (the blunt hop-by-hop mechanism) stays disengaged.");
    let path = bench::results_dir().join("ext_pfc.json");
    write_json(&path, &res).expect("write results");
    println!("results -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
