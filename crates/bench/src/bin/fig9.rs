//! Figure 9: TIMELY under different starting conditions.

use ecn_delay_core::experiments::fig9::{run, Fig9Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 9: TIMELY multi-equilibria (2 flows, fluid)");
    let cfg = Fig9Config::default();
    let store = bench::store_cli::init(
        "fig9",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for p in &res.panels {
        println!(
            "{:<34} tail share of flow 0 = {:.3}",
            p.label, p.tail_share_flow0
        );
        bench::print_series("flow 0 rate (Gbps)", &p.rate0_gbps, 8);
        bench::print_series("flow 1 rate (Gbps)", &p.rate1_gbps, 8);
    }
    println!("\nNote: identical protocol, different starts, different regimes —");
    println!("Theorems 3/4: no unique fixed point, arbitrary unfairness.");
    let path = bench::results_dir().join("fig9.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
