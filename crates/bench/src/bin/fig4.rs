//! Figure 4: impact of delay and flow count on DCQCN stability (fluid).

use ecn_delay_core::experiments::fig4::{run, Fig4Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 4: DCQCN fluid stability grid (tau* x N)");
    let res = run(&Fig4Config::default());
    println!(
        "{:>10} {:>6} {:>18} {:>18}",
        "tau* (us)", "N", "queue osc (q*)", "margin predicts"
    );
    for p in &res.panels {
        println!(
            "{:>10} {:>6} {:>18.3} {:>18}",
            p.delay_us,
            p.n_flows,
            p.queue_oscillation,
            if p.predicted_stable {
                "stable"
            } else {
                "UNSTABLE"
            }
        );
    }
    let path = bench::results_dir().join("fig4.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    obs.finish();
}
