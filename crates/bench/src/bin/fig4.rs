//! Figure 4: impact of delay and flow count on DCQCN stability (fluid).

use ecn_delay_core::experiments::fig4::{run, Fig4Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 4: DCQCN fluid stability grid (tau* x N)");
    let cfg = Fig4Config::default();
    let store = bench::store_cli::init(
        "fig4",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:>10} {:>6} {:>18} {:>18}",
        "tau* (us)", "N", "queue osc (q*)", "margin predicts"
    );
    for p in &res.panels {
        println!(
            "{:>10} {:>6} {:>18.3} {:>18}",
            p.delay_us,
            p.n_flows,
            p.queue_oscillation,
            if p.predicted_stable {
                "stable"
            } else {
                "UNSTABLE"
            }
        );
    }
    let path = bench::results_dir().join("fig4.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
