//! Figure 3: DCQCN phase margins — delay, R_AI and K_max sweeps.

use ecn_delay_core::experiments::fig3::{run, Fig3Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 3: DCQCN phase margin (degrees) vs number of flows");
    let cfg = Fig3Config::default();
    let store = bench::store_cli::init(
        "fig3",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    let table = |title: &str, curves: &[ecn_delay_core::experiments::fig3::MarginCurve]| {
        println!("\n{title}");
        print!("{:>6}", "N");
        for c in curves {
            print!("{:>16}", c.label);
        }
        println!();
        for i in 0..curves[0].points.len() {
            print!("{:>6}", curves[0].points[i].0);
            for c in curves {
                print!("{:>16.1}", c.points[i].1);
            }
            println!();
        }
    };
    table("(a) by control-loop delay", &res.by_delay);
    table("(b) by R_AI at 85 us", &res.by_r_ai);
    table("(c) by K_max at 85 us", &res.by_kmax);
    let path = bench::results_dir().join("fig3.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    // Fig 3 itself is pure frequency-domain analysis; give traces/metrics
    // the packet-level dynamics at the figure's operating point.
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.dcqcn_companion_run();
    obs.finish();
}
