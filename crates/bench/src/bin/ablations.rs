//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. DCQCN **fast recovery** (F = 5 vs none): how much of the stability /
//!    ramp behaviour comes from the five gap-halving stages;
//! 2. the **CNP coalescing timer** τ: reaction granularity vs stability;
//! 3. TIMELY **burst size** sweep beyond Figure 10's two points;
//! 4. DCQCN **g** (the α gain): convergence speed vs cut depth.

use desim::{SimDuration, SimTime};
use ecn_delay_core::write_json;
use models::dcqcn::{DcqcnFluid, DcqcnParams};
use netsim::{Engine, EngineConfig, FlowSpec, Pacing, Topology};
use protocols::{DcqcnCc, DcqcnCcParams, TimelyCc, TimelyCcParams};

struct AblationReport {
    fast_recovery: Vec<(u32, f64, f64)>,
    cnp_timer: Vec<(u64, f64, f64)>,
    burst_size: Vec<(u32, f64)>,
    alpha_gain: Vec<(f64, f64)>,
}

fn dcqcn_run(mk: impl Fn(&mut DcqcnCcParams), n: usize) -> (f64, f64) {
    let (topo, senders, receiver) = Topology::single_switch(n, 10e9, SimDuration::from_micros(1));
    let mut eng = Engine::new(topo, EngineConfig::default());
    for &s in &senders {
        let mut p = DcqcnCcParams::default();
        mk(&mut p);
        eng.add_flow(FlowSpec {
            src: s,
            dst: receiver,
            size_bytes: None,
            start: SimTime::ZERO,
            pacing: Pacing::PerPacket,
            cc: Box::new(DcqcnCc::new(p)),
            ack_chunk_bytes: 64_000,
        });
    }
    let report = eng.run(SimTime::from_millis(80));
    let goodput = report.delivered_bytes.iter().sum::<u64>() as f64 * 8.0 / 0.08 / 1e9;
    // Queue variability over the tail.
    let mut sd = 0.0;
    for tr in report.queue_traces.values() {
        let pts: Vec<f64> = tr
            .points()
            .iter()
            .filter(|&&(t, _)| t > 0.04)
            .map(|&(_, b)| b / 1000.0)
            .collect();
        if pts.len() > 2 {
            let mean = pts.iter().sum::<f64>() / pts.len() as f64;
            let var = pts.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / pts.len() as f64;
            sd = f64::max(sd, var.sqrt());
        }
    }
    (goodput, sd)
}

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Ablations");
    let store = bench::store_cli::init("ablations", "{}");
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let mut report = AblationReport {
        fast_recovery: Vec::new(),
        cnp_timer: Vec::new(),
        burst_size: Vec::new(),
        alpha_gain: Vec::new(),
    };

    // Every configuration within a section is an independent simulation:
    // run each section through the deterministic parallel executor and
    // print the ordered results afterwards.
    println!("\n(1) DCQCN fast-recovery stages (4 flows, 10 Gbps):");
    println!(
        "{:>4} {:>16} {:>18}",
        "F", "goodput (Gbps)", "queue stddev (KB)"
    );
    report.fast_recovery = desim::par::par_map(vec![0u32, 1, 5, 10], |f| {
        let (g, sd) = dcqcn_run(|p| p.fast_recovery_steps = f, 4);
        (f, g, sd)
    });
    for &(f, g, sd) in &report.fast_recovery {
        println!("{f:>4} {g:>16.2} {sd:>18.1}");
    }

    println!("\n(2) CNP coalescing timer τ (4 flows):");
    println!(
        "{:>8} {:>16} {:>18}",
        "τ (us)", "goodput (Gbps)", "queue stddev (KB)"
    );
    report.cnp_timer = desim::par::par_map(vec![10u64, 50, 200, 500], |tau| {
        let (g, sd) = dcqcn_run(
            |p| {
                p.rate_decrease_interval = SimDuration::from_micros(tau);
            },
            4,
        );
        (tau, g, sd)
    });
    for &(tau, g, sd) in &report.cnp_timer {
        println!("{tau:>8} {g:>16.2} {sd:>18.1}");
    }

    println!("\n(3) TIMELY burst size (2 flows, tail goodput):");
    println!("{:>10} {:>16}", "Seg (KB)", "goodput (Gbps)");
    report.burst_size = desim::par::par_map(vec![8_000u32, 16_000, 32_000, 64_000], |seg| {
        let (topo, senders, receiver) =
            Topology::single_switch(2, 10e9, SimDuration::from_micros(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        for &s in &senders {
            let mut p = TimelyCcParams::default();
            p.seg_bytes = seg;
            eng.add_flow(FlowSpec {
                src: s,
                dst: receiver,
                size_bytes: None,
                start: SimTime::ZERO,
                pacing: Pacing::PerChunk { seg_bytes: seg },
                cc: Box::new(TimelyCc::new(p)),
                ack_chunk_bytes: seg,
            });
        }
        let r = eng.run(SimTime::from_millis(150));
        let g = r.delivered_bytes.iter().sum::<u64>() as f64 * 8.0 / 0.15 / 1e9;
        (seg, g)
    });
    for &(seg, g) in &report.burst_size {
        println!("{:>10} {g:>16.2}", seg / 1000);
    }

    println!("\n(4) DCQCN α gain g (fluid, 2 flows @ 85 us delay — stability knob):");
    println!("{:>10} {:>22}", "g", "queue osc (x q*)");
    report.alpha_gain = desim::par::par_map(
        vec![1.0 / 1024.0, 1.0 / 256.0, 1.0 / 64.0, 1.0 / 16.0],
        |g| {
            let mut p = DcqcnParams::default_40g();
            p.feedback_delay_us = 85.0;
            p.g = g;
            let mut m = DcqcnFluid::new(p, 10);
            let fp = m.fixed_point();
            let tr = m.simulate(0.1);
            let osc = tr.peak_to_peak_from(0, 0.06) / fp.q_star_pkts.max(1.0);
            (g, osc)
        },
    );
    for &(g, osc) in &report.alpha_gain {
        println!("{g:>10.5} {osc:>22.3}");
    }

    let path = bench::results_dir().join("ablations.json");
    write_json(&path, &report).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}

ecn_delay_core::impl_to_json!(AblationReport {
    fast_recovery,
    cnp_timer,
    burst_size,
    alpha_gain
});
