//! Theorem 2 focus: convergence-rate measurement across flow counts.

use ecn_delay_core::experiments::fig6::{run, Fig6Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Theorem 2: exponential convergence of DCQCN rates");
    let store = bench::store_cli::init("thm2", "{}");
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let mut rows = Vec::new();
    for fractions in [
        vec![0.9, 0.1],
        vec![0.5, 0.3, 0.2],
        vec![0.4, 0.3, 0.2, 0.1],
    ] {
        let res = run(&Fig6Config {
            initial_fractions: fractions.clone(),
            cycles: 80,
        });
        println!(
            "{} flows: alpha*={:.4}  bound={:.4}  measured decay={:.4}  (decay ≤ bound ⇒ Theorem 2 holds)",
            fractions.len(),
            res.alpha_star,
            res.contraction_bound,
            res.measured_decay
        );
        rows.push((
            fractions.len(),
            res.alpha_star,
            res.contraction_bound,
            res.measured_decay,
        ));
    }
    let path = bench::results_dir().join("thm2.json");
    write_json(&path, &rows).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
