//! Extension: datacenter-scale incast FCT on fat-tree topologies.
//!
//! Runs the `ext_incast` sweep — an N:1 incast burst on a k-ary fat-tree,
//! FCT distribution and engine scale probe per `(protocol, fan-in)` cell —
//! and writes `results/ext_incast.json`. Every cell prints a 64-bit digest
//! of its exact FCT bit patterns; the CI `incast-smoke` job compares these
//! digests (and full `--trace` output) across `SIM_THREADS` settings.
//!
//! Flags (all optional, combinable with `--trace` / `--metrics`):
//!
//! * `--k <arity>` — fat-tree arity (even, 4..=16; default 8, k³/4 hosts);
//! * `--senders <csv>` — fan-in degrees to sweep (default `64,256,1024`);
//! * `--bytes <n>` — response size per sender (default 32000);
//! * `--seed <n>` — burst/engine seed (default 1);
//! * `--identity-check` — additionally run the zero-fault bit-identity
//!   probe (engine with no fault plane vs an installed empty schedule) on
//!   the smallest fan-in; a digest mismatch exits with status 3.

use ecn_delay_core::experiments::ext_incast::{run, run_zero_fault_identity, ExtIncastConfig};
use ecn_delay_core::write_json;

/// Minimal flag parser over the process arguments; unknown flags are left
/// for `bench::obs_cli` (which has already consumed `--trace`/`--metrics`).
struct Flags {
    k: usize,
    senders: Vec<usize>,
    bytes: u64,
    seed: u64,
    identity_check: bool,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        k: 8,
        senders: vec![64, 256, 1024],
        bytes: 32_000,
        seed: 1,
        identity_check: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--k" => flags.k = value("--k").parse().expect("--k: integer arity"),
            "--senders" => {
                flags.senders = value("--senders")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--senders: csv of integers"))
                    .collect();
            }
            "--bytes" => flags.bytes = value("--bytes").parse().expect("--bytes: integer"),
            "--seed" => flags.seed = value("--seed").parse().expect("--seed: integer"),
            "--identity-check" => flags.identity_check = true,
            _ => {} // obs flags, handled by bench::obs_cli::init
        }
    }
    flags
}

fn main() {
    let obs = bench::obs_cli::init();
    let flags = parse_flags();
    let cfg = ExtIncastConfig {
        k: flags.k,
        sender_counts: flags.senders.clone(),
        bytes_per_sender: flags.bytes,
        seed: flags.seed,
        ..Default::default()
    };
    bench::banner("Extension: fat-tree incast FCT at scale");
    let hosts = flags.k * flags.k * flags.k / 4;
    println!(
        "k={} fat-tree ({hosts} hosts), {} B/sender, seed {}\n",
        cfg.k, cfg.bytes_per_sender, cfg.seed
    );
    let res = run(&cfg);
    println!(
        "{:<15} {:>7} {:>6} {:>11} {:>11} {:>9} {:>10}  digest",
        "protocol", "fan-in", "done", "median (ms)", "p99 (ms)", "Gbps", "events"
    );
    for c in &res.cells {
        println!(
            "{:<15} {:>7} {:>6} {:>11.3} {:>11.3} {:>9.2} {:>10}  {}",
            c.protocol,
            c.n_senders,
            c.completed,
            c.median_fct_ms,
            c.p99_fct_ms,
            c.goodput_gbps,
            c.events_processed,
            c.digest
        );
    }
    let path = bench::results_dir().join("ext_incast.json");
    write_json(&path, &res).expect("write results");
    println!("results -> {}", path.display());

    if flags.identity_check {
        let n = flags.senders.iter().copied().min().unwrap_or(64);
        let (none, empty) = run_zero_fault_identity(&cfg, n);
        println!("zero-fault identity ({n}:1): none={none} empty={empty}");
        if none != empty {
            eprintln!("ext_incast: empty fault schedule perturbed the simulation");
            obs.finish();
            std::process::exit(3);
        }
        println!("zero-fault identity: ok");
    }
    obs.finish();
}
