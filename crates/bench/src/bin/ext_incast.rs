//! Extension: datacenter-scale incast FCT on fat-tree topologies.
//!
//! Runs the `ext_incast` sweep — an N:1 incast burst on a k-ary fat-tree,
//! FCT distribution and engine scale probe per `(protocol, fan-in)` cell —
//! and writes `results/ext_incast.json`. Every cell prints a 64-bit digest
//! of its exact FCT bit patterns; the CI `incast-smoke` job compares these
//! digests (and full `--trace` output) across `SIM_THREADS` settings.
//!
//! The sweep runs under the supervised executor: a cell that panics or
//! exceeds `--deadline-s` is isolated into its own slot (reported in the
//! `failed` table, exit status 4) while its batchmates complete normally.
//! With `--store <dir>` each *cell* is cached individually, so a killed
//! sweep resumes from its finished cells on rerun.
//!
//! Flags (all optional, combinable with `--trace` / `--metrics` /
//! `--store` / `--no-store`):
//!
//! * `--k <arity>` — fat-tree arity (even, 4..=16; default 8, k³/4 hosts);
//! * `--senders <csv>` — fan-in degrees to sweep (default `64,256,1024`;
//!   senders beyond the k³/4 hosts wrap round-robin, bounded at 64 flows
//!   per host);
//! * `--bytes <n>` — response size per sender (default 32000, ≥ 1);
//! * `--seed <n>` — burst/engine seed (default 1);
//! * `--deadline-s <secs>` — per-cell watchdog deadline (default: none);
//! * `--inject-panic <i>` / `--inject-hang <i>` — fault-injection hooks for
//!   the CI supervision job: sweep cell `i` panics (or hangs) instead of
//!   simulating;
//! * `--identity-check` — additionally run the zero-fault bit-identity
//!   probe (engine with no fault plane vs an installed empty schedule) on
//!   the smallest fan-in; a digest mismatch exits with status 3.
//!
//! Malformed or out-of-range flags exit with status 2 after printing a
//! one-line JSON diagnostic (`{"error": "invalid_usage", ...}`) to stderr.

use ecn_delay_core::experiments::ext_incast::{
    run_supervised, run_zero_fault_identity, ExtIncastConfig, SuperviseOpts,
};
use ecn_delay_core::write_json;

/// Senders wrap round-robin over the fat-tree's hosts, but a fan-in past
/// this many flows per host is rejected as out of range.
const MAX_FLOWS_PER_HOST: usize = 64;

/// Minimal flag parser over the process arguments; unknown flags are left
/// for `bench::obs_cli` / `bench::store_cli`.
struct Flags {
    k: usize,
    senders: Vec<usize>,
    bytes: u64,
    seed: u64,
    identity_check: bool,
    supervise: SuperviseOpts,
}

/// A rejected invocation: which flag and why. Rendered as a structured
/// one-line diagnostic so scripts can tell usage errors from sim failures.
struct Usage {
    flag: &'static str,
    reason: String,
}

impl Usage {
    fn new(flag: &'static str, reason: impl Into<String>) -> Self {
        Usage {
            flag,
            reason: reason.into(),
        }
    }
}

fn parse_flags() -> Result<Flags, Usage> {
    let mut flags = Flags {
        k: 8,
        senders: vec![64, 256, 1024],
        bytes: 32_000,
        seed: 1,
        identity_check: false,
        supervise: SuperviseOpts::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        // `--store <dir>` takes a value that must not be mistaken for a
        // flag; skip the pair here (store_cli parses it for real).
        if a == "--store" || a == "--trace" || a == "--metrics" {
            argv.next();
            continue;
        }
        let flag: &'static str = match a.as_str() {
            "--k" => "--k",
            "--senders" => "--senders",
            "--bytes" => "--bytes",
            "--seed" => "--seed",
            "--deadline-s" => "--deadline-s",
            "--inject-panic" => "--inject-panic",
            "--inject-hang" => "--inject-hang",
            "--identity-check" => {
                flags.identity_check = true;
                continue;
            }
            _ => continue, // obs/store flags without values, or unknown
        };
        let raw = argv
            .next()
            .ok_or_else(|| Usage::new(flag, "missing value"))?;
        let int = |what: &'static str| -> Result<u64, Usage> {
            raw.parse::<u64>()
                .map_err(|_| Usage::new(what, format!("expected an integer, got {raw:?}")))
        };
        match flag {
            "--k" => flags.k = int("--k")? as usize,
            "--senders" => {
                let mut senders = Vec::new();
                for part in raw.split(',') {
                    let n: u64 = part.trim().parse().map_err(|_| {
                        Usage::new(
                            "--senders",
                            format!("expected a csv of integers, got {part:?}"),
                        )
                    })?;
                    senders.push(n as usize);
                }
                flags.senders = senders;
            }
            "--bytes" => flags.bytes = int("--bytes")?,
            "--seed" => flags.seed = int("--seed")?,
            "--deadline-s" => {
                let d: f64 = raw.parse().map_err(|_| {
                    Usage::new("--deadline-s", format!("expected seconds, got {raw:?}"))
                })?;
                if !(d.is_finite() && d > 0.0) {
                    return Err(Usage::new(
                        "--deadline-s",
                        format!("deadline must be a positive finite number of seconds, got {raw}"),
                    ));
                }
                flags.supervise.deadline_s = Some(d);
            }
            "--inject-panic" => {
                flags.supervise.inject_panic = Some(int("--inject-panic")? as usize)
            }
            "--inject-hang" => flags.supervise.inject_hang = Some(int("--inject-hang")? as usize),
            _ => unreachable!("flag list above is exhaustive"),
        }
    }

    // Semantic validation: keep impossible sweeps out of the engine.
    if flags.k < 4 || flags.k > 16 || !flags.k.is_multiple_of(2) {
        return Err(Usage::new(
            "--k",
            format!("fat-tree arity must be even and in 4..=16, got {}", flags.k),
        ));
    }
    if flags.senders.is_empty() {
        return Err(Usage::new("--senders", "at least one fan-in is required"));
    }
    // Senders beyond the host count wrap round-robin over the hosts (a
    // host can source several response flows), but only up to a bounded
    // oversubscription — past that the "sweep" is a typo, not a scenario.
    let hosts = flags.k * flags.k * flags.k / 4;
    let capacity = hosts * MAX_FLOWS_PER_HOST;
    for &n in &flags.senders {
        if n < 1 || n > capacity {
            return Err(Usage::new(
                "--senders",
                format!(
                    "fan-in {n} exceeds the k={} fat-tree's capacity: {hosts} hosts \
                     source at most {capacity} wrapped senders \
                     ({MAX_FLOWS_PER_HOST} flows per host); need 1..={capacity}",
                    flags.k
                ),
            ));
        }
    }
    if flags.bytes == 0 {
        return Err(Usage::new(
            "--bytes",
            "response size must be at least 1 byte",
        ));
    }
    Ok(flags)
}

fn main() {
    let obs = bench::obs_cli::init();
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(u) => {
            let reason = u.reason.replace('\\', "\\\\").replace('"', "\\\"");
            eprintln!("ext_incast: {}: {}", u.flag, u.reason);
            eprintln!(
                "{{\"error\": \"invalid_usage\", \"flag\": \"{}\", \"reason\": \"{}\"}}",
                u.flag, reason
            );
            std::process::exit(2);
        }
    };
    let cfg = ExtIncastConfig {
        k: flags.k,
        sender_counts: flags.senders.clone(),
        bytes_per_sender: flags.bytes,
        seed: flags.seed,
        ..Default::default()
    };
    // The sweep caches per cell, not per figure: pass the raw store through
    // and let `run_supervised` key each (protocol, fan-in) cell separately.
    let store = bench::store_cli::init(
        "ext_incast",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    bench::banner("Extension: fat-tree incast FCT at scale");
    let hosts = flags.k * flags.k * flags.k / 4;
    println!(
        "k={} fat-tree ({hosts} hosts), {} B/sender, seed {}\n",
        cfg.k, cfg.bytes_per_sender, cfg.seed
    );
    let res = run_supervised(&cfg, &flags.supervise, store.store());
    println!(
        "{:<15} {:>7} {:>6} {:>11} {:>11} {:>9} {:>10}  digest",
        "protocol", "fan-in", "done", "median (ms)", "p99 (ms)", "Gbps", "events"
    );
    for c in &res.cells {
        println!(
            "{:<15} {:>7} {:>6} {:>11.3} {:>11.3} {:>9.2} {:>10}  {}",
            c.protocol,
            c.n_senders,
            c.completed,
            c.median_fct_ms,
            c.p99_fct_ms,
            c.goodput_gbps,
            c.events_processed,
            c.digest
        );
    }
    if !res.failed.is_empty() {
        println!("\nfailed cells (isolated by the supervisor):");
        for f in &res.failed {
            println!(
                "{:<15} {:>7}  {:<12} {}",
                f.protocol, f.n_senders, f.kind, f.error
            );
        }
    }
    let path = bench::results_dir().join("ext_incast.json");
    write_json(&path, &res).expect("write results");
    println!("results -> {}", path.display());
    store.finish();

    if flags.identity_check {
        let n = flags.senders.iter().copied().min().unwrap_or(64);
        let (none, empty) = run_zero_fault_identity(&cfg, n);
        println!("zero-fault identity ({n}:1): none={none} empty={empty}");
        if none != empty {
            eprintln!("ext_incast: empty fault schedule perturbed the simulation");
            obs.finish();
            std::process::exit(3);
        }
        println!("zero-fault identity: ok");
    }
    let n_failed = res.failed.len();
    obs.finish();
    if n_failed > 0 {
        eprintln!("ext_incast: {n_failed} cell(s) failed under supervision (see table above)");
        std::process::exit(4);
    }
}
