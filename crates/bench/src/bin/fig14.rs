//! Figure 14: small-flow FCT (median, p90) vs load for the three protocols.

use ecn_delay_core::experiments::fig14::{run, Fig14Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 14: small-flow FCT vs load (dumbbell, 10 Gbps)");
    let cfg = Fig14Config::default();
    let store = bench::store_cli::init(
        "fig14",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:<16} {:>6} {:>14} {:>14} {:>8} {:>8}",
        "protocol", "load", "median (ms)", "p90 (ms)", "flows", "util"
    );
    for c in &res.curves {
        for i in 0..c.median_ms.len() {
            println!(
                "{:<16} {:>6} {:>14.3} {:>14.3} {:>8} {:>8.3}",
                c.protocol,
                c.median_ms[i].0,
                c.median_ms[i].1,
                c.p90_ms[i].1,
                c.small_counts[i].1,
                c.utilization[i].1
            );
        }
    }
    let path = bench::results_dir().join("fig14.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
