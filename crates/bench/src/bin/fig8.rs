//! Figure 8: TIMELY fluid model vs packet-level simulation.

use ecn_delay_core::experiments::fig8::{run, Fig8Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 8: TIMELY fluid model vs packet simulation (10 Gbps)");
    let cfg = Fig8Config::default();
    let store = bench::store_cli::init(
        "fig8",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for p in &res.panels {
        println!("\nN = {} flows:", p.n_flows);
        println!(
            "  tail queue      : fluid {:8.1} KB | sim {:8.1} KB",
            p.tail_queues_kb.0, p.tail_queues_kb.1
        );
        println!(
            "  aggregate rate  : fluid {:8.2} Gbps | sim {:8.2} Gbps",
            p.tail_agg_gbps.0, p.tail_agg_gbps.1
        );
        bench::print_series("fluid queue (KB)", &p.fluid_queue_kb, 10);
        bench::print_series("sim queue (KB)", &p.sim_queue_kb, 10);
    }
    let path = bench::results_dir().join("fig8.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
