//! Figure 6 + Theorem 2: discrete AIMD model and exponential convergence.

use ecn_delay_core::experiments::fig6::{run, Fig6Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 6 / Theorem 2: discrete AIMD convergence");
    let cfg = Fig6Config::default();
    let store = bench::store_cli::init(
        "fig6",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!("alpha* (Eq 42)              = {:.5}", res.alpha_star);
    println!("contraction bound (1-a*/2)  = {:.5}", res.contraction_bound);
    println!("measured per-cycle decay    = {:.5}", res.measured_decay);
    println!(
        "\n{:>6} {:>16} {:>10}",
        "cycle", "rate gap (Gbps)", "mean α"
    );
    for &(k, gap, a) in res.convergence.iter().step_by(5) {
        println!("{k:>6} {gap:>16.4} {a:>10.5}");
    }
    let path = bench::results_dir().join("fig6.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
