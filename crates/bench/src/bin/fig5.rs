//! Figure 5: DCQCN packet-level instability at ~85 us feedback delay.

use ecn_delay_core::experiments::fig5::{run, Fig5Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 5: packet-level DCQCN instability (85 us loop)");
    let cfg = Fig5Config::default();
    let store = bench::store_cli::init(
        "fig5",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for p in &res.panels {
        println!(
            "N = {:>3}: tail queue peak-to-peak = {:8.1} KB",
            p.n_flows, p.queue_p2p_kb
        );
        bench::print_series("queue (KB)", &p.queue_kb, 10);
    }
    let path = bench::results_dir().join("fig5.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
