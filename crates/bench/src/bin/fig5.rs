//! Figure 5: DCQCN packet-level instability at ~85 us feedback delay.

use ecn_delay_core::experiments::fig5::{run, Fig5Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 5: packet-level DCQCN instability (85 us loop)");
    let res = run(&Fig5Config::default());
    for p in &res.panels {
        println!(
            "N = {:>3}: tail queue peak-to-peak = {:8.1} KB",
            p.n_flows, p.queue_p2p_kb
        );
        bench::print_series("queue (KB)", &p.queue_kb, 10);
    }
    let path = bench::results_dir().join("fig5.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    obs.finish();
}
