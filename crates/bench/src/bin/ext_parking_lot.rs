//! Extension: multi-bottleneck parking lot (the paper's future work).

use ecn_delay_core::experiments::ext_parking_lot::{run, ParkingLotConfig};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Extension: DCQCN on a 3-hop parking lot");
    let cfg = ParkingLotConfig::default();
    let store = bench::store_cli::init(
        "ext_parking_lot",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!("long flow tail rate : {:.2} Gbps", res.long_tail_gbps);
    for (h, &c) in res.cross_tail_gbps.iter().enumerate() {
        println!(
            "hop {h}: cross flow {:.2} Gbps, utilization {:.3}",
            c, res.hop_utilization[h]
        );
    }
    println!("\nthe multi-hop flow takes less than the per-hop fair share (classic");
    println!("parking-lot outcome) but does not starve; every hop stays utilized.");
    let path = bench::results_dir().join("ext_parking_lot.json");
    write_json(&path, &res).expect("write results");
    println!("results -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
