//! Figure 16: bottleneck queue at load 0.8.

use ecn_delay_core::experiments::fig16::{run, Fig16Config};
use ecn_delay_core::{write_json, write_series_csv};

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 16: bottleneck queue, load = 0.8");
    let cfg = Fig16Config::default();
    let store = bench::store_cli::init(
        "fig16",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for (name, mean, p99, max) in &res.summary {
        println!("{name:<16}: mean={mean:8.1} KB  p99={p99:8.1} KB  max={max:8.1} KB");
    }
    for (name, series) in &res.queues_kb {
        bench::print_series(&format!("{name} queue (KB)"), series, 10);
    }
    let path = bench::results_dir().join("fig16.json");
    write_json(&path, &res).expect("write results");
    for (name, series) in &res.queues_kb {
        let csv = bench::results_dir().join(format!("fig16_{}.csv", name.to_lowercase()));
        write_series_csv(&csv, "t_s", &[("queue_kb", series.as_slice())]).expect("write csv");
    }
    println!("\nresults -> {}", path.display());
    let mut artifacts = vec![path.clone()];
    for (name, _) in &res.queues_kb {
        artifacts.push(bench::results_dir().join(format!("fig16_{}.csv", name.to_lowercase())));
    }
    store.record(&artifacts);
    store.finish();
    obs.finish();
}
