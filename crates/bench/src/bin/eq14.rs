//! Eq 14 table: closed-form p* vs the exact Eq 11 root.

use ecn_delay_core::experiments::eq14::{run, Eq14Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Eq 14: p* approximation vs exact fixed point");
    let cfg = Eq14Config::default();
    let store = bench::store_cli::init(
        "eq14",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>10} {:>10} {:>6}",
        "C (Gbps)", "N", "p* exact", "p* approx", "rel err", "q* (KB)", "sat?"
    );
    for r in &res.rows {
        println!(
            "{:>8} {:>6} {:>12.6} {:>12.6} {:>10.3} {:>10.1} {:>6}",
            r.capacity_gbps,
            r.n_flows,
            r.p_exact,
            r.p_approx,
            r.rel_error,
            r.q_star_kb,
            if r.saturated { "yes" } else { "no" }
        );
    }
    let path = bench::results_dir().join("eq14.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
