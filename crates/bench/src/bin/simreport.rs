//! `simreport` — inspect, diff and gate the workspace's telemetry artifacts.
//!
//! ```text
//! simreport render <timeseries.jsonl> [--width N]
//! simreport diff <a.jsonl> <b.jsonl>
//! simreport bench-check [--pct N] [--sha SHA] [--selftest] <BENCH_*.json>...
//! ```
//!
//! * `render` turns a `--timeseries` export into sparklines (one per
//!   `(name, key, ctx)` series) and percentile rows for its histograms.
//! * `diff` compares two JSONL exports (trace, time-series or flight) and
//!   localizes the first diverging `(ctx, seq)` event — the debugger behind
//!   CI's byte-identity `cmp` gates. Exit 1 when the files diverge.
//! * `bench-check` is the regression sentinel: every row in the given
//!   `BENCH_*.json` reports carrying the fresh sha (default: the sha of the
//!   file's last row) is compared against the median of its name's
//!   other-sha history; medians more than `--pct` (default 15) percent
//!   worse fail the check. `*per_sec*` rows are higher-is-better, all other
//!   rows lower-is-better. Exit 1 on any regression. `--selftest` runs the
//!   sentinel against synthetic histories (a 20% regression must fail, an
//!   identical re-measurement must pass) and exits accordingly — CI wires
//!   this in so a broken sentinel cannot silently wave regressions through.
//!
//! Usage errors exit 2.

use bench::report;

fn usage() -> ! {
    eprintln!(
        "usage: simreport render <timeseries.jsonl> [--width N]\n       \
         simreport diff <a.jsonl> <b.jsonl>\n       \
         simreport bench-check [--pct N] [--sha SHA] [--selftest] <BENCH_*.json>..."
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("simreport: read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("render") => cmd_render(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("bench-check") => cmd_bench_check(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

fn cmd_render(args: &[String]) -> i32 {
    let mut path = None;
    let mut width = 64usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--width" => {
                width = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            p if !p.starts_with('-') => path = Some(p.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    print!("{}", report::render_timeseries(&read(&path), width));
    0
}

fn cmd_diff(args: &[String]) -> i32 {
    let [a, b] = args else { usage() };
    match report::diff_jsonl(&read(a), &read(b)) {
        None => {
            println!("identical: {a} == {b}");
            0
        }
        Some(d) => {
            println!("first divergence at line {}", d.line);
            if let Some((ctx, seq)) = d.ctx_seq {
                println!("event: ctx={ctx} seq={seq}");
            }
            println!("- {}\n+ {}", d.a, d.b);
            1
        }
    }
}

fn cmd_bench_check(args: &[String]) -> i32 {
    let mut pct = 15.0f64;
    let mut sha: Option<String> = None;
    let mut paths = Vec::new();
    let mut selftest = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pct" => {
                pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--sha" => sha = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--selftest" => selftest = true,
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => usage(),
        }
    }
    if selftest {
        return sentinel_selftest(pct);
    }
    if paths.is_empty() {
        usage();
    }
    let mut regressed = false;
    for p in &paths {
        let rows = report::bench_check(&read(p), sha.as_deref(), pct);
        println!("== {p} ==");
        print!("{}", report::render_check(&rows, pct));
        regressed |= rows.iter().any(|r| r.regressed);
    }
    i32::from(regressed)
}

/// Prove the sentinel can still catch (and still pass) before trusting it:
/// a synthetic 20% wall-time regression and a 20% rate drop must both fail
/// at the configured threshold, while identical re-measurements pass.
fn sentinel_selftest(pct: f64) -> i32 {
    let mk = |fresh_ns: u64, fresh_rate: u64| -> String {
        format!(
            "[\n  {{\"name\": \"kernel/pop\", \"min_ns\": 1000, \"mean_ns\": 1000, \"median_ns\": 1000, \"iters\": 3, \"sha\": \"base\"}},\n  \
             {{\"name\": \"netsim/events_per_sec_x\", \"min_ns\": 5000, \"mean_ns\": 5000, \"median_ns\": 5000, \"iters\": 1, \"sha\": \"base\"}},\n  \
             {{\"name\": \"kernel/pop\", \"min_ns\": {fresh_ns}, \"mean_ns\": {fresh_ns}, \"median_ns\": {fresh_ns}, \"iters\": 3, \"sha\": \"fresh\"}},\n  \
             {{\"name\": \"netsim/events_per_sec_x\", \"min_ns\": {fresh_rate}, \"mean_ns\": {fresh_rate}, \"median_ns\": {fresh_rate}, \"iters\": 1, \"sha\": \"fresh\"}}\n]\n"
        )
    };
    let regressed = report::bench_check(&mk(1200, 4000), Some("fresh"), pct);
    let clean = report::bench_check(&mk(1000, 5000), Some("fresh"), pct);
    let caught = regressed.iter().filter(|r| r.regressed).count();
    let false_pos = clean.iter().filter(|r| r.regressed).count();
    println!(
        "sentinel selftest at {pct}%: caught {caught}/2 synthetic regressions, \
         {false_pos} false positives on identical rows"
    );
    if caught == 2 && false_pos == 0 {
        println!("sentinel selftest: PASS");
        0
    } else {
        println!("sentinel selftest: FAIL");
        1
    }
}
