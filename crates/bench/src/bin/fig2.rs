//! Figure 2: DCQCN fluid model vs packet-level simulation.

use ecn_delay_core::experiments::fig2::{run, Fig2Config};
use ecn_delay_core::{write_json, write_series_csv};

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 2: DCQCN fluid model vs packet simulation (40 Gbps)");
    let cfg = Fig2Config::default();
    let store = bench::store_cli::init(
        "fig2",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for p in &res.panels {
        println!("\nN = {} flows:", p.n_flows);
        println!(
            "  tail flow rate   : fluid {:8.2} Gbps | sim {:8.2} Gbps | fair share {:8.2} Gbps",
            p.tail_rates_gbps.0,
            p.tail_rates_gbps.1,
            cfg.bandwidth_gbps / p.n_flows as f64
        );
        println!(
            "  tail queue       : fluid {:8.1} KB   | sim {:8.1} KB",
            p.tail_queues_kb.0, p.tail_queues_kb.1
        );
        bench::print_series("fluid queue (KB)", &p.fluid_queue_kb, 12);
        bench::print_series("sim queue (KB)", &p.sim_queue_kb, 12);
    }
    let path = bench::results_dir().join("fig2.json");
    write_json(&path, &res).expect("write results");
    for p in &res.panels {
        let csv = bench::results_dir().join(format!("fig2_n{}_queue.csv", p.n_flows));
        write_series_csv(
            &csv,
            "t_s",
            &[
                ("fluid_queue_kb", p.fluid_queue_kb.as_slice()),
                ("sim_queue_kb", p.sim_queue_kb.as_slice()),
            ],
        )
        .expect("write csv");
    }
    println!("\nresults -> {} (+ per-N CSV)", path.display());
    let mut artifacts = vec![path.clone()];
    for p in &res.panels {
        artifacts.push(bench::results_dir().join(format!("fig2_n{}_queue.csv", p.n_flows)));
    }
    store.record(&artifacts);
    store.finish();
    obs.finish();
}
