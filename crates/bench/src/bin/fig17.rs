//! Figure 17: ingress vs egress ECN marking (packet-level DCQCN).

use ecn_delay_core::experiments::fig17::{run, Fig17Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 17: DCQCN with egress vs ingress marking (85 us loop)");
    let res = run(&Fig17Config::default());
    println!(
        "tail queue std-dev: egress {:8.1} KB | ingress {:8.1} KB",
        res.queue_stddev_kb.0, res.queue_stddev_kb.1
    );
    bench::print_series("egress queue (KB)", &res.egress_queue_kb, 10);
    bench::print_series("ingress queue (KB)", &res.ingress_queue_kb, 10);
    let path = bench::results_dir().join("fig17.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    obs.finish();
}
