//! Figure 17: ingress vs egress ECN marking (packet-level DCQCN).

use ecn_delay_core::experiments::fig17::{run, Fig17Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 17: DCQCN with egress vs ingress marking (85 us loop)");
    let cfg = Fig17Config::default();
    let store = bench::store_cli::init(
        "fig17",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "tail queue std-dev: egress {:8.1} KB | ingress {:8.1} KB",
        res.queue_stddev_kb.0, res.queue_stddev_kb.1
    );
    bench::print_series("egress queue (KB)", &res.egress_queue_kb, 10);
    bench::print_series("ingress queue (KB)", &res.ingress_queue_kb, 10);
    let path = bench::results_dir().join("fig17.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
