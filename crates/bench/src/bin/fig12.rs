//! Figure 12: Patched TIMELY time-domain behaviour.

use ecn_delay_core::experiments::fig12::{run, Fig12Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 12: Patched TIMELY convergence and stability");
    let cfg = Fig12Config::default();
    let store = bench::store_cli::init(
        "fig12",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "(a) 7 vs 3 Gbps start -> tail share of flow 0 = {:.3} (0.5 = fair)",
        res.panel_a_share
    );
    println!(
        "(b) N=16 queue oscillation (x q*) = {:.3}",
        res.panel_b_oscillation
    );
    println!(
        "(c) N=64 queue oscillation (x q*) = {:.3}",
        res.panel_c_oscillation
    );
    bench::print_series("(b) queue KB", &res.panel_b_queue_kb, 10);
    bench::print_series("(c) queue KB", &res.panel_c_queue_kb, 10);
    let path = bench::results_dir().join("fig12.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
