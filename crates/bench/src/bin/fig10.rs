//! Figure 10: TIMELY burst pacing (16 KB vs 64 KB chunks).

use ecn_delay_core::experiments::fig10::{run, Fig10Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 10: impact of per-burst pacing on TIMELY");
    let cfg = Fig10Config::default();
    let store = bench::store_cli::init(
        "fig10",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for p in &res.panels {
        println!(
            "Seg = {:>6} B: early (0-50ms) aggregate {:6.2} Gbps | tail aggregate {:6.2} Gbps",
            p.seg_bytes, p.early_agg_gbps, p.tail_agg_gbps
        );
        bench::print_series("queue (KB)", &p.queue_kb, 10);
    }
    let path = bench::results_dir().join("fig10.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
