//! Regenerate every figure (paper-scale configurations).
//!
//! The figure binaries are independent processes, so they run as a bounded
//! parallel job pool via [`desim::par::par_map`]. Each child is pinned to
//! `SIM_THREADS=1` — the parallelism budget is spent at the process level,
//! and nesting would oversubscribe the machine. Captured stdout/stderr are
//! replayed in the fixed figure order once everything finishes, so the
//! output (and the `results/` JSON) is identical to the serial run.
//!
//! `--trace <dir>` / `--metrics <dir>` are accepted like in the individual
//! figure binaries, but interpreted as *directories*: each child figure is
//! launched with `--trace <dir>/<fig>_trace.jsonl` and/or
//! `--metrics <dir>/<fig>_metrics.json`.
//!
//! `--store <dir>` / `--no-store` are forwarded verbatim: the children share
//! one store directory (records are keyed by experiment id, so they never
//! collide), which makes the whole regeneration resumable — kill it halfway
//! and rerun, and the finished figures are served from disk.

use std::path::PathBuf;
use std::process::Command;

/// Parsed pass-through flags for the child figures.
struct Dirs {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    store: Option<PathBuf>,
    no_store: bool,
}

/// Parse `--trace`/`--metrics`/`--store` directories (created up front) and
/// the `--no-store` override.
fn obs_dirs() -> Dirs {
    let mut argv = std::env::args().skip(1);
    let mut dirs = Dirs {
        trace: None,
        metrics: None,
        store: None,
        no_store: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace" => {
                dirs.trace = Some(PathBuf::from(argv.next().expect("--trace needs a dir")))
            }
            "--metrics" => {
                dirs.metrics = Some(PathBuf::from(argv.next().expect("--metrics needs a dir")));
            }
            "--store" => {
                dirs.store = Some(PathBuf::from(argv.next().expect("--store needs a dir")))
            }
            "--no-store" => dirs.no_store = true,
            _ => {}
        }
    }
    for d in [&dirs.trace, &dirs.metrics, &dirs.store]
        .into_iter()
        .flatten()
    {
        std::fs::create_dir_all(d).unwrap_or_else(|e| panic!("create {}: {e}", d.display()));
    }
    dirs
}

fn main() {
    let dirs = obs_dirs();
    let (trace_dir, metrics_dir) = (dirs.trace, dirs.metrics);
    let (store_dir, no_store) = (dirs.store, dirs.no_store);
    let figs = [
        "eq14",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "thm2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "ext_pi_packet",
        "ext_parking_lot",
        "ext_pfc",
        "ext_faults",
        "ablations",
        "appendix_b",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let outputs = desim::par::par_map(figs.to_vec(), |f| {
        let bin = exe_dir.join(f);
        let mut cmd = Command::new(&bin);
        cmd.env("SIM_THREADS", "1");
        if let Some(d) = &trace_dir {
            cmd.arg("--trace").arg(d.join(format!("{f}_trace.jsonl")));
        }
        if let Some(d) = &metrics_dir {
            cmd.arg("--metrics")
                .arg(d.join(format!("{f}_metrics.json")));
        }
        if let Some(d) = &store_dir {
            cmd.arg("--store").arg(d);
        }
        if no_store {
            cmd.arg("--no-store");
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        (f, out)
    });
    let mut failed = Vec::new();
    for (f, out) in &outputs {
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&out.stderr));
        }
        if !out.status.success() {
            failed.push(*f);
        }
    }
    // Graceful degradation: the successful figures' JSON is already on disk
    // at this point — report the failures and exit nonzero instead of
    // aborting, so a single bad figure never hides the rest of the output.
    if !failed.is_empty() {
        eprintln!(
            "{}/{} figures failed: {failed:?} (the remaining {} completed and wrote results/)",
            failed.len(),
            outputs.len(),
            outputs.len() - failed.len()
        );
        std::process::exit(1);
    }
    println!("\nall figures regenerated; JSON in results/");
}
