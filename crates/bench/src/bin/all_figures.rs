//! Regenerate every figure (paper-scale configurations).
//!
//! The figure binaries are independent processes, so they run as a bounded
//! parallel job pool via [`desim::par::par_map`]. Each child is pinned to
//! `SIM_THREADS=1` — the parallelism budget is spent at the process level,
//! and nesting would oversubscribe the machine. Captured stdout/stderr are
//! replayed in the fixed figure order once everything finishes, so the
//! output (and the `results/` JSON) is identical to the serial run.

use std::process::Command;

fn main() {
    let figs = [
        "eq14",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "thm2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "ext_pi_packet",
        "ext_parking_lot",
        "ext_pfc",
        "ablations",
        "appendix_b",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let outputs = desim::par::par_map(figs.to_vec(), |f| {
        let bin = exe_dir.join(f);
        let out = Command::new(&bin)
            .env("SIM_THREADS", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        (f, out)
    });
    let mut failed = Vec::new();
    for (f, out) in &outputs {
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&out.stderr));
        }
        if !out.status.success() {
            failed.push(*f);
        }
    }
    assert!(failed.is_empty(), "figures failed: {failed:?}");
    println!("\nall figures regenerated; JSON in results/");
}
