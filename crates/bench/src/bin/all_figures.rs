//! Regenerate every figure in sequence (paper-scale configurations).

use std::process::Command;

fn main() {
    let figs = [
        "eq14",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "thm2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "ext_pi_packet",
        "ext_parking_lot",
        "ext_pfc",
        "ablations",
        "appendix_b",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for f in figs {
        let bin = exe_dir.join(f);
        let status = Command::new(&bin)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        assert!(status.success(), "{f} failed");
    }
    println!("\nall figures regenerated; JSON in results/");
}
