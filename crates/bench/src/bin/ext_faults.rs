//! Extension: deterministic fault injection and graceful degradation.
//!
//! Two modes:
//!
//! * default — run the full experiment: the DCQCN vs patched-TIMELY
//!   degradation matrix, the Figure-10-style delay-spike collapse, and the
//!   fluid divergence-watchdog sweep; results land in
//!   `results/ext_faults.json`.
//! * `--faults <spec.json>` — parse a fault-schedule document (schema in
//!   `faults::spec`), install it on the canned 4-flow DCQCN scenario, and
//!   report what the fault plane did. A malformed spec or an invalid
//!   schedule exits with status 2 and a descriptive error — never a panic.
//!   The watchdog sweep still runs, so both degradation paths (packet and
//!   fluid) are exercised in one invocation.
//!
//! `--trace` / `--metrics` work as in every figure binary; traces are
//! byte-identical across `SIM_THREADS` settings in both modes.

use desim::{SimDuration, SimTime};
use ecn_delay_core::experiments::ext_faults::{run, run_watchdog_sweep, ExtFaultsConfig};
use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
use ecn_delay_core::write_json;
use netsim::EngineConfig;

/// Parse `--faults <path>` from the process arguments (other flags are the
/// obs ones, handled by `bench::obs_cli`).
fn faults_flag() -> Option<std::path::PathBuf> {
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        if a == "--faults" {
            return Some(std::path::PathBuf::from(
                argv.next().expect("--faults requires a file path"),
            ));
        }
    }
    None
}

/// Print the watchdog sweep — one line per gain, `ok` or the structured
/// divergence error. The CI smoke job greps these lines to confirm a
/// divergent fluid run degrades to a recorded `Err` instead of a panic.
fn print_watchdog(points: &[ecn_delay_core::experiments::ext_faults::WatchdogPoint]) {
    println!("\ndivergence watchdog (x' = g.x(t - 100ms), 1.5 s horizon):");
    for p in points {
        println!(
            "watchdog: gain={:>7.1}/s -> {} ({})",
            p.gain_per_s,
            if p.ok { "ok" } else { "Err" },
            p.detail
        );
    }
}

/// `--faults` mode: run the canned DCQCN scenario under the given spec.
fn run_spec(path: &std::path::Path) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let schedule = faults::parse_schedule(&text).map_err(|e| e.to_string())?;
    println!(
        "spec {}: seed {} with {} event(s)",
        path.display(),
        schedule.seed,
        schedule.len()
    );
    let duration_s = 0.05;
    let mut ecfg = EngineConfig::default();
    ecfg.faults = Some(schedule);
    let (mut eng, _bottleneck) =
        single_switch_longlived(Protocol::Dcqcn, 4, 10e9, SimDuration::from_micros(4), ecfg);
    let report = eng
        .try_run(SimTime::from_secs_f64(duration_s))
        .map_err(|e| e.to_string())?;
    let goodput_gbps = report.delivered_bytes.iter().sum::<u64>() as f64 * 8.0 / duration_s / 1e9;
    println!("DCQCN, 4 flows, 10 Gbps, {} ms:", duration_s * 1e3);
    println!(
        "  goodput {:.2} Gbps | marked {} | cnps {} | fault drops {} | forced pauses {} ({:.3} ms paused) | fault ops {}",
        goodput_gbps,
        report.marked_packets,
        report.cnps_sent,
        report.fault_drops,
        report.fault_pauses,
        report.fault_paused_s * 1e3,
        report.faults_injected
    );
    Ok(())
}

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Extension: fault injection — degradation matrix & divergence watchdog");
    let cfg = ExtFaultsConfig::default();
    if let Some(path) = faults_flag() {
        if let Err(e) = run_spec(&path) {
            eprintln!("ext_faults: {e}");
            std::process::exit(2);
        }
        print_watchdog(&run_watchdog_sweep(&cfg.watchdog_gains, cfg.watchdog_t1_s));
        obs.finish();
        return;
    }
    let store = bench::store_cli::init(
        "ext_faults",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "degradation matrix ({} flows, {:.0} ms, fault window = middle 60%):",
        cfg.n_flows,
        cfg.matrix_duration_s * 1e3
    );
    println!(
        "{:<15} {:<12} {:>14} {:>8} {:>8} {:>8}",
        "protocol", "profile", "goodput (Gbps)", "drops", "pauses", "ops"
    );
    for c in &res.cells {
        println!(
            "{:<15} {:<12} {:>14.2} {:>8} {:>8} {:>8}",
            c.protocol, c.profile, c.goodput_gbps, c.fault_drops, c.fault_pauses, c.faults_injected
        );
    }
    if !res.failed_cells.is_empty() {
        println!("failed cells (recorded, not fatal):");
        for f in &res.failed_cells {
            println!("  {f}");
        }
    }
    println!("\nFigure-10-style collapse (2 TIMELY flows, 64 KB chunks):");
    for p in &res.collapse {
        println!(
            "  {:<26} early {:>5.2} Gbps, tail {:>5.2} Gbps",
            p.label, p.early_agg_gbps, p.tail_agg_gbps
        );
    }
    print_watchdog(&res.watchdog);
    println!("\neach fault attacks one signal path: CNP loss passes TIMELY by, delay");
    println!("faults corrupt exactly the measurement it trusts; pause storms gate both.");
    let path = bench::results_dir().join("ext_faults.json");
    write_json(&path, &res).expect("write results");
    println!("results -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
