//! Figure 19: Patched TIMELY with end-host PI — pinned queue, no fairness.

use ecn_delay_core::experiments::fig19::{run, Fig19Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 19: Patched TIMELY + end-host PI (q_ref = 300 KB)");
    let cfg = Fig19Config::default();
    let store = bench::store_cli::init(
        "fig19",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "tail queue      = {:8.1} KB (target 300)",
        res.tail_queue_kb
    );
    println!("tail shares     = {:?}", res.tail_shares);
    println!("tail utilization= {:8.3}", res.tail_utilization);
    println!("\nTheorem 6: with delay-only feedback you can pin the queue OR be fair, not both.");
    let path = bench::results_dir().join("fig19.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
