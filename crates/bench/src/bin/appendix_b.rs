//! Appendix B cross-layer validation: Eq 40 cycle length vs packet sim.

use ecn_delay_core::experiments::appendix_b::{run, AppendixBConfig};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Appendix B: Eq 40 AIMD cycle length vs packet measurement");
    let cfg = AppendixBConfig::default();
    let store = bench::store_cli::init(
        "appendix_b",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:>6} {:>10} {:>20} {:>20} {:>8}",
        "N", "alpha*", "predicted (us)", "measured (us)", "cuts"
    );
    for r in &res.rows {
        println!(
            "{:>6} {:>10.4} {:>20.1} {:>20.1} {:>8}",
            r.n_flows, r.alpha_star, r.predicted_cycle_us, r.measured_cycle_us, r.cuts_measured
        );
    }
    let path = bench::results_dir().join("appendix_b.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
