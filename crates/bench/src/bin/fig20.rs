//! Figure 20: protocol stability under feedback-delay jitter.

use ecn_delay_core::experiments::fig20::{run, Fig20Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 20: uniform [0,100us] feedback jitter");
    let res = run(&Fig20Config::default());
    for p in &res.panels {
        println!(
            "{:<16}: queue oscillation x q* — clean {:6.3} | jittered {:6.3}",
            p.protocol, p.oscillation.0, p.oscillation.1
        );
    }
    println!("\nECN survives jitter (signal delayed, not corrupted); delay-based does not.");
    let path = bench::results_dir().join("fig20.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    obs.finish();
}
