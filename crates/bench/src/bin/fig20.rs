//! Figure 20: protocol stability under feedback-delay jitter.

use ecn_delay_core::experiments::fig20::{run, Fig20Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 20: uniform [0,100us] feedback jitter");
    let cfg = Fig20Config::default();
    let store = bench::store_cli::init(
        "fig20",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for p in &res.panels {
        println!(
            "{:<16}: queue oscillation x q* — clean {:6.3} | jittered {:6.3}",
            p.protocol, p.oscillation.0, p.oscillation.1
        );
    }
    println!("\nECN survives jitter (signal delayed, not corrupted); delay-based does not.");
    let path = bench::results_dir().join("fig20.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
