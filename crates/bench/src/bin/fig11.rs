//! Figure 11: Patched TIMELY phase margin vs number of flows.

use ecn_delay_core::experiments::fig11::{run, Fig11Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 11: Patched TIMELY phase margin vs N");
    let cfg = Fig11Config::default();
    let store = bench::store_cli::init(
        "fig11",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    println!(
        "{:>6} {:>14} {:>12} {:>16}",
        "N", "margin (deg)", "q* (KB)", "fb delay (us)"
    );
    for &(n, pm, q, d) in &res.points {
        println!("{n:>6} {pm:>14.1} {q:>12.1} {d:>16.1}");
    }
    match res.instability_threshold {
        Some(n) => println!("\nunstable from N = {n} (paper: ~40 with its tuning)"),
        None => println!("\nstable across the swept range"),
    }
    let path = bench::results_dir().join("fig11.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
