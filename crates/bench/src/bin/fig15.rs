//! Figure 15: CDF of small-flow FCT at load 0.8.

use ecn_delay_core::experiments::fig15::{run, Fig15Config};
use ecn_delay_core::write_json;

fn main() {
    let obs = bench::obs_cli::init();
    bench::banner("Figure 15: CDF of small-flow FCT, load = 0.8");
    let cfg = Fig15Config::default();
    let store = bench::store_cli::init(
        "fig15",
        &ecn_delay_core::json::ToJson::to_json(&cfg).render_pretty(),
    );
    if !obs.active() && store.try_serve().is_some() {
        store.finish();
        obs.finish();
        return;
    }
    let res = run(&cfg);
    for (name, cdf) in &res.cdfs {
        let q = |p: f64| {
            cdf.iter()
                .find(|&&(_, cp)| cp >= p)
                .map(|&(x, _)| x)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{name:<16}: p50={:8.3} ms  p90={:8.3} ms  p99={:8.3} ms  max={:8.3} ms",
            q(0.5),
            q(0.9),
            q(0.99),
            cdf.last().map(|&(x, _)| x).unwrap_or(f64::NAN)
        );
    }
    let path = bench::results_dir().join("fig15.json");
    write_json(&path, &res).expect("write results");
    println!("\nresults -> {}", path.display());
    store.record(std::slice::from_ref(&path));
    store.finish();
    obs.finish();
}
