//! `--store <dir>` / `--no-store` support shared by every figure binary.
//!
//! The store is **off by default** — a plain figure run touches no cache and
//! pays nothing. With `--store <dir>`, the binary becomes *resumable*: its
//! results are keyed by `(experiment id, canonical config JSON)` in a
//! content-addressed store (`store::Store`), and a rerun with the same spec
//! serves every artifact byte-identically from disk instead of recomputing.
//! Identical bytes are sound because the simulation itself is deterministic:
//! same spec ⇒ same bytes, at any `SIM_THREADS`/`SIM_BATCH` setting.
//!
//! One figure = one record: the payload is a manifest bundling every
//! artifact the figure writes (`fig2.json` plus its per-N CSVs, say), so a
//! hit restores all of them or none — a `kill -9` between a figure's
//! artifacts can never leave a half-served result. Serving is skipped
//! whenever observability flags are active: traces/metrics/flight describe
//! a *run*, so a run must actually happen.
//!
//! `--no-store` wins over `--store` (handy for overriding a wrapper script's
//! default). `all_figures` forwards both flags to every child figure.

use std::path::{Path, PathBuf};

use ecn_delay_core::json::Json;

/// Parsed store flags plus the figure's content address.
pub struct StoreCli {
    store: Option<store::Store>,
    key: Option<store::SpecKey>,
}

/// Parse `--store <dir>` / `--no-store` from the process arguments and open
/// the store. `experiment` is the figure's stable id (its binary name);
/// `config_json` is the spec whose canonical form addresses the record.
/// Unknown arguments are ignored (they belong to `obs_cli` or the figure's
/// own flags).
pub fn init(experiment: &str, config_json: &str) -> StoreCli {
    let mut argv = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut disabled = false;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--store" => {
                dir = Some(PathBuf::from(
                    argv.next().expect("--store requires a directory path"),
                ));
            }
            "--no-store" => disabled = true,
            _ => {}
        }
    }
    if disabled {
        dir = None;
    }
    from_dir(dir.as_deref(), experiment, config_json)
}

/// Flag-free constructor used by `init` and by tests.
pub fn from_dir(dir: Option<&Path>, experiment: &str, config_json: &str) -> StoreCli {
    let store = dir.and_then(|d| match store::Store::open(d) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("store: cannot open {} ({e}); caching disabled", d.display());
            None
        }
    });
    let key = if store.is_some() {
        match store::spec_key(experiment, config_json) {
            Ok(k) => Some(k),
            Err(e) => {
                eprintln!("store: cannot canonicalize spec ({e}); caching disabled");
                None
            }
        }
    } else {
        None
    };
    StoreCli {
        store: if key.is_some() { store } else { None },
        key,
    }
}

impl StoreCli {
    /// True when `--store` was given and usable.
    pub fn active(&self) -> bool {
        self.store.is_some()
    }

    /// The underlying store, for experiments that cache at a finer grain
    /// than whole figures (`ext_incast` stores per sweep cell).
    pub fn store(&self) -> Option<&store::Store> {
        self.store.as_ref()
    }

    /// Serve the figure's artifacts from the store. On a hit, every
    /// artifact in the stored manifest is written (atomically) into
    /// `crate::results_dir()` and the restored paths are returned; `None`
    /// is a miss — compute as usual. All-or-nothing by construction: the
    /// manifest is one framed record, whole or quarantined.
    pub fn try_serve(&self) -> Option<Vec<PathBuf>> {
        let (st, key) = (self.store.as_ref()?, self.key.as_ref()?);
        let bytes = st.get(key)?;
        let text = String::from_utf8(bytes).ok()?;
        let doc = store::json::parse(&text).ok()?;
        let items = doc.get("artifacts")?.items()?;
        let dir = crate::results_dir();
        let mut restored = Vec::new();
        // Parse the full manifest before touching the filesystem so a
        // schema mismatch restores nothing instead of something.
        let mut planned = Vec::new();
        for item in items {
            let name = item.get("name")?.as_str()?;
            let body = item.get("body")?.as_str()?;
            // A manifest name is a bare file name by construction (see
            // `record`); reject anything path-like from a tampered store.
            if name.contains('/') || name.contains('\\') || name.is_empty() {
                return None;
            }
            planned.push((dir.join(name), body.as_bytes().to_vec()));
        }
        for (path, body) in planned {
            store::write_atomic(&path, &body).ok()?;
            println!("results -> {} (served from store)", path.display());
            restored.push(path);
        }
        Some(restored)
    }

    /// Record the artifacts a completed figure run just wrote. Call after
    /// the final `write_json`/`write_series_csv`; the files are re-read and
    /// bundled into one manifest record under the figure's key. Errors are
    /// reported and swallowed — a broken cache must never fail the run.
    pub fn record(&self, paths: &[PathBuf]) {
        let (Some(st), Some(key)) = (self.store.as_ref(), self.key.as_ref()) else {
            return;
        };
        let mut items = Vec::new();
        for path in paths {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                eprintln!("store: skipping artifact without a file name: {path:?}");
                return;
            };
            match std::fs::read_to_string(path) {
                Ok(body) => items.push(Json::Obj(vec![
                    ("name".to_string(), Json::Str(name)),
                    ("body".to_string(), Json::Str(body)),
                ])),
                Err(e) => {
                    eprintln!(
                        "store: cannot re-read {} ({e}); not recording",
                        path.display()
                    );
                    return;
                }
            }
        }
        let manifest = Json::Obj(vec![("artifacts".to_string(), Json::Arr(items))]);
        if let Err(e) = st.put(key, manifest.render_pretty().as_bytes()) {
            eprintln!("store: record failed ({e}); continuing without cache");
        }
    }

    /// Print the run's store counter summary (hits/misses/corrupt/writes).
    /// A no-op when the store is inactive.
    pub fn finish(&self) {
        if self.store.is_none() {
            return;
        }
        let c = store::counters();
        println!(
            "store: {} hit(s), {} miss(es), {} corrupt, {} write(s)",
            c.hits, c.misses, c.corrupt, c.writes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "store_cli_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn record_then_serve_round_trips_artifacts() {
        let root = tmp("roundtrip");
        let results = tmp("results");
        std::fs::create_dir_all(&results).expect("results dir");
        // Route results_dir() at the serve target.
        std::env::set_var("ECN_DELAY_RESULTS", &results);
        let a = results.join("figx.json");
        let b = results.join("figx_series.csv");
        store::write_atomic(&a, b"{\n  \"v\": 1\n}").expect("write a");
        store::write_atomic(&b, b"t,y\n0,1\n").expect("write b");

        let cli = from_dir(Some(&root), "figx", "{\"n\": 3}");
        assert!(cli.active());
        assert!(cli.try_serve().is_none(), "empty store must miss");
        cli.record(&[a.clone(), b.clone()]);

        // Delete the originals; a hit must restore both byte-identically.
        std::fs::remove_file(&a).expect("rm a");
        std::fs::remove_file(&b).expect("rm b");
        let served = cli.try_serve().expect("hit after record");
        assert_eq!(served.len(), 2);
        assert_eq!(std::fs::read(&a).expect("a"), b"{\n  \"v\": 1\n}");
        assert_eq!(std::fs::read(&b).expect("b"), b"t,y\n0,1\n");

        // A different spec misses.
        let other = from_dir(Some(&root), "figx", "{\"n\": 4}");
        assert!(other.try_serve().is_none());
        std::env::remove_var("ECN_DELAY_RESULTS");
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn disabled_cli_is_inert() {
        let cli = from_dir(None, "figx", "{}");
        assert!(!cli.active());
        assert!(cli.store().is_none());
        assert!(cli.try_serve().is_none());
        cli.record(&[PathBuf::from("/nonexistent/x.json")]);
        cli.finish();
    }

    #[test]
    fn tampered_manifest_names_restore_nothing() {
        let root = tmp("tamper");
        let cli = from_dir(Some(&root), "figx", "{}");
        let (st, key) = (
            cli.store().expect("store"),
            store::spec_key("figx", "{}").expect("key"),
        );
        st.put(
            &key,
            b"{\"artifacts\": [{\"name\": \"../escape\", \"body\": \"x\"}]}",
        )
        .expect("put");
        assert!(
            cli.try_serve().is_none(),
            "path-like names must be rejected"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
