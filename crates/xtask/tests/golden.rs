//! Golden-file test: the `--format json` report for a fixed input must be
//! byte-identical across runs and across refactors of the engine. Regenerate
//! the expectation with `SIMLINT_BLESS=1 cargo test -p xtask --test golden`.

use std::path::Path;

use xtask::report::{apply_baseline, render_report, BaselineEntry};
use xtask::{lint_source, Scope};

fn fixture(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn json_report_is_golden_and_byte_stable() {
    let input = fixture("fixtures/golden/input.rs");
    let src = std::fs::read_to_string(&input).expect("read golden input");
    // Lint under a stable relative path so the report does not embed the
    // machine-specific checkout location.
    let violations = lint_source(Path::new("fixtures/golden/input.rs"), &src, Scope::STRICT);
    assert!(
        !violations.is_empty(),
        "golden input no longer triggers any rules"
    );
    // A baseline that (a) absorbs one finding and (b) holds one stale entry,
    // so the report exercises `baselined` and `stale_baseline`.
    let baseline = vec![
        BaselineEntry {
            file: "fixtures/golden/input.rs".into(),
            rule: "hash-collections".into(),
            count: 1,
        },
        BaselineEntry {
            file: "fixtures/golden/input.rs".into(),
            rule: "thread-spawn".into(),
            count: 2,
        },
    ];
    let analysis = apply_baseline(violations, &baseline);
    let first = render_report(&analysis.findings, &analysis.stale);
    let second = render_report(&analysis.findings, &analysis.stale);
    assert_eq!(first, second, "report rendering is not deterministic");

    let expected_path = fixture("fixtures/golden/expected.json");
    if std::env::var_os("SIMLINT_BLESS").is_some() {
        std::fs::write(&expected_path, &first).expect("bless expected.json");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .expect("read expected.json (run with SIMLINT_BLESS=1 to create it)");
    assert_eq!(
        first, expected,
        "JSON report drifted from fixtures/golden/expected.json; \
         re-bless with SIMLINT_BLESS=1 if the change is intentional"
    );
}
