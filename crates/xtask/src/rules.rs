//! Token-pattern rules and signature scanning.
//!
//! Everything here pattern-matches the comment-stripped token stream
//! ([`crate::Ctx::code`]) — strings, chars, raw strings and comments are
//! whole tokens, so the legacy scrubber's edge cases (a `HashMap` inside a
//! multi-line raw string, a `.unwrap()` in prose) are structurally
//! impossible.

use crate::lex::{Kind, Tok};
use crate::{has_unit_suffix, is_dimensioned, Ctx, Rule, Scope, Sink, UNIT_SUFFIXES};

pub(crate) fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == Kind::Ident && t.text == s
}

pub(crate) fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == Kind::Punct && t.text == s
}

/// Single-token and short-window rules: collections, wall clock, threads,
/// unwrap/expect, literal indexing.
pub(crate) fn token_rules(ctx: &Ctx, scope: Scope, sink: &mut Sink) {
    let code = &ctx.code;
    for i in 0..code.len() {
        let t = code[i];
        let line = t.line as usize;
        let col = t.col as usize;

        if scope.determinism
            && t.kind == Kind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            sink.push(
                line,
                col,
                Rule::HashCollections,
                format!(
                    "{} has unspecified iteration order; use BTreeMap/BTreeSet or \
                     Vec-indexed storage in simulation logic",
                    t.text
                ),
            );
        }

        if scope.wall_clock {
            let tok = if is_ident(t, "Instant")
                && code.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                && code.get(i + 2).is_some_and(|n| is_ident(n, "now"))
            {
                Some("Instant::now")
            } else if is_ident(t, "SystemTime") {
                Some("SystemTime")
            } else if is_ident(t, "thread_rng") {
                Some("thread_rng")
            } else if is_ident(t, "rand") && code.get(i + 1).is_some_and(|n| is_punct(n, "::")) {
                Some("rand::")
            } else {
                None
            };
            if let Some(tok) = tok {
                sink.push(
                    line,
                    col,
                    Rule::WallClock,
                    format!(
                        "{tok} injects wall-clock/ambient nondeterminism; use SimTime and \
                         the seeded SimRng"
                    ),
                );
            }
        }

        if scope.thread_spawn
            && is_ident(t, "thread")
            && code.get(i + 1).is_some_and(|n| is_punct(n, "::"))
        {
            if let Some(m) = code.get(i + 2) {
                if m.kind == Kind::Ident
                    && (m.text == "spawn" || m.text == "scope" || m.text == "Builder")
                {
                    sink.push(
                        line,
                        col,
                        Rule::ThreadSpawn,
                        format!(
                            "thread::{} outside desim::par breaks the ordered-results \
                             determinism contract; use desim::par::par_map \
                             (SIM_THREADS-aware, input-order results)",
                            m.text
                        ),
                    );
                }
            }
        }

        // `.unwrap()` / `.expect(` — panic + no-unwrap-sim, library code only.
        if is_punct(t, ".") && !ctx.is_test_line(line) {
            let m = code.get(i + 1);
            let unwrap = m.is_some_and(|m| is_ident(m, "unwrap"))
                && code.get(i + 2).is_some_and(|n| is_punct(n, "("))
                && code.get(i + 3).is_some_and(|n| is_punct(n, ")"));
            let expect = m.is_some_and(|m| is_ident(m, "expect"))
                && code.get(i + 2).is_some_and(|n| is_punct(n, "("));
            if unwrap || expect {
                let tok = if unwrap { ".unwrap()" } else { ".expect(" };
                if scope.panic_discipline {
                    sink.push(
                        line,
                        col,
                        Rule::Panic,
                        format!(
                            "{tok} in library code; return a typed error or document the \
                             invariant with `// simlint: allow(panic) — why`"
                        ),
                    );
                }
                if scope.no_unwrap {
                    sink.push(
                        line,
                        col,
                        Rule::NoUnwrapSim,
                        format!(
                            "{tok} in a simulation crate: degrade via faults::SimError (or an \
                             infallible construction) instead of aborting mid-run; a cold-path \
                             exception needs `// simlint: allow(no-unwrap-sim) — why`"
                        ),
                    );
                }
            }
        }

        // Bare file writes (`fs::write`, `File::create`) outside the
        // sanctioned atomic writer. Test modules are exempt: fixtures and
        // scratch files in tests have no crash-durability contract.
        if scope.fs_write && !ctx.is_test_line(line) {
            let raw = if is_ident(t, "fs")
                && code.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                && code.get(i + 2).is_some_and(|n| is_ident(n, "write"))
            {
                Some("fs::write")
            } else if is_ident(t, "File")
                && code.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                && code.get(i + 2).is_some_and(|n| is_ident(n, "create"))
            {
                Some("File::create")
            } else {
                None
            };
            if let Some(tok) = raw {
                sink.push(
                    line,
                    col,
                    Rule::RawFsWrite,
                    format!(
                        "{tok} can leave a torn file under its final name after a crash; \
                         route durable artifacts through store::atomic::write_atomic \
                         (temp + fsync + rename)"
                    ),
                );
            }
        }

        // Literal indexing `xs[0]` without a bound-justifying comment.
        if scope.determinism
            && is_punct(t, "[")
            && !ctx.is_test_line(line)
            && i > 0
            && (code[i - 1].kind == Kind::Ident
                || is_punct(code[i - 1], ")")
                || is_punct(code[i - 1], "]"))
        {
            let idx_ok = code
                .get(i + 1)
                .is_some_and(|n| n.kind == Kind::Int && n.text.chars().all(|c| c.is_ascii_digit()))
                && code.get(i + 2).is_some_and(|n| is_punct(n, "]"));
            if idx_ok && !ctx.has_plain_comment(line) {
                sink.push(
                    line,
                    col,
                    Rule::IndexLiteral,
                    format!(
                        "literal index at column {col} without a bound-justifying comment on \
                         this or the preceding line"
                    ),
                );
            }
        }
    }
}

/// Count angle-bracket nesting contributed by one punct token's characters.
/// `->` / `=>` never open or close a generic list and are skipped whole.
pub(crate) fn angle_delta(t: &Tok) -> i64 {
    if t.kind != Kind::Punct || t.text == "->" || t.text == "=>" {
        return 0;
    }
    t.text
        .chars()
        .map(|c| match c {
            '<' => 1,
            '>' => -1,
            _ => 0,
        })
        .sum()
}

/// Starting at `i` (which must point at `<`), return the index just past the
/// matching `>`, counting angle characters across multi-char puncts.
pub(crate) fn skip_generics(code: &[&Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < code.len() {
        depth += angle_delta(code[j]);
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Split `code[range]` at top-level commas (parens, brackets, braces and
/// angles all count as nesting). Returns index ranges.
pub(crate) fn split_commas(code: &[&Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (mut paren, mut bracket, mut brace, mut angle) = (0i64, 0i64, 0i64, 0i64);
    let mut seg = start;
    for j in start..end {
        let t = code[j];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                "," if paren == 0 && bracket == 0 && brace == 0 && angle <= 0 => {
                    out.push((seg, j));
                    seg = j + 1;
                    continue;
                }
                _ => {}
            }
            angle += angle_delta(t);
        }
    }
    if seg < end {
        out.push((seg, end));
    }
    out
}

/// Is the token range exactly the type `f64`?
fn is_f64_type(code: &[&Tok], start: usize, end: usize) -> bool {
    end - start == 1 && is_ident(code[start], "f64")
}

/// `unit-suffix` over signatures: `pub fn` params (legacy), plus struct
/// fields and `pub fn` return types (PR 6 extension).
pub(crate) fn signature_rules(ctx: &Ctx, scope: Scope, sink: &mut Sink) {
    if !scope.unit_suffix {
        return;
    }
    let code = &ctx.code;
    let mut i = 0;
    while i < code.len() {
        if is_ident(code[i], "struct") {
            i = check_struct_fields(ctx, sink, i);
            continue;
        }
        if is_ident(code[i], "fn") {
            i = check_pub_fn(ctx, sink, i);
            continue;
        }
        i += 1;
    }
}

/// Returns the index to resume scanning from.
fn check_struct_fields(ctx: &Ctx, sink: &mut Sink, i: usize) -> usize {
    let code = &ctx.code;
    let struct_line = code[i].line as usize;
    let Some(name) = code.get(i + 1) else {
        return i + 1;
    };
    if name.kind != Kind::Ident {
        return i + 1;
    }
    let mut j = i + 2;
    if code.get(j).is_some_and(|t| is_punct(t, "<")) {
        j = skip_generics(code, j);
    }
    // Skip `where` clauses up to the body.
    while j < code.len()
        && !is_punct(code[j], "{")
        && !is_punct(code[j], "(")
        && !is_punct(code[j], ";")
    {
        j += 1;
    }
    let Some(open) = code.get(j) else { return j };
    if !is_punct(open, "{") {
        return j + 1; // tuple or unit struct: no named fields to check
    }
    let body_depth = open.depth;
    let mut k = j + 1;
    // Walk named fields until the matching `}`.
    while k < code.len() {
        let t = code[k];
        if is_punct(t, "}") && t.depth == body_depth {
            return k + 1;
        }
        // Skip field attributes.
        if is_punct(t, "#") && code.get(k + 1).is_some_and(|n| is_punct(n, "[")) {
            let mut b = 0i64;
            k += 1;
            while k < code.len() {
                if code[k].kind == Kind::Punct {
                    for c in code[k].text.chars() {
                        match c {
                            '[' => b += 1,
                            ']' => b -= 1,
                            _ => {}
                        }
                    }
                }
                k += 1;
                if b == 0 {
                    break;
                }
            }
            continue;
        }
        // Optional visibility.
        if is_ident(t, "pub") {
            k += 1;
            if code.get(k).is_some_and(|n| is_punct(n, "(")) {
                while k < code.len() && !is_punct(code[k], ")") {
                    k += 1;
                }
                k += 1;
            }
            continue;
        }
        // Field: `name : type ,`
        if t.kind == Kind::Ident && code.get(k + 1).is_some_and(|n| is_punct(n, ":")) {
            // Find the end of the type: top-level comma or the closing brace.
            let ty_start = k + 2;
            let mut ty_end = ty_start;
            let (mut paren, mut bracket, mut angle) = (0i64, 0i64, 0i64);
            while ty_end < code.len() {
                let u = code[ty_end];
                if is_punct(u, "}") && u.depth == body_depth {
                    break;
                }
                if u.kind == Kind::Punct {
                    match u.text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "," if paren == 0 && bracket == 0 && angle <= 0 => break,
                        _ => {}
                    }
                    angle += angle_delta(u);
                }
                ty_end += 1;
            }
            let fline = t.line as usize;
            if is_f64_type(code, ty_start, ty_end)
                && !ctx.is_test_line(fline)
                && is_dimensioned(&t.text)
                && !has_unit_suffix(&t.text)
            {
                sink.push_anchored(
                    struct_line,
                    fline,
                    t.col as usize,
                    Rule::UnitSuffix,
                    format!(
                        "struct field `{}: f64` carries a dimension but no unit suffix; \
                         rename with one of {:?} (keep conversions in models::units)",
                        t.text, UNIT_SUFFIXES
                    ),
                );
            }
            k = ty_end + 1;
            continue;
        }
        k += 1;
    }
    k
}

/// Is the `fn` at index `i` preceded by a `pub` (skipping `const`, `unsafe`,
/// `async`, `extern "..."` and a visibility-path group)?
fn fn_is_pub(code: &[&Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = code[j];
        match t.kind {
            Kind::Ident if matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern") => {
                continue
            }
            Kind::Str => continue, // extern ABI string
            Kind::Punct if t.text == ")" => {
                // Possible `pub(crate)` group: rewind to the matching `(`.
                let mut p = 1i64;
                while j > 0 && p > 0 {
                    j -= 1;
                    if is_punct(code[j], ")") {
                        p += 1;
                    } else if is_punct(code[j], "(") {
                        p -= 1;
                    }
                }
                continue;
            }
            Kind::Ident if t.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Locate the parameter-list parens of the `fn` at `i`; returns
/// `(name_idx, open_paren_idx, close_paren_idx)`.
pub(crate) fn fn_signature(code: &[&Tok], i: usize) -> Option<(usize, usize, usize)> {
    let name = code.get(i + 1)?;
    if name.kind != Kind::Ident {
        return None;
    }
    let mut j = i + 2;
    if code.get(j).is_some_and(|t| is_punct(t, "<")) {
        j = skip_generics(code, j);
    }
    if !code.get(j).is_some_and(|t| is_punct(t, "(")) {
        return None;
    }
    let open = j;
    let mut depth = 0i64;
    while j < code.len() {
        if is_punct(code[j], "(") {
            depth += 1;
        } else if is_punct(code[j], ")") {
            depth -= 1;
            if depth == 0 {
                return Some((i + 1, open, j));
            }
        }
        j += 1;
    }
    None
}

/// Returns the index to resume scanning from.
fn check_pub_fn(ctx: &Ctx, sink: &mut Sink, i: usize) -> usize {
    let code = &ctx.code;
    let fn_line = code[i].line as usize;
    if ctx.is_test_line(fn_line) || !fn_is_pub(code, i) {
        return i + 1;
    }
    let Some((name_idx, open, close)) = fn_signature(code, i) else {
        return i + 1;
    };
    let fname = &code[name_idx].text;
    for (ps, pe) in split_commas(code, open + 1, close) {
        // Parameter pattern: `[mut] name : type`.
        let mut s = ps;
        if code.get(s).is_some_and(|t| is_ident(t, "mut")) {
            s += 1;
        }
        let Some(nt) = code.get(s) else { continue };
        if nt.kind != Kind::Ident || !code.get(s + 1).is_some_and(|t| is_punct(t, ":")) {
            continue; // `self`, destructuring patterns, …
        }
        if is_f64_type(code, s + 2, pe) && is_dimensioned(&nt.text) && !has_unit_suffix(&nt.text) {
            sink.push_anchored(
                fn_line,
                nt.line as usize,
                nt.col as usize,
                Rule::UnitSuffix,
                format!(
                    "pub fn parameter `{}: f64` carries a dimension but no unit suffix; \
                     rename with one of {:?} (keep conversions in models::units)",
                    nt.text, UNIT_SUFFIXES
                ),
            );
        }
    }
    // Return type: `-> f64` with a dimensioned fn name.
    if code.get(close + 1).is_some_and(|t| is_punct(t, "->")) {
        let ty_start = close + 2;
        let mut ty_end = ty_start;
        while ty_end < code.len()
            && !is_punct(code[ty_end], "{")
            && !is_punct(code[ty_end], ";")
            && !is_ident(code[ty_end], "where")
        {
            ty_end += 1;
        }
        if is_f64_type(code, ty_start, ty_end) && is_dimensioned(fname) && !has_unit_suffix(fname) {
            let nt = code[name_idx];
            sink.push_anchored(
                fn_line,
                nt.line as usize,
                nt.col as usize,
                Rule::UnitSuffix,
                format!(
                    "pub fn `{fname}` returns a dimensioned f64 but its name has no unit \
                     suffix; rename with one of {UNIT_SUFFIXES:?} (keep conversions in \
                     models::units)"
                ),
            );
        }
    }
    close + 1
}
