//! Machine-readable report and the checked-in findings baseline.
//!
//! `cargo xtask lint --format json` renders the full findings list through
//! `ecn_delay_core::json` (byte-stable: sorted findings, insertion-order
//! keys, shortest round-trip floats — none here). The baseline file
//! `simlint.baseline.json` holds `(file, rule, count)` triples — counts, not
//! line numbers, so unrelated edits that shift lines do not invalidate it —
//! and the lint run fails only on findings beyond the baselined count.
//! `ecn_delay_core::json` is emit-only, so the small recursive-descent
//! reader lives here.

use ecn_delay_core::json::Json;

use crate::{Severity, Violation};

/// One baseline entry: up to `count` findings of `rule` in `file` are
/// tolerated (legacy debt being burned down).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name as reported.
    pub rule: String,
    /// Number of tolerated findings.
    pub count: usize,
}

/// The outcome of diffing findings against the baseline.
pub struct Analysis {
    /// Every finding, in report order, with its baselined flag.
    pub findings: Vec<(Violation, bool)>,
    /// Baseline entries (or remainders) that matched nothing — stale debt
    /// that should be burned down with `--fix-baseline`.
    pub stale: Vec<BaselineEntry>,
}

impl Analysis {
    /// Findings that are neither baselined nor mere warnings — these fail
    /// the run.
    pub fn new_errors(&self) -> impl Iterator<Item = &Violation> {
        self.findings
            .iter()
            .filter(|(v, baselined)| !baselined && v.severity() == Severity::Error)
            .map(|(v, _)| v)
    }
}

/// Diff `violations` (already sorted) against the baseline: the first
/// `count` error-severity findings per `(file, rule)` key are baselined.
/// Warnings never consume baseline budget.
pub fn apply_baseline(violations: Vec<Violation>, baseline: &[BaselineEntry]) -> Analysis {
    let mut budget: Vec<(String, String, usize)> = baseline
        .iter()
        .map(|b| (b.file.clone(), b.rule.clone(), b.count))
        .collect();
    let mut findings = Vec::with_capacity(violations.len());
    for v in violations {
        let mut baselined = false;
        if v.severity() == Severity::Error {
            let file = v.file.display().to_string();
            let rule = v.rule.name();
            if let Some(slot) = budget
                .iter_mut()
                .find(|(f, r, c)| *f == file && r == rule && *c > 0)
            {
                slot.2 -= 1;
                baselined = true;
            }
        }
        findings.push((v, baselined));
    }
    let stale = budget
        .into_iter()
        .filter(|(_, _, c)| *c > 0)
        .map(|(file, rule, count)| BaselineEntry { file, rule, count })
        .collect();
    Analysis { findings, stale }
}

/// Render the current error-severity findings as a baseline file (grouped
/// counts, sorted by file then rule).
pub fn render_baseline(violations: &[Violation]) -> String {
    let mut counts: Vec<(String, String, usize)> = Vec::new();
    for v in violations {
        if v.severity() != Severity::Error {
            continue;
        }
        let file = v.file.display().to_string();
        let rule = v.rule.name().to_string();
        if let Some(slot) = counts.iter_mut().find(|(f, r, _)| *f == file && *r == rule) {
            slot.2 += 1;
        } else {
            counts.push((file, rule, 1));
        }
    }
    counts.sort();
    let entries: Vec<Json> = counts
        .into_iter()
        .map(|(file, rule, count)| {
            Json::Obj(vec![
                ("file".into(), Json::Str(file)),
                ("rule".into(), Json::Str(rule)),
                ("count".into(), Json::Int(count as i128)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("tool".into(), Json::Str("simlint".into())),
        ("entries".into(), Json::Arr(entries)),
    ]);
    doc.render_pretty() + "\n"
}

/// Render the full findings report (`--format json`). Byte-stable: findings
/// arrive sorted, keys are insertion-ordered, rule counts are sorted.
pub fn render_report(findings: &[(Violation, bool)], stale: &[BaselineEntry]) -> String {
    let rows: Vec<Json> = findings
        .iter()
        .map(|(v, baselined)| {
            Json::Obj(vec![
                ("file".into(), Json::Str(v.file.display().to_string())),
                ("line".into(), Json::Int(v.line as i128)),
                ("col".into(), Json::Int(v.col as i128)),
                ("rule".into(), Json::Str(v.rule.name().into())),
                ("severity".into(), Json::Str(v.severity().name().into())),
                ("message".into(), Json::Str(v.message.clone())),
                ("baselined".into(), Json::Bool(*baselined)),
            ])
        })
        .collect();
    let mut by_rule: Vec<(String, usize)> = Vec::new();
    for (v, _) in findings {
        let name = v.rule.name().to_string();
        if let Some(slot) = by_rule.iter_mut().find(|(r, _)| *r == name) {
            slot.1 += 1;
        } else {
            by_rule.push((name, 1));
        }
    }
    by_rule.sort();
    let total = findings.len();
    let errors = findings
        .iter()
        .filter(|(v, _)| v.severity() == Severity::Error)
        .count();
    let baselined = findings.iter().filter(|(_, b)| *b).count();
    let new_errors = findings
        .iter()
        .filter(|(v, b)| !b && v.severity() == Severity::Error)
        .count();
    let stale_rows: Vec<Json> = stale
        .iter()
        .map(|b| {
            Json::Obj(vec![
                ("file".into(), Json::Str(b.file.clone())),
                ("rule".into(), Json::Str(b.rule.clone())),
                ("count".into(), Json::Int(b.count as i128)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("tool".into(), Json::Str("simlint".into())),
        ("findings".into(), Json::Arr(rows)),
        (
            "summary".into(),
            Json::Obj(vec![
                ("total".into(), Json::Int(total as i128)),
                ("errors".into(), Json::Int(errors as i128)),
                ("warnings".into(), Json::Int((total - errors) as i128)),
                ("baselined".into(), Json::Int(baselined as i128)),
                ("new_errors".into(), Json::Int(new_errors as i128)),
                (
                    "by_rule".into(),
                    Json::Obj(
                        by_rule
                            .into_iter()
                            .map(|(r, c)| (r, Json::Int(c as i128)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("stale_baseline".into(), Json::Arr(stale_rows)),
    ]);
    doc.render_pretty() + "\n"
}

/// Parse a baseline file. `ecn_delay_core::json` only emits, so this is the
/// matching minimal reader: objects, arrays, strings (no escapes beyond
/// `\"`/`\\`), and unsigned integers — exactly what `render_baseline`
/// produces.
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        i: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut entries = Vec::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "entries" => {
                p.expect('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    entries.push(p.entry()?);
                    p.skip_ws();
                    p.eat(',');
                }
            }
            _ => p.skip_value()?,
        }
        p.skip_ws();
        p.eat(',');
    }
    Ok(entries)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.i).is_some_and(|c| c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at char {}: expected {c:?}, found {:?}",
                self.i,
                self.chars.get(self.i)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.get(self.i) {
                Some('"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.i += 1;
                    if let Some(&c) = self.chars.get(self.i) {
                        s.push(c);
                        self.i += 1;
                    }
                }
                Some(&c) => {
                    s.push(c);
                    self.i += 1;
                }
                None => return Err("baseline parse error: unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.i;
        while self.chars.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!(
                "baseline parse error at char {start}: expected digits"
            ));
        }
        let s: String = self.chars[start..self.i].iter().collect();
        s.parse()
            .map_err(|e| format!("baseline parse error: bad count {s:?}: {e}"))
    }

    fn entry(&mut self) -> Result<BaselineEntry, String> {
        self.skip_ws();
        self.expect('{')?;
        let (mut file, mut rule, mut count) = (None, None, None);
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            match key.as_str() {
                "file" => file = Some(self.string()?),
                "rule" => rule = Some(self.string()?),
                "count" => count = Some(self.number()?),
                _ => self.skip_value()?,
            }
            self.skip_ws();
            self.eat(',');
        }
        match (file, rule, count) {
            (Some(file), Some(rule), Some(count)) => Ok(BaselineEntry { file, rule, count }),
            _ => Err("baseline entry missing file/rule/count".into()),
        }
    }

    /// Skip any well-formed value (for forward-compatible extra keys).
    fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.get(self.i) {
            Some('"') => {
                self.string()?;
            }
            Some('{') => {
                self.i += 1;
                loop {
                    self.skip_ws();
                    if self.eat('}') {
                        break;
                    }
                    self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    self.skip_value()?;
                    self.skip_ws();
                    self.eat(',');
                }
            }
            Some('[') => {
                self.i += 1;
                loop {
                    self.skip_ws();
                    if self.eat(']') {
                        break;
                    }
                    self.skip_value()?;
                    self.skip_ws();
                    self.eat(',');
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                self.i += 1;
                while self
                    .chars
                    .get(self.i)
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
                {
                    self.i += 1;
                }
            }
            Some('t') | Some('f') | Some('n') => {
                while self.chars.get(self.i).is_some_and(|c| c.is_alphabetic()) {
                    self.i += 1;
                }
            }
            other => return Err(format!("baseline parse error: unexpected {other:?}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;
    use std::path::PathBuf;

    fn v(file: &str, line: usize, rule: Rule) -> Violation {
        Violation {
            file: PathBuf::from(file),
            line,
            col: 1,
            rule,
            message: format!("{} here", rule.name()),
        }
    }

    #[test]
    fn baseline_round_trips() {
        let vs = vec![
            v("a.rs", 1, Rule::Panic),
            v("a.rs", 9, Rule::Panic),
            v("b.rs", 3, Rule::UnitFlow),
        ];
        let rendered = render_baseline(&vs);
        let parsed = parse_baseline(&rendered).unwrap();
        assert_eq!(
            parsed,
            vec![
                BaselineEntry {
                    file: "a.rs".into(),
                    rule: "panic".into(),
                    count: 2
                },
                BaselineEntry {
                    file: "b.rs".into(),
                    rule: "unit-flow".into(),
                    count: 1
                },
            ]
        );
        // Applying the freshly-rendered baseline suppresses everything.
        let analysis = apply_baseline(vs, &parsed);
        assert_eq!(analysis.new_errors().count(), 0);
        assert!(analysis.stale.is_empty());
        assert!(analysis.findings.iter().all(|(_, b)| *b));
    }

    #[test]
    fn new_findings_exceed_baseline() {
        let baseline = vec![BaselineEntry {
            file: "a.rs".into(),
            rule: "panic".into(),
            count: 1,
        }];
        let vs = vec![v("a.rs", 1, Rule::Panic), v("a.rs", 9, Rule::Panic)];
        let analysis = apply_baseline(vs, &baseline);
        assert_eq!(analysis.new_errors().count(), 1);
        assert_eq!(analysis.new_errors().next().unwrap().line, 9);
    }

    #[test]
    fn burned_down_baseline_reports_stale_remainder() {
        let baseline = vec![BaselineEntry {
            file: "a.rs".into(),
            rule: "panic".into(),
            count: 3,
        }];
        let analysis = apply_baseline(vec![v("a.rs", 1, Rule::Panic)], &baseline);
        assert_eq!(analysis.new_errors().count(), 0);
        assert_eq!(
            analysis.stale,
            vec![BaselineEntry {
                file: "a.rs".into(),
                rule: "panic".into(),
                count: 2
            }]
        );
    }

    #[test]
    fn warnings_do_not_consume_baseline_and_do_not_fail() {
        let vs = vec![v("a.rs", 1, Rule::StaleAllow)];
        let analysis = apply_baseline(vs, &[]);
        assert_eq!(analysis.new_errors().count(), 0);
        assert_eq!(analysis.findings.len(), 1);
        // And a rendered baseline ignores warnings entirely.
        assert!(
            parse_baseline(&render_baseline(&[v("a.rs", 1, Rule::StaleAllow)]))
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn report_is_byte_stable() {
        let vs = vec![
            v("a.rs", 1, Rule::Panic),
            v("b.rs", 3, Rule::UnitFlow),
            v("b.rs", 4, Rule::StaleAllow),
        ];
        let analysis = apply_baseline(vs, &[]);
        let r1 = render_report(&analysis.findings, &analysis.stale);
        let r2 = render_report(&analysis.findings, &analysis.stale);
        assert_eq!(r1, r2);
        assert!(r1.contains("\"new_errors\": 2"), "{r1}");
        assert!(r1.contains("\"warnings\": 1"), "{r1}");
    }
}
