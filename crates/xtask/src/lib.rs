//! # simlint — project-specific static analysis
//!
//! Rules clippy cannot express, enforced over the workspace sources (see
//! DESIGN.md "Correctness & determinism policy" §8.6). Every rule runs on a
//! hand-rolled token stream ([`lex`]) — identifiers, literals, operators,
//! comments, string/char literals with column-accurate spans — not on
//! regex-scrubbed lines, so strings, nested block comments and raw strings
//! can never leak false positives or mask real ones.
//!
//! | rule | scope | what it bans |
//! |---|---|---|
//! | `hash-collections` | sim crates | `HashMap`/`HashSet` (iteration order is unspecified; use `BTreeMap`/`BTreeSet` or `Vec`-indexed storage) |
//! | `wall-clock` | sim crates | `Instant::now`, `SystemTime`, `thread_rng`, `rand::` (hidden nondeterminism); `obs/src/span.rs` is the one sanctioned span-timer surface and is exempt |
//! | `panic` | library crates | `.unwrap()` / `.expect(` outside `#[cfg(test)]` (library code returns typed errors or documents the invariant with an allow) |
//! | `no-unwrap-sim` | sim crates | `.unwrap()` / `.expect(` in simulation hot paths, even with a `panic` allow — sim code degrades via `faults::SimError` or infallible constructions |
//! | `index-literal` | sim crates | literal indexing `xs[0]` without a bound-justifying comment on the same or preceding line |
//! | `unit-suffix` | sim + workload | `f64` `pub fn` params, `pub fn` return types and struct fields with a time/rate/size-flavoured name but no unit suffix (`_s`, `_us`, `_pps`, `_gbps`, `_bytes`, …) |
//! | `thread-spawn` | sim crates | raw `thread::spawn` / `thread::scope` outside `desim::par` (use `desim::par::par_map`) |
//! | `float-cmp` | sim crates | `==` / `!=` on `f64` expressions outside approved epsilon helpers (exact float equality is a latent determinism/portability bug) |
//! | `unit-flow` | library crates | dimensional taint: cross-unit `+`/`-`/comparison and cross-unit assignment inside function bodies, seeded from suffix conventions and propagated through locals (route conversions through `models::units`) |
//! | `determinism-taint` | sim crates | values derived from wall-clock sources (`Instant::now`, `.elapsed()`, `SystemTime`) flowing into sim-state writes, event scheduling, trace payloads or sim-time/RNG constructors |
//! | `stale-allow` | everywhere | a `simlint: allow(<rule>)` directive that suppresses nothing (warning severity — the allowlist must not rot) |
//!
//! Test modules (`#[cfg(test)]`), `tests/`, `benches/`, `examples/` and
//! binary targets are exempt from `panic`, `index-literal`, `unit-suffix`,
//! `float-cmp` and `unit-flow`; determinism rules (`hash-collections`,
//! `wall-clock`, `thread-spawn`, `determinism-taint`) apply to library *and*
//! test code of the sim crates (a nondeterministic test is still a flaky
//! test).
//!
//! ## Allowlist
//!
//! A finding is suppressed by a directive comment on the same line or the
//! line directly above (for signature rules, the signature's first line also
//! anchors):
//!
//! ```text
//! let t = a + b; // simlint: allow(panic) — checked-overflow guard, documented
//! ```
//!
//! A directive that suppresses nothing is itself flagged (`stale-allow`).
//!
//! ## Baseline
//!
//! `cargo xtask lint` diffs findings against `simlint.baseline.json` at the
//! workspace root: baselined findings are reported but do not fail the run,
//! new ones do. `cargo xtask lint --fix-baseline` rewrites the baseline from
//! the current findings (burn-down is automatic: a shrunk baseline entry is
//! rewritten on the next `--fix-baseline`, and an overshooting entry — more
//! baselined than found — is reported as stale).

// Token scanning is cursor arithmetic: positions move non-uniformly (skip a
// generic list, jump to a matching brace), which iterator adapters cannot
// express without fighting the borrow checker over the shared token slice.
#![allow(clippy::needless_range_loop, clippy::while_let_loop)]

use std::cell::Cell;
use std::fmt;
use std::path::{Path, PathBuf};

mod flow;
pub mod lex;
pub mod report;
mod rules;

use lex::{Kind, Tok};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene finding: reported, never fails the lint run.
    Warning,
    /// Policy violation: fails the lint run unless baselined.
    Error,
}

impl Severity {
    /// Lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in simulation logic.
    HashCollections,
    /// Wall-clock or ambient randomness in simulation logic.
    WallClock,
    /// `.unwrap()` / `.expect(` in library code.
    Panic,
    /// `.unwrap()` / `.expect(` in simulation-crate code, independent of any
    /// `panic` allow: the fault-plane hardening contract is that sim crates
    /// degrade through `faults::SimError`, not aborts.
    NoUnwrapSim,
    /// Literal index without a bound comment.
    IndexLiteral,
    /// Dimensioned `f64` signature surface (param, field, return) with no
    /// unit suffix.
    UnitSuffix,
    /// Raw `thread::spawn`/`thread::scope` outside `desim::par`.
    ThreadSpawn,
    /// `==`/`!=` on floating-point expressions.
    FloatCmp,
    /// Cross-unit arithmetic/comparison/assignment (dimensional taint).
    UnitFlow,
    /// Wall-clock-derived value flowing into simulation state.
    DetTaint,
    /// Bare `std::fs::write` / `File::create` outside the sanctioned
    /// atomic writer (`store::atomic`).
    RawFsWrite,
    /// `simlint: allow(...)` directive that suppresses nothing.
    StaleAllow,
}

/// Every rule, in report order.
pub const ALL_RULES: &[Rule] = &[
    Rule::HashCollections,
    Rule::WallClock,
    Rule::Panic,
    Rule::NoUnwrapSim,
    Rule::IndexLiteral,
    Rule::UnitSuffix,
    Rule::ThreadSpawn,
    Rule::FloatCmp,
    Rule::UnitFlow,
    Rule::DetTaint,
    Rule::RawFsWrite,
    Rule::StaleAllow,
];

impl Rule {
    /// The name used in `simlint: allow(<name>)` directives and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::Panic => "panic",
            Rule::NoUnwrapSim => "no-unwrap-sim",
            Rule::IndexLiteral => "index-literal",
            Rule::UnitSuffix => "unit-suffix",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::FloatCmp => "float-cmp",
            Rule::UnitFlow => "unit-flow",
            Rule::DetTaint => "determinism-taint",
            Rule::RawFsWrite => "no-raw-fs-write",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// Parse a rule name as used in directives and reports.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Severity class: everything is an error except `stale-allow`, which is
    /// a hygiene warning.
    pub fn severity(self) -> Severity {
        match self {
            Rule::StaleAllow => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Long-form rationale for `cargo xtask lint` / `--explain`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "HashMap/HashSet iterate in an unspecified, run-to-run-varying order, so any \
                 simulation logic that walks one is nondeterministic even under a fixed seed. \
                 Use BTreeMap/BTreeSet (deterministic order) or Vec-indexed storage. Applies to \
                 test code too: a nondeterministic test is a flaky test."
            }
            Rule::WallClock => {
                "Instant::now, SystemTime, thread_rng and rand::* inject wall-clock or ambient \
                 randomness into what must be a closed, seeded system. Simulation time is \
                 SimTime; randomness comes from the seeded SimRng. The one sanctioned wall-clock \
                 surface is obs/src/span.rs (self-profiling spans), which is path-exempt."
            }
            Rule::Panic => {
                ".unwrap()/.expect() in library code turns a recoverable condition into an \
                 abort. Return a typed error, or document the invariant that makes the panic \
                 impossible with `// simlint: allow(panic) — why`."
            }
            Rule::NoUnwrapSim => {
                "Simulation crates must degrade through faults::SimError (or infallible \
                 constructions), not abort mid-run — the fault-injection plane depends on it. \
                 Stricter than `panic`: an allow(panic) does not satisfy it; a cold path needs \
                 its own allow(no-unwrap-sim)."
            }
            Rule::IndexLiteral => {
                "A literal index like xs[0] encodes a bound assumption the compiler cannot \
                 check. State the justification in a comment on the same or preceding line \
                 (e.g. `// hosts have exactly one uplink`), or restructure with first()/get()."
            }
            Rule::UnitSuffix => {
                "The paper's parameter-sensitivity lesson: K_max in KB vs. cells, rates in Gbps \
                 vs. pps, timers in us vs. s silently corrupt reproduced figures. Every \
                 dimensioned f64 in a public signature or struct field carries a unit suffix \
                 (_s, _us, _pps, _gbps, _bytes, ...), so the unit is part of the name and the \
                 unit-flow pass can seed from it. Conversions live in models::units."
            }
            Rule::ThreadSpawn => {
                "Ad-hoc thread::spawn/scope breaks the ordered-results determinism contract. \
                 desim::par::par_map is the one sanctioned fork-join surface: SIM_THREADS-aware \
                 and input-order deterministic regardless of scheduling."
            }
            Rule::FloatCmp => {
                "== / != on f64 is exact bit comparison: correct only for sentinel checks, and \
                 a latent portability/determinism bug anywhere rounding can differ. Compare \
                 against a tolerance (approx_eq and friends), or document an exact-by-design \
                 check with `// simlint: allow(float-cmp) — why`."
            }
            Rule::UnitFlow => {
                "Dimensional taint analysis. Units are seeded from suffix conventions on \
                 params, locals and fields (_s, _us, _gbps, _pps, _bytes, ...), propagated \
                 through assignment and arithmetic inside each function body, and any \
                 cross-unit + / - / comparison / assignment is flagged: a _s value added to a \
                 _gbps value is a bug today, not a naming nit. Route conversions through \
                 models::units (us_to_s, gbps_to_pps, ...) — a `*_to_<unit>` call re-types its \
                 result to the target unit."
            }
            Rule::DetTaint => {
                "Determinism taint analysis, generalizing the syntactic wall-clock rule: \
                 values derived from Instant::now/SystemTime/.elapsed() are tracked through \
                 locals and arithmetic, and flagged when they flow into sim-state writes \
                 (field assignments), event scheduling (schedule/schedule_at/schedule_in), \
                 trace payloads (record) or SimTime/SimDuration/SimRng constructors. Profiling \
                 may *measure* the simulation; it must never *steer* it."
            }
            Rule::RawFsWrite => {
                "Bare std::fs::write / File::create tears under crash or concurrent writers: a \
                 reader can observe a half-written file under its final name. Durable artifacts \
                 in simulation crates go through store::atomic::write_atomic (temp file + fsync \
                 + rename + directory fsync), the one sanctioned raw-write surface. A \
                 best-effort diagnostic sink can document itself with \
                 `// simlint: allow(no-raw-fs-write) — why`."
            }
            Rule::StaleAllow => {
                "A `simlint: allow(<rule>)` directive that no longer suppresses any finding is \
                 dead weight that hides future regressions of the same rule at that site. \
                 Delete the directive (warning severity: reported, does not fail the run)."
            }
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// Severity, derived from the rule.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.severity().name(),
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Determinism rules (`hash-collections`, `index-literal`).
    pub determinism: bool,
    /// Wall-clock discipline (`wall-clock`). Tracks `determinism` everywhere
    /// except `obs/src/span.rs`, the sanctioned span-timer surface (the
    /// wall-clock analogue of `desim::par` for `thread-spawn`). Also on for
    /// `bench` library sources — telemetry parsing/rendering must not grow
    /// timing reads — except `bench/src/harness.rs`, where wall time is the
    /// measurement itself.
    pub wall_clock: bool,
    /// Panic discipline (`panic`).
    pub panic_discipline: bool,
    /// Unwrap discipline in simulation crates (`no-unwrap-sim`): stricter
    /// than `panic` — an `allow(panic)` does not satisfy it.
    pub no_unwrap: bool,
    /// Unit-suffix naming on public signatures and struct fields.
    pub unit_suffix: bool,
    /// Thread-spawn discipline (`thread-spawn`): `desim::par` is the only
    /// sanctioned fork-join surface in the simulation crates.
    pub thread_spawn: bool,
    /// Float equality discipline (`float-cmp`).
    pub float_cmp: bool,
    /// Dimensional dataflow (`unit-flow`).
    pub unit_flow: bool,
    /// Determinism dataflow (`determinism-taint`). Unlike `wall_clock` this
    /// applies to `obs/src/span.rs` too: the span timer may *read* the wall
    /// clock but its readings must never flow back into simulation state.
    pub det_taint: bool,
    /// Crash-safe write discipline (`no-raw-fs-write`):
    /// `store::atomic::write_atomic` is the one sanctioned raw-write surface
    /// in the simulation crates, exactly as `desim::par`/`desim::supervise`
    /// are for `thread-spawn`.
    pub fs_write: bool,
}

impl Scope {
    /// Every rule enabled — fixture selftests and ad-hoc file linting.
    pub const STRICT: Scope = Scope {
        determinism: true,
        wall_clock: true,
        panic_discipline: true,
        no_unwrap: true,
        unit_suffix: true,
        thread_spawn: true,
        float_cmp: true,
        unit_flow: true,
        det_taint: true,
        fs_write: true,
    };

    /// Is `rule` enabled under this scope? (`stale-allow` is a meta rule and
    /// always on.)
    pub fn enables(&self, rule: Rule) -> bool {
        match rule {
            Rule::HashCollections | Rule::IndexLiteral => self.determinism,
            Rule::WallClock => self.wall_clock,
            Rule::Panic => self.panic_discipline,
            Rule::NoUnwrapSim => self.no_unwrap,
            Rule::UnitSuffix => self.unit_suffix,
            Rule::ThreadSpawn => self.thread_spawn,
            Rule::FloatCmp => self.float_cmp,
            Rule::UnitFlow => self.unit_flow,
            Rule::DetTaint => self.det_taint,
            Rule::RawFsWrite => self.fs_write,
            Rule::StaleAllow => true,
        }
    }
}

/// Crates whose *logic* must be deterministic and dimensionally sound.
/// `obs` is included: instrumentation that perturbs determinism would
/// invalidate the traces it exists to produce.
pub const SIM_CRATES: &[&str] = &[
    "desim",
    "netsim",
    "fluid",
    "protocols",
    "models",
    "obs",
    "faults",
    "store",
];
/// Crates held to library panic discipline and dimensional flow analysis.
pub const LIB_CRATES: &[&str] = &[
    "desim",
    "netsim",
    "fluid",
    "protocols",
    "models",
    "obs",
    "faults",
    "store",
    "workload",
    "control",
];

/// Scope for a workspace-relative source path, `None` if the file is not
/// linted (bins, benches, fixtures, generated code).
pub fn scope_for(rel: &Path) -> Option<Scope> {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if comps.next().as_deref() != Some("crates") {
        return None;
    }
    let krate = comps.next()?.to_string();
    // Only library sources: crates/<name>/src/**, excluding bin targets.
    if comps.next().as_deref() != Some("src") {
        return None;
    }
    if comps.next().as_deref() == Some("bin") {
        return None;
    }
    if krate == "xtask" {
        return None;
    }
    let is_par_executor = rel == Path::new("crates/desim/src/par.rs")
        || rel == Path::new("crates/desim/src/supervise.rs");
    let is_span_timer = rel == Path::new("crates/obs/src/span.rs");
    let is_supervisor = rel == Path::new("crates/desim/src/supervise.rs");
    let is_bench_harness = rel == Path::new("crates/bench/src/harness.rs");
    let is_atomic_writer = rel == Path::new("crates/store/src/atomic.rs");
    let sim = SIM_CRATES.contains(&krate.as_str());
    let lib = LIB_CRATES.contains(&krate.as_str());
    Some(Scope {
        determinism: sim,
        // `desim/src/supervise.rs` joins the span timer on the wall-clock
        // allowlist: deadline supervision must read real time to detect a
        // hang, but its `determinism-taint` scope stays on — readings may
        // trigger abandonment, never enter results.
        wall_clock: (sim && !is_span_timer && !is_supervisor)
            || (krate == "bench" && !is_bench_harness),
        panic_discipline: lib,
        no_unwrap: sim,
        unit_suffix: sim || krate == "workload",
        thread_spawn: sim && !is_par_executor,
        float_cmp: sim,
        unit_flow: lib,
        det_taint: sim,
        fs_write: sim && !is_atomic_writer,
    })
}

/// A parsed `simlint: allow(...)` directive.
struct AllowDirective {
    /// Line the directive comment starts on.
    line: usize,
    /// Column of the comment token.
    col: usize,
    /// Rule names listed inside `allow(...)`, verbatim.
    rules: Vec<String>,
    /// Set when the directive suppresses at least one finding.
    used: Cell<bool>,
}

/// Per-file analysis context shared by every rule.
pub(crate) struct Ctx<'a> {
    pub(crate) file: &'a Path,
    /// Code tokens only — comments stripped, order preserved.
    pub(crate) code: Vec<&'a Tok>,
    /// Per-line (0-based index = line-1) "is `#[cfg(test)]` code".
    tests: Vec<bool>,
    /// Per-line "has a non-directive comment" (bound-justification check).
    plain_comment: Vec<bool>,
    allows: Vec<AllowDirective>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(file: &'a Path, source: &str, toks: &'a [Tok]) -> Self {
        let nlines = source.lines().count().max(1);
        let mut plain_comment = vec![false; nlines + 1];
        let mut allows = Vec::new();
        let mut code: Vec<&Tok> = Vec::with_capacity(toks.len());
        for t in toks {
            match t.kind {
                Kind::LineComment | Kind::BlockComment => {
                    let span_lines = t.text.matches('\n').count();
                    let dirs = parse_allow_rules(&t.text);
                    if dirs.is_empty() {
                        for l in t.line as usize..=t.line as usize + span_lines {
                            if l <= nlines {
                                plain_comment[l] = true;
                            }
                        }
                    } else {
                        allows.push(AllowDirective {
                            line: t.line as usize,
                            col: t.col as usize,
                            rules: dirs,
                            used: Cell::new(false),
                        });
                    }
                }
                _ => code.push(t),
            }
        }
        let tests = test_mask(&code, nlines);
        Ctx {
            file,
            code,
            tests,
            plain_comment,
            allows,
        }
    }

    /// Is 1-based `line` inside `#[cfg(test)]`-gated code?
    pub(crate) fn is_test_line(&self, line: usize) -> bool {
        self.tests
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Does `line` or the line above carry a non-directive comment?
    /// (`index-literal` bound justification.)
    pub(crate) fn has_plain_comment(&self, line: usize) -> bool {
        self.plain_comment.get(line).copied().unwrap_or(false)
            || (line > 1 && self.plain_comment.get(line - 1).copied().unwrap_or(false))
    }

    /// Is `rule` allowed at `line` (directive on the line or the line
    /// above)? Marks the directive used.
    fn allowed(&self, line: usize, rule: Rule) -> bool {
        let mut hit = false;
        for d in &self.allows {
            if (d.line == line || d.line + 1 == line) && d.rules.iter().any(|r| r == rule.name()) {
                d.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// Extract the rule names from any `simlint: allow(a, b)` directives in a
/// comment's text.
fn parse_allow_rules(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("simlint: allow(") {
        rest = &rest[pos + "simlint: allow(".len()..];
        let Some(end) = rest.find(')') else { break };
        for r in rest[..end].split(',') {
            out.push(r.trim().to_string());
        }
        rest = &rest[end..];
    }
    out
}

/// Collector with allowlist routing.
pub(crate) struct Sink<'c, 'a> {
    ctx: &'c Ctx<'a>,
    out: Vec<Violation>,
}

impl<'c, 'a> Sink<'c, 'a> {
    fn new(ctx: &'c Ctx<'a>) -> Self {
        Sink {
            ctx,
            out: Vec::new(),
        }
    }

    /// Record a finding unless a directive on its line (or the line above)
    /// allows the rule.
    pub(crate) fn push(&mut self, line: usize, col: usize, rule: Rule, message: String) {
        self.push_anchored(line, line, col, rule, message);
    }

    /// Record a finding; directives at the violation line *or* at `anchor`
    /// (a multi-line signature's first line) suppress it.
    pub(crate) fn push_anchored(
        &mut self,
        anchor: usize,
        line: usize,
        col: usize,
        rule: Rule,
        message: String,
    ) {
        let allowed = self.ctx.allowed(line, rule) | self.ctx.allowed(anchor, rule);
        if allowed {
            return;
        }
        self.out.push(Violation {
            file: self.ctx.file.to_path_buf(),
            line,
            col,
            rule,
            message,
        });
    }
}

/// Mark lines belonging to `#[cfg(test)]`-gated items. Token-accurate: the
/// attribute's brace depth anchors the item; the item ends at the first `;`
/// or the matching `}` at that depth.
fn test_mask(code: &[&Tok], nlines: usize) -> Vec<bool> {
    let mut mask = vec![false; nlines];
    let mut i = 0;
    while i < code.len() {
        if !(code[i].kind == Kind::Punct && code[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(next) = code.get(i + 1) else { break };
        if !(next.kind == Kind::Punct && next.text == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute to its closing `]`, collecting identifiers.
        let mut j = i + 2;
        let mut brackets = 1i64;
        let mut idents: Vec<&str> = Vec::new();
        while j < code.len() && brackets > 0 {
            let t = code[j];
            match t.kind {
                Kind::Punct => {
                    for c in t.text.chars() {
                        match c {
                            '[' => brackets += 1,
                            ']' => brackets -= 1,
                            _ => {}
                        }
                    }
                }
                Kind::Ident => idents.push(&t.text),
                _ => {}
            }
            j += 1;
        }
        let is_cfg_test = idents.first() == Some(&"cfg") && idents.contains(&"test");
        if !is_cfg_test {
            i = j;
            continue;
        }
        let depth = code[i].depth;
        let start_line = code[i].line as usize;
        // Skip any further attributes between the cfg and the item.
        let mut k = j;
        while k + 1 < code.len()
            && code[k].kind == Kind::Punct
            && code[k].text == "#"
            && code[k + 1].text == "["
        {
            let mut b = 0i64;
            k += 1;
            loop {
                let Some(t) = code.get(k) else { break };
                if t.kind == Kind::Punct {
                    for c in t.text.chars() {
                        match c {
                            '[' => b += 1,
                            ']' => b -= 1,
                            _ => {}
                        }
                    }
                }
                k += 1;
                if b == 0 {
                    break;
                }
            }
        }
        // Find the end of the gated item: first `;` at the attribute's
        // depth, or the `}` matching the first `{` at that depth.
        let mut end_line = start_line;
        let mut m = k;
        let mut saw_open = false;
        while m < code.len() {
            let t = code[m];
            if t.kind == Kind::Punct && t.depth == depth {
                if t.text == ";" && !saw_open {
                    end_line = t.line as usize;
                    break;
                }
                if t.text == "{" {
                    saw_open = true;
                }
                if t.text == "}" && saw_open {
                    end_line = t.line as usize;
                    break;
                }
            }
            end_line = t.line as usize;
            m += 1;
        }
        for l in start_line..=end_line {
            if l >= 1 && l <= nlines {
                mask[l - 1] = true;
            }
        }
        i = m.max(j);
    }
    mask
}

/// Approved unit suffixes for dimensioned `f64` names.
pub const UNIT_SUFFIXES: &[&str] = &[
    "_s", "_us", "_ns", "_ms", "_hz", "_pps", "_bps", "_mbps", "_gbps", "_bytes", "_kb", "_mb",
    "_pkts", "_frac", "_ratio", "_deg",
];

/// Name fragments that mark a value as carrying a physical dimension.
const DIMENSIONED: &[&str] = &[
    "time",
    "rate",
    "delay",
    "rtt",
    "interval",
    "duration",
    "period",
    "timeout",
    "bandwidth",
    "bw",
    "size",
    "queue",
    "thresh",
    "capacity",
    "deadline",
    "horizon",
];

pub(crate) fn is_dimensioned(name: &str) -> bool {
    // Exact `_`-separated segment match: `feedback_delay_us` is dimensioned
    // (segment "delay") but `rc_delayed` is not — "delayed" marks a delayed
    // *state value*, whose unit is the state's, not a duration.
    name.split('_').any(|seg| DIMENSIONED.contains(&seg))
}

pub(crate) fn has_unit_suffix(name: &str) -> bool {
    UNIT_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Lint one file's source under the given scope.
pub fn lint_source(file: &Path, source: &str, scope: Scope) -> Vec<Violation> {
    let toks = lex::lex(source);
    let ctx = Ctx::new(file, source, &toks);
    let mut sink = Sink::new(&ctx);
    rules::token_rules(&ctx, scope, &mut sink);
    rules::signature_rules(&ctx, scope, &mut sink);
    flow::flow_passes(&ctx, scope, &mut sink);
    let mut out = sink.out;
    // Stale-allow: any directive that suppressed nothing, outside test code,
    // naming a rule this scope actually enforces (or no known rule at all).
    for d in &ctx.allows {
        if d.used.get() || ctx.is_test_line(d.line) {
            continue;
        }
        for name in &d.rules {
            match Rule::from_name(name) {
                None => out.push(Violation {
                    file: file.to_path_buf(),
                    line: d.line,
                    col: d.col,
                    rule: Rule::StaleAllow,
                    message: format!("allow directive names unknown rule `{name}`"),
                }),
                Some(r) if scope.enables(r) => out.push(Violation {
                    file: file.to_path_buf(),
                    line: d.line,
                    col: d.col,
                    rule: Rule::StaleAllow,
                    message: format!(
                        "allow({name}) suppresses nothing here; delete the stale directive"
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

/// Recursively lint every `.rs` file under `root/crates/*/src`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = f.strip_prefix(root).unwrap_or(&f);
        let Some(scope) = scope_for(rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&f)?;
        out.extend(lint_source(rel, &src, scope));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint a single file as if it were sim-crate library code (used for
/// fixture self-tests and ad-hoc checks).
pub fn lint_path_strict(path: &Path) -> std::io::Result<Vec<Violation>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(path, &src, Scope::STRICT))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(src: &str) -> Vec<Violation> {
        lint_source(Path::new("test.rs"), src, Scope::STRICT)
    }

    #[test]
    fn flags_hash_collections() {
        let v = strict("use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::HashCollections);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allow_directive_suppresses_same_line() {
        let v = strict("use std::collections::HashMap; // simlint: allow(hash-collections)\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_directive_suppresses_next_line() {
        let v = strict(
            "// simlint: allow(hash-collections) — no iteration happens here\nuse std::collections::HashMap;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        // The HashMap fires, and the allow(panic) — suppressing nothing —
        // is itself a stale-allow warning.
        let v = strict("use std::collections::HashMap; // simlint: allow(panic)\n");
        assert_eq!(
            v.iter().filter(|v| v.rule == Rule::HashCollections).count(),
            1
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::StaleAllow).count(), 1);
    }

    #[test]
    fn flags_wall_clock_tokens() {
        let v = strict("fn f() { let t = std::time::Instant::now(); let r = rand::random(); }\n");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::WallClock));
    }

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        // Under the strict scope both the library `panic` rule and the
        // sim-crate `no-unwrap-sim` rule fire on each site.
        let v = strict("fn f() { x.unwrap(); y.expect(\"msg\"); }\n");
        assert_eq!(v.iter().filter(|v| v.rule == Rule::Panic).count(), 2);
        assert_eq!(v.iter().filter(|v| v.rule == Rule::NoUnwrapSim).count(), 2);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let v = strict("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_panic_rule() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let v = strict(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 2); // panic + no-unwrap-sim, same site
        assert!(v.iter().all(|v| v.line == 5));
    }

    #[test]
    fn hash_rule_applies_even_in_tests() {
        // A nondeterministic test is a flaky test.
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::HashCollections);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let v = strict("fn f() { let s = \"HashMap .unwrap()\"; } // HashMap in prose\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_strings_and_nested_comments_do_not_fire() {
        // The structural win over the line scrubber: multi-line raw strings
        // and nested block comments cannot leak tokens.
        let v = strict(
            "fn f() -> &'static str {\n    r#\"HashMap xs[0]\n.unwrap() \"quoted\" \"#\n}\n/* outer /* HashSet */ still comment */\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn literal_index_without_comment_fires() {
        let v = strict("fn f() { let x = xs[0]; }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::IndexLiteral);
        assert_eq!(v[0].col, 20, "column points at the `[`");
    }

    #[test]
    fn literal_index_with_bound_comment_ok() {
        let v = strict("fn f() { let x = xs[0]; } // non-empty by construction\n");
        assert!(v.is_empty(), "{v:?}");
        let v = strict("// hosts have exactly one uplink\nfn f() { let x = xs[0]; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn variable_index_is_not_flagged() {
        let v = strict("fn f(i: usize) { let x = xs[i]; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn attribute_is_not_literal_index() {
        let v = strict("#[derive(Debug)]\nstruct S;\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_flags_dimensioned_f64() {
        let v = strict("pub fn set(rate: f64) {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnitSuffix);
    }

    #[test]
    fn unit_suffix_ok_with_suffix() {
        let v = strict("pub fn set(rate_bps: f64, delay_us: f64, size_bytes: f64) {}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_ignores_dimensionless_and_non_f64() {
        let v = strict("pub fn set(alpha: f64, rate: u64, p: f64) {}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_handles_multiline_signatures() {
        let v = strict("pub fn set(\n    rate: f64,\n    n: usize,\n) {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnitSuffix);
        assert_eq!(v[0].line, 2, "span lands on the parameter itself");
    }

    #[test]
    fn unit_suffix_allow_on_signature_line_covers_params() {
        let v = strict(
            "// simlint: allow(unit-suffix) — legacy API, tracked\npub fn set(\n    rate: f64,\n) {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn private_fns_are_not_unit_checked() {
        let v = strict("fn set(rate: f64) {}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_flags_struct_fields() {
        let v = strict("pub struct S {\n    pub rate: f64,\n    pub alpha: f64,\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnitSuffix);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unit_suffix_flags_private_fields_too() {
        let v = strict("struct S {\n    queue: f64,\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnitSuffix);
    }

    #[test]
    fn unit_suffix_flags_pub_fn_return_type() {
        let v = strict("pub fn drain_time(&self) -> f64 { 0.0 }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnitSuffix);
        let v = strict("pub fn drain_time_s(&self) -> f64 { 0.0 }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_dimensioned_return_is_not_flagged() {
        let v = strict("pub fn alpha(&self) -> f64 { 0.5 }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_thread_spawn_and_scope() {
        let v = strict("fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
        let v = strict("fn f() { thread::scope(|s| { s.spawn(|| {}); }); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
    }

    #[test]
    fn thread_spawn_applies_even_in_tests() {
        // An ad-hoc thread in a test is still nondeterministic test code.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
    }

    #[test]
    fn thread_spawn_allow_directive() {
        let v = strict(
            "fn f() { std::thread::scope(|s| {}); } // simlint: allow(thread-spawn) — executor\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn par_executor_file_is_exempt_from_thread_spawn() {
        let scope = scope_for(Path::new("crates/desim/src/par.rs")).unwrap();
        assert!(!scope.thread_spawn);
        assert!(scope.determinism, "other rules still apply to par.rs");
        let scope = scope_for(Path::new("crates/desim/src/event.rs")).unwrap();
        assert!(scope.thread_spawn);
    }

    #[test]
    fn span_timer_file_is_exempt_from_wall_clock_only() {
        let scope = scope_for(Path::new("crates/obs/src/span.rs")).unwrap();
        assert!(!scope.wall_clock);
        assert!(
            scope.determinism && scope.panic_discipline && scope.thread_spawn && scope.det_taint,
            "every other rule still applies to obs/src/span.rs, including determinism-taint"
        );
        // The rest of the obs crate gets the full sim-crate treatment.
        let scope = scope_for(Path::new("crates/obs/src/trace.rs")).unwrap();
        assert!(scope.wall_clock && scope.determinism);
    }

    #[test]
    fn bench_lib_files_get_wall_clock_scope_except_harness() {
        // Telemetry parsing / rendering in the bench library must stay free
        // of timing reads; the harness is the one sanctioned wall-clock
        // measurement surface (it times the benchmarks themselves).
        let scope = scope_for(Path::new("crates/bench/src/report.rs")).unwrap();
        assert!(scope.wall_clock);
        assert!(
            !scope.determinism && !scope.no_unwrap,
            "bench stays outside the sim-crate rule families"
        );
        let scope = scope_for(Path::new("crates/bench/src/obs_cli.rs")).unwrap();
        assert!(scope.wall_clock);
        let scope = scope_for(Path::new("crates/bench/src/harness.rs")).unwrap();
        assert!(!scope.wall_clock, "harness measures wall time by design");
        // Figure binaries remain unlinted.
        assert!(scope_for(Path::new("crates/bench/src/bin/simreport.rs")).is_none());
    }

    #[test]
    fn wall_clock_scope_tracks_determinism_elsewhere() {
        for p in [
            "crates/desim/src/event.rs",
            "crates/desim/src/par.rs",
            "crates/fluid/src/dde.rs",
        ] {
            let scope = scope_for(Path::new(p)).unwrap();
            assert_eq!(scope.wall_clock, scope.determinism, "{p}");
        }
    }

    #[test]
    fn wall_clock_not_flagged_when_scope_disables_it() {
        let v = lint_source(
            Path::new("span.rs"),
            "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
            Scope {
                wall_clock: false,
                ..Scope::STRICT
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn no_unwrap_sim_fires_despite_panic_allow() {
        let v = strict(
            "// simlint: allow(panic) — documented invariant\nfn f(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoUnwrapSim);
    }

    #[test]
    fn comma_list_allow_satisfies_both_unwrap_rules() {
        let v = strict(
            "// simlint: allow(panic, no-unwrap-sim) — cold path, documented\nfn f(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn no_unwrap_sim_exempts_test_code() {
        let v = strict(
            "#[cfg(test)]\nmod tests {\n    fn f(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_routing() {
        assert!(scope_for(Path::new("crates/netsim/src/engine.rs"))
            .is_some_and(|s| s.determinism && s.panic_discipline && s.float_cmp && s.det_taint));
        assert!(scope_for(Path::new("crates/faults/src/schedule.rs"))
            .is_some_and(|s| s.determinism && s.no_unwrap && s.panic_discipline));
        assert!(
            scope_for(Path::new("crates/workload/src/fct.rs")).is_some_and(|s| s.panic_discipline
                && !s.no_unwrap
                && s.unit_suffix
                && s.unit_flow)
        );
        assert!(scope_for(Path::new("crates/workload/src/fct.rs"))
            .is_some_and(|s| !s.determinism && !s.float_cmp && !s.det_taint));
        assert!(scope_for(Path::new("crates/control/src/roots.rs"))
            .is_some_and(|s| s.unit_flow && !s.unit_suffix && !s.float_cmp));
        assert!(scope_for(Path::new("crates/bench/src/bin/fig2.rs")).is_none());
        assert!(scope_for(Path::new("crates/xtask/src/lib.rs")).is_none());
        assert!(scope_for(Path::new("examples/quickstart.rs")).is_none());
        assert!(scope_for(Path::new("crates/core/src/output.rs"))
            .is_some_and(|s| !s.determinism && !s.panic_discipline && !s.unit_suffix));
    }

    #[test]
    fn flags_raw_fs_writes() {
        let v = strict("fn f(p: &std::path::Path) { std::fs::write(p, b\"x\").ok(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RawFsWrite);
        let v = strict("fn f(p: &std::path::Path) { let _ = std::fs::File::create(p); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RawFsWrite);
    }

    #[test]
    fn raw_fs_write_quiet_on_reads_tests_and_allows() {
        assert!(strict("fn f(p: &std::path::Path) { let _ = std::fs::read(p); }\n").is_empty());
        assert!(
            strict("fn f(p: &std::path::Path) { let _ = std::fs::File::open(p); }\n").is_empty()
        );
        assert!(strict(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::fs::write(\"/tmp/x\", b\"s\").ok(); }\n}\n"
        )
        .is_empty());
        let v = strict(
            "fn f(p: &std::path::Path) {\n    // simlint: allow(no-raw-fs-write) — diagnostic sink\n    std::fs::write(p, b\"x\").ok();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // A raw-string or comment mention must not fire (token stream, not text).
        assert!(strict("// std::fs::write is banned\nfn f() {}\n").is_empty());
    }

    #[test]
    fn store_crate_is_in_scope_with_atomic_writer_exempt() {
        assert!(scope_for(Path::new("crates/store/src/lib.rs"))
            .is_some_and(|s| s.fs_write && s.determinism && s.no_unwrap && s.panic_discipline));
        assert!(scope_for(Path::new("crates/store/src/atomic.rs"))
            .is_some_and(|s| !s.fs_write && s.determinism && s.wall_clock));
        assert!(
            scope_for(Path::new("crates/desim/src/supervise.rs"))
                .is_some_and(|s| !s.wall_clock && !s.thread_spawn && s.det_taint && s.fs_write)
        );
        // The pre-existing executor exemption is unchanged.
        assert!(scope_for(Path::new("crates/desim/src/par.rs"))
            .is_some_and(|s| s.wall_clock && !s.thread_spawn));
    }

    #[test]
    fn stale_allow_fires_on_unused_directive() {
        let v = strict("fn f() { let x = 1; } // simlint: allow(wall-clock)\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StaleAllow);
        assert_eq!(v[0].severity(), Severity::Warning);
    }

    #[test]
    fn stale_allow_silent_when_directive_is_used() {
        let v =
            strict("fn f() { let t = std::time::Instant::now(); } // simlint: allow(wall-clock)\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn stale_allow_flags_unknown_rule_names() {
        let v = strict("fn f() {} // simlint: allow(no-such-rule)\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StaleAllow);
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn stale_allow_skips_test_code_and_out_of_scope_rules() {
        // Inside #[cfg(test)] the panic rule never runs, so an allow(panic)
        // there must not be called stale.
        let v = strict("#[cfg(test)]\nmod t {\n    fn f() {} // simlint: allow(panic)\n}\n");
        assert!(v.is_empty(), "{v:?}");
        // A rule the scope does not enforce cannot be stale either.
        let v = lint_source(
            Path::new("w.rs"),
            "fn f() {} // simlint: allow(float-cmp)\n",
            Scope {
                float_cmp: false,
                ..Scope::STRICT
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rule_names_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_name(r.name()), Some(*r));
            assert!(!r.explain().is_empty());
        }
        assert_eq!(Rule::from_name("bogus"), None);
    }

    #[test]
    fn violations_are_sorted_and_display_columns() {
        let v = strict("fn f() { x.unwrap(); use std::collections::HashMap; }\n");
        assert!(v
            .windows(2)
            .all(|w| (w[0].line, w[0].col) <= (w[1].line, w[1].col)));
        let shown = v[0].to_string();
        assert!(shown.contains(":1:"), "{shown}");
        assert!(shown.contains("error ["), "{shown}");
    }
}
